"""Unit tests for the relational algebra layer."""

import pytest

from repro.errors import SolverError
from repro.relational.relation import Relation


@pytest.fixture
def r():
    return Relation(("a", "b"), {(1, 2), (1, 3), (2, 3)})


@pytest.fixture
def s():
    return Relation(("b", "c"), {(2, 10), (3, 20), (4, 30)})


class TestConstruction:
    def test_rows_normalised(self):
        rel = Relation(("a",), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_width_mismatch(self):
        with pytest.raises(SolverError):
            Relation(("a", "b"), [(1,)])

    def test_duplicate_attributes(self):
        with pytest.raises(SolverError):
            Relation(("a", "a"), [])

    def test_bool(self):
        assert Relation(("a",), [(1,)])
        assert not Relation(("a",))

    def test_eq_up_to_attribute_order(self):
        r1 = Relation(("a", "b"), {(1, 2)})
        r2 = Relation(("b", "a"), {(2, 1)})
        assert r1 == r2

    def test_neq_different_attrs(self):
        assert Relation(("a",), [(1,)]) != Relation(("b",), [(1,)])

    def test_to_dicts_deterministic(self, r):
        dicts = r.to_dicts()
        assert dicts == sorted(dicts, key=repr)
        assert {"a": 1, "b": 2} in dicts


class TestOperators:
    def test_project(self, r):
        p = r.project(("a",))
        assert p.rows == {(1,), (2,)}

    def test_project_unknown_attribute(self, r):
        with pytest.raises(SolverError):
            r.project(("zzz",))

    def test_rename(self, r):
        renamed = r.rename({"a": "x"})
        assert renamed.attributes == ("x", "b")

    def test_select_eq(self, r):
        assert r.select_eq("a", 1).rows == {(1, 2), (1, 3)}

    def test_join(self, r, s):
        joined = r.join(s)
        assert joined.attributes == ("a", "b", "c")
        assert joined.rows == {(1, 2, 10), (1, 3, 20), (2, 3, 20)}

    def test_join_no_shared_is_product(self):
        r1 = Relation(("a",), {(1,), (2,)})
        r2 = Relation(("b",), {(7,)})
        assert r1.join(r2).rows == {(1, 7), (2, 7)}

    def test_semijoin(self, r, s):
        assert r.semijoin(s).rows == r.rows  # all b values appear in s

    def test_semijoin_filters(self, r):
        filter_rel = Relation(("b",), {(2,)})
        assert r.semijoin(filter_rel).rows == {(1, 2)}

    def test_semijoin_no_shared_nonempty(self, r):
        other = Relation(("z",), {(0,)})
        assert r.semijoin(other) is r

    def test_semijoin_no_shared_empty(self, r):
        other = Relation(("z",))
        assert len(r.semijoin(other)) == 0

    def test_antijoin(self, r):
        filter_rel = Relation(("b",), {(2,)})
        assert r.antijoin(filter_rel).rows == {(1, 3), (2, 3)}

    def test_cross(self):
        product = Relation.cross(
            [Relation(("a",), {(1,)}), Relation(("b",), {(2,), (3,)})]
        )
        assert product.rows == {(1, 2), (1, 3)}

    def test_cross_empty_list(self):
        unit = Relation.cross([])
        assert unit.rows == {()}
