"""Unit tests for [U]-components and balanced separators."""

from repro.core.components import (
    components,
    connected_components,
    is_balanced_separator,
    separate,
    vertices_of,
)
from tests.conftest import cycle_hypergraph


class TestVerticesOf:
    def test_all_edges(self, triangle):
        assert vertices_of(triangle.edges) == {"x", "y", "z"}

    def test_subset(self, triangle):
        assert vertices_of(triangle.edges, ["r"]) == {"x", "y"}

    def test_empty_subset(self, triangle):
        assert vertices_of(triangle.edges, []) == frozenset()


class TestComponents:
    def test_no_separator_connected(self, triangle):
        comps = components(triangle.edges, frozenset())
        assert comps == [frozenset({"r", "s", "t"})]

    def test_cut_vertex_splits(self, path3):
        # Removing vertex "2" separates edge a from b-c... a loses vertex 2
        # but still has vertex 1, so it forms its own component.
        comps = components(path3.edges, frozenset({"2"}))
        assert sorted(map(sorted, comps)) == [["a"], ["b", "c"]]

    def test_absorbed_edges_in_no_component(self, path3):
        comps, absorbed = separate(path3.edges, frozenset({"1", "2"}))
        assert absorbed == {"a"}
        assert sorted(map(sorted, comps)) == [["b", "c"]]

    def test_cycle_splits_into_two_arcs(self):
        c6 = cycle_hypergraph(6)
        separator = frozenset({"x0", "x3"})
        comps = components(c6.edges, separator)
        assert len(comps) == 2
        # Straddling edges belong to the component of their outside vertex,
        # so each arc has 3 edges.
        assert all(len(c) == 3 for c in comps)

    def test_full_separator_absorbs_everything(self, triangle):
        comps, absorbed = separate(triangle.edges, frozenset({"x", "y", "z"}))
        assert comps == []
        assert absorbed == {"r", "s", "t"}

    def test_disconnected_input(self):
        family = {"a": frozenset({"x", "y"}), "b": frozenset({"p", "q"})}
        comps = connected_components(family)
        assert len(comps) == 2

    def test_components_are_disjoint_partition(self):
        c5 = cycle_hypergraph(5)
        separator = frozenset({"x0"})
        comps = components(c5.edges, separator)
        names = [n for c in comps for n in c]
        assert len(names) == len(set(names))
        absorbed = set(c5.edges) - set(names)
        assert all(c5.edge(n) <= separator for n in absorbed)

    def test_deterministic_order(self, triangle):
        first = components(triangle.edges, frozenset({"y"}))
        second = components(triangle.edges, frozenset({"y"}))
        assert first == second


class TestBalancedSeparators:
    def test_balanced_middle_of_path(self, path3):
        # Vertices of edge b split {a} and {c}: both components have size 1 <= 1.5.
        assert is_balanced_separator(path3.edges, frozenset({"2", "3"}))

    def test_unbalanced_end_of_path(self, path3):
        # Vertex 4 only touches edge c; a and b stay connected via vertex 2/3:
        # one component of size 2 > 3/2.
        assert not is_balanced_separator(path3.edges, frozenset({"4"}))

    def test_empty_separator_of_connected_graph_unbalanced(self, triangle):
        assert not is_balanced_separator(triangle.edges, frozenset())

    def test_total_override(self, path3):
        # With a pretend-larger total even a lopsided split balances.
        assert is_balanced_separator(path3.edges, frozenset({"4"}), total=6)

    def test_every_ghd_has_balanced_separator_node(self, cycle6):
        # Sanity for the theory BalSep relies on: the bag {x0, x3} balances C6.
        assert is_balanced_separator(cycle6.edges, frozenset({"x0", "x3"}))
