"""Tests for the primal graph, min-fill TDs, and exact treewidth."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.core.treewidth import (
    primal_graph,
    tree_decomposition_min_fill,
    treewidth_exact,
    treewidth_upper_bound,
)
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import exact_width
from tests.conftest import clique_hypergraph, cycle_hypergraph, random_hypergraph


class TestPrimalGraph:
    def test_triangle_primal(self, triangle):
        g = primal_graph(triangle)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3

    def test_hyperedge_becomes_clique(self):
        h = Hypergraph({"wide": ["a", "b", "c", "d"]})
        g = primal_graph(h)
        assert g.number_of_edges() == 6

    def test_empty(self):
        assert primal_graph(Hypergraph({})).number_of_nodes() == 0


class TestTreeDecomposition:
    def test_min_fill_td_validates(self, triangle):
        td = tree_decomposition_min_fill(triangle)
        td.validate("TD")

    @pytest.mark.parametrize("seed", range(15))
    def test_min_fill_valid_on_random(self, seed):
        h = random_hypergraph(seed)
        td = tree_decomposition_min_fill(h)
        td.validate("TD")

    def test_empty_hypergraph(self):
        td = tree_decomposition_min_fill(Hypergraph({}))
        assert td.width == 0


class TestTreewidthValues:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_clique_treewidth(self, n):
        assert treewidth_exact(clique_hypergraph(n)) == n - 1

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_cycle_treewidth(self, n):
        assert treewidth_exact(cycle_hypergraph(n)) == 2

    def test_tree_treewidth(self, path3):
        assert treewidth_exact(path3) == 1

    def test_single_vertex(self):
        assert treewidth_exact(Hypergraph({"a": ["x"]})) == 0

    @pytest.mark.parametrize("seed", range(12))
    def test_exact_at_most_upper_bound(self, seed):
        h = random_hypergraph(seed)
        assert treewidth_exact(h) <= treewidth_upper_bound(h)


class TestWidthRelations:
    """The classical relations between tw and hw, checked empirically."""

    @pytest.mark.parametrize("seed", range(15))
    def test_hw_at_most_tw_plus_one(self, seed):
        h = random_hypergraph(seed)
        if not h.num_edges:
            return
        tw = treewidth_exact(h)
        # hw <= tw + 1: cover every TD bag vertex-by-vertex with edges.
        result = exact_width(check_hd, h, max_k=tw + 1)
        assert result.upper is not None and result.upper <= tw + 1

    def test_wide_acyclic_gap(self):
        # hw = 1 but tw = arity - 1: hypergraphs beat graphs for wide edges.
        h = Hypergraph({"wide": ["a", "b", "c", "d", "e"]})
        assert check_hd(h, 1) is not None
        assert treewidth_exact(h) == 4
