"""Tests for the store's bounds index and the cache-aware scheduling on top.

Covers the monotonicity invariant (property-style over seeded random
hypergraphs), implied answers, eviction/timeout-reuse consistency, the
binary-searched ``exact_width``, batch pruning cross-checks against
unpruned journals, the engine-backed fractional study, parallel repository
statistics, and the new CLI surfaces (``fractional``, ``cache bounds``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.analysis.fractional_analysis import run_fractional_analysis
from repro.analysis.hw_analysis import run_hw_analysis
from repro.benchmark.classes import BenchmarkClass
from repro.benchmark.repository import HyperBenchRepository
from repro.cli import main
from repro.core.properties import compute_statistics
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import NO, TIMEOUT, YES, CheckOutcome, exact_width, timed_check
from repro.engine import (
    MONOTONE_METHODS,
    DecompositionEngine,
    JobSpec,
    Journal,
    ResultStore,
    fingerprint,
)
from repro.utils.deadline import Deadline
from tests.conftest import clique_hypergraph, cycle_hypergraph, random_hypergraph

MAX_K = 5


# ----------------------------------------------------------------- store index


class TestBoundsIndex:
    def test_puts_derive_interval(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            assert store.bounds(fp, "hd") == (1, None)
            store.put(fp, "hd", 1, None, CheckOutcome(NO, 0.1))
            assert store.bounds(fp, "hd") == (2, None)
            store.put(fp, "hd", 4, None, CheckOutcome(YES, 0.1))
            assert store.bounds(fp, "hd") == (2, 4)

    def test_timeout_rows_do_not_move_bounds(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 3, 1.0, CheckOutcome(TIMEOUT, 1.0))
            assert store.bounds(fp, "hd") == (1, None)

    def test_non_monotone_methods_are_excluded(self, triangle):
        fp = fingerprint(triangle)
        assert "custom" not in MONOTONE_METHODS
        with ResultStore() as store:
            store.put(fp, "custom", 3, None, CheckOutcome(NO, 0.1))
            assert store.bounds(fp, "custom") == (1, None)
            assert store.implied(fp, "custom", 1) is None

    def test_implied_yes_replays_witness_decomposition(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.5, check_hd(triangle, 2)))
            derived = store.get(fp, "hd", 4, None)
            assert derived is not None and derived.implied
            assert derived.verdict == YES
            assert derived.seconds == 0.0
            outcome = derived.outcome(triangle)
            outcome.decomposition.validate()
            assert outcome.decomposition.integral_width <= 4

    def test_implied_no_below_lower_bound(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 3, None, CheckOutcome(NO, 0.5))
            derived = store.get(fp, "hd", 1, None)
            assert derived is not None and derived.implied
            assert derived.verdict == NO
            # inside the open interval nothing is implied
            assert store.get(fp, "hd", 4, None) is None

    def test_definite_knowledge_dominates_stored_timeout(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, 1.0, CheckOutcome(TIMEOUT, 1.0))
            store.put(fp, "hd", 2, 60.0, CheckOutcome(NO, 5.0))
            got = store.get(fp, "hd", 2, 1.0)
            assert got is not None and got.verdict == NO

    def test_implied_answer_dominates_stale_exact_timeout_row(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 3, 1.0, CheckOutcome(TIMEOUT, 1.0))
            store.put(fp, "hd", 2, 60.0, CheckOutcome(YES, 0.2, check_hd(triangle, 2)))
            # hi = 2 proves k = 3 is yes; the recorded timeout at the exact
            # (k=3, 1.0s) key must stop replaying
            got = store.get(fp, "hd", 3, 1.0)
            assert got is not None and got.verdict == YES and got.implied
            # bounds=False restores the row-only view
            raw = store.get(fp, "hd", 3, 1.0, bounds=False)
            assert raw is not None and raw.verdict == TIMEOUT

    def test_clear_drops_bounds(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.1))
            store.clear()
            assert store.bounds(fp, "hd") == (1, None)
            assert store.bounds_rows() == []


class TestBoundsConsistencyRegressions:
    """Satellite fix: get timeout-reuse and LRU eviction vs the index."""

    def test_timeout_reuse_get_leaves_bounds_intact(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, 60.0, CheckOutcome(YES, 0.2, check_hd(triangle, 2)))
            assert store.bounds(fp, "hd") == (1, 2)
            stored = store.get(fp, "hd", 2, 1.0)  # definite reuse, other budget
            assert stored is not None and stored.verdict == YES
            assert store.bounds(fp, "hd") == (1, 2)

    def test_eviction_shrinks_bounds_to_surviving_rows(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore(max_entries=2) as store:
            store.put(fp, "hd", 1, None, CheckOutcome(NO, 0.1))
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.1, check_hd(triangle, 2)))
            assert store.bounds(fp, "hd") == (2, 2)
            store.get(fp, "hd", 2, None)  # refresh the yes row's LRU clock
            store.put(fp, "hd", 5, None, CheckOutcome(YES, 0.1))
            # the k=1 refutation was evicted: lo must fall back to 1, not
            # silently keep claiming width >= 2
            assert store.bounds(fp, "hd") == (1, 2)

    def test_evicting_the_only_witness_drops_the_interval(self, triangle):
        fp = fingerprint(triangle)
        other = fingerprint(cycle_hypergraph(4))
        with ResultStore(max_entries=1) as store:
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.1))
            assert store.bounds(fp, "hd") == (1, 2)
            store.put(other, "hd", 1, None, CheckOutcome(NO, 0.1))  # evicts fp row
            assert store.bounds(fp, "hd") == (1, None)
            assert store.get(fp, "hd", 3, None, record=False) is None

    def test_bounds_always_match_surviving_rows_under_churn(self):
        """Randomised regression: after any put/get/evict interleaving the
        index equals exactly what the surviving rows justify."""
        rng = random.Random(7)
        graphs = [random_hypergraph(seed) for seed in range(3)]
        prints = [fingerprint(h) for h in graphs]
        with ResultStore(max_entries=4) as store:
            for _ in range(60):
                fp = rng.choice(prints)
                k = rng.randint(1, MAX_K)
                action = rng.random()
                if action < 0.6:
                    verdict = rng.choice([YES, NO, TIMEOUT])
                    store.put(fp, "hd", k, None, CheckOutcome(verdict, 0.01))
                else:
                    store.get(fp, "hd", k, None, record=False)
                for check_fp in prints:
                    rows = store._conn.execute(
                        "SELECT k, verdict FROM results "
                        "WHERE fingerprint = ? AND method = 'hd'",
                        (check_fp,),
                    ).fetchall()
                    nos = [row_k for row_k, v in rows if v == NO]
                    yeses = [row_k for row_k, v in rows if v == YES]
                    expected = (
                        (max(nos) + 1 if nos else 1),
                        (min(yeses) if yeses else None),
                    )
                    assert store.bounds(check_fp, "hd") == expected


# ------------------------------------------------------ property-based invariant


class TestBoundsInvariantProperty:
    """Satellite: random small hypergraphs, random put sequences — the index
    always brackets the true width and the cache-aware ``exact_width``
    matches the sequential driver."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_put_sequences_respect_the_invariant(self, seed):
        rng = random.Random(1000 + seed)
        h = random_hypergraph(seed)
        truth = exact_width(check_hd, h, MAX_K)
        width = truth.value  # None when the width exceeds MAX_K
        fp = fingerprint(h)
        with ResultStore() as store:
            for k in (rng.randint(1, MAX_K) for _ in range(rng.randint(2, 8))):
                store.put(fp, "hd", k, None, timed_check(check_hd, h, k))
                lo, hi = store.bounds(fp, "hd")
                if width is not None:
                    assert lo <= width, (h.name, lo, width)
                    assert hi is None or width <= hi, (h.name, hi, width)
                if width is not None:
                    for q in range(1, MAX_K + 1):
                        derived = store.implied(fp, "hd", q)
                        if derived is not None:
                            assert derived.verdict == (YES if q >= width else NO)
            engine = DecompositionEngine(store=store)
            got = engine.exact_width(h, MAX_K)
            assert (got.lower, got.upper, got.exact) == (
                truth.lower,
                truth.upper,
                truth.exact,
            ), h.name


# ------------------------------------------------------------ cache-aware width


class TestCacheAwareExactWidth:
    def test_partial_rows_enable_bisection_with_fewer_checks(self):
        h = clique_hypergraph(5)  # hw = 3
        fp = fingerprint(h)
        store = ResultStore()
        # a previous coarse sweep left only the endpoints
        store.put(fp, "hd", 1, None, timed_check(check_hd, h, 1))
        store.put(fp, "hd", 5, None, timed_check(check_hd, h, 5))
        engine = DecompositionEngine(store=store)
        result = engine.exact_width(h, MAX_K)
        expected = exact_width(check_hd, h, MAX_K)
        assert (result.lower, result.upper, result.exact) == (
            expected.lower,
            expected.upper,
            expected.exact,
        )
        # the linear protocol runs len(expected.timings) checks from scratch;
        # bisection inside [2, 5] issues strictly fewer
        assert engine.stats.executed < len(expected.timings)

    def test_warm_sweep_executes_nothing_and_uses_implied_answers(self):
        graphs = [random_hypergraph(seed) for seed in range(6)]
        store = ResultStore()
        cold = DecompositionEngine(store=store)
        cold_results = [cold.exact_width(h, MAX_K) for h in graphs]
        assert cold.stats.executed > 0
        warm = DecompositionEngine(store=store)
        warm_results = [warm.exact_width(h, MAX_K) for h in graphs]
        assert warm.stats.executed == 0  # strictly fewer checks than cold
        assert warm.stats.cache_hits > 0
        for h, a, b in zip(graphs, cold_results, warm_results):
            expected = exact_width(check_hd, h, MAX_K)
            assert (
                (a.lower, a.upper, a.exact)
                == (b.lower, b.upper, b.exact)
                == (expected.lower, expected.upper, expected.exact)
            ), h.name
        # bounds also settle plain checks above the interval without work
        h = graphs[0]
        width = warm.exact_width(h, MAX_K).upper
        before = warm.stats.executed
        outcome = warm.check(h, width + 3)
        assert outcome.verdict == YES
        assert warm.stats.executed == before
        assert warm.stats.implied >= 1


# ------------------------------------------------------------------ batch pruning


class TestBatchPruning:
    """Satellite: pruned batches are verdict-identical to unpruned runs."""

    def _graphs(self):
        return [random_hypergraph(seed) for seed in range(4)]

    def _check_specs(self, graphs):
        return [JobSpec.check(h, k) for h in graphs for k in (1, 2, 3, 4)]

    @staticmethod
    def _verdicts(journal_path):
        return {
            key: (p["verdict"], p["lower"], p["upper"], p["winner"])
            for key, p in Journal(journal_path).load().items()
        }

    def test_pruned_run_matches_unpruned_journal(self, tmp_path):
        graphs = self._graphs()
        specs = self._check_specs(graphs)

        cold_journal = tmp_path / "cold.jsonl"
        cold = DecompositionEngine(store=ResultStore())
        cold_report = cold.run_batch(specs, journal=cold_journal)
        assert cold_report.pruned == 0 and cold_report.executed > 0

        # warm the store with width sweeps only — the check batch below is
        # then answered by exact rows *and* bounds-implied verdicts
        warm_store = ResultStore()
        seeder = DecompositionEngine(store=warm_store)
        seeder.run_batch([JobSpec.width(h, MAX_K) for h in graphs])

        warm_journal = tmp_path / "warm.jsonl"
        warm = DecompositionEngine(store=warm_store)
        warm_report = warm.run_batch(specs, journal=warm_journal)
        assert warm_report.executed == 0
        assert warm_report.pruned > 0  # some verdicts were implied, not stored
        assert warm_report.cache_hits == warm_report.total

        assert self._verdicts(cold_journal) == self._verdicts(warm_journal)

    def test_truncated_journal_resume_stays_verdict_identical(self, tmp_path):
        graphs = self._graphs()
        specs = self._check_specs(graphs)

        cold_journal = tmp_path / "cold.jsonl"
        DecompositionEngine(store=ResultStore()).run_batch(specs, journal=cold_journal)

        warm_store = ResultStore()
        DecompositionEngine(store=warm_store).run_batch(
            [JobSpec.width(h, MAX_K) for h in graphs]
        )
        warm_journal = tmp_path / "warm.jsonl"
        DecompositionEngine(store=warm_store).run_batch(specs, journal=warm_journal)
        text = warm_journal.read_text(encoding="utf-8")
        warm_journal.write_text(text[:-25], encoding="utf-8")  # kill mid-line

        resumed = DecompositionEngine(store=warm_store).run_batch(
            specs, journal=warm_journal
        )
        assert resumed.resumed == len(specs) - 1
        assert resumed.executed == 0
        assert self._verdicts(cold_journal) == self._verdicts(warm_journal)


# ------------------------------------------------------- engine-backed fractional


class TestEngineFractionalStudy:
    def _repo_with_hw(self):
        repo = HyperBenchRepository()
        for h in (
            cycle_hypergraph(4),
            cycle_hypergraph(6),
            clique_hypergraph(4),
            random_hypergraph(3),
            random_hypergraph(5),
        ):
            repo.add(h, BenchmarkClass.CQ_APPLICATION)
        run_hw_analysis(repo, max_k=3, timeout=None)
        return repo

    def test_engine_study_matches_sequential_within_precision(self):
        plain_repo = self._repo_with_hw()
        plain = run_fractional_analysis(plain_repo, hw_values=(2, 3), timeout=30.0)

        engine = DecompositionEngine(store=ResultStore())
        engine_repo = self._repo_with_hw()
        backed = run_fractional_analysis(
            engine_repo, hw_values=(2, 3), timeout=30.0, engine=engine
        )
        # Table 5 is deterministic: identical cells
        assert {k: c.counts for k, c in plain.improve_hd.items()} == {
            k: c.counts for k, c in backed.improve_hd.items()
        }
        # Table 6 bisections may differ by (at most) the bisection precision
        # between the seeded and unseeded paths; the achieved widths agree
        # to within it and nothing times out either way
        for a, b in zip(plain_repo, engine_repo):
            if a.fhw_high is None:
                assert b.fhw_high is None
            else:
                assert abs(a.fhw_high - b.fhw_high) <= 0.25, a.name
        assert sum(c.counts["timeout"] for c in backed.frac_improve.values()) == 0

    def test_warm_rerun_replays_entirely_from_the_store(self):
        engine = DecompositionEngine(store=ResultStore())
        first_repo = self._repo_with_hw()
        first = run_fractional_analysis(
            first_repo, hw_values=(2, 3), timeout=30.0, engine=engine
        )
        misses_before = engine.store.session_misses
        warm_repo = self._repo_with_hw()
        warm = run_fractional_analysis(
            warm_repo, hw_values=(2, 3), timeout=30.0, engine=engine
        )
        assert engine.store.session_misses == misses_before
        assert engine.store.session_hits > 0
        assert {k: c.counts for k, c in first.frac_improve.items()} == {
            k: c.counts for k, c in warm.frac_improve.items()
        }

    def test_frac_outcome_ignores_witness_widths_from_smaller_k(self, triangle):
        """A fracimprove row at k=2 must not masquerade as k=5's optimum:
        the quality-sensitive replay is exact-k only."""
        from repro.analysis.fractional_analysis import frac_improve_outcome

        store = ResultStore()
        frac_improve_outcome(triangle, 2, timeout=30.0, store=store)
        assert store.methods() == {"fracimprove": 1}
        outcome = frac_improve_outcome(triangle, 5, timeout=30.0, store=store)
        assert outcome.verdict == YES
        # a fresh row was computed and persisted for k=5
        assert store.methods() == {"fracimprove": 2}

    def test_parallel_study_books_each_lookup_exactly_once(self):
        """The pre-check peek must not double-count misses that run_batch
        books again when executing the deferred jobs."""
        engine = DecompositionEngine(store=ResultStore(), jobs=2)
        repo = self._repo_with_hw()
        run_fractional_analysis(repo, hw_values=(2, 3), timeout=30.0, engine=engine)
        processed = sum(
            1 for e in repo if e.hw_high in (2, 3) and e.extra.get("hd") is not None
        )
        assert processed > 0
        assert engine.store.session_misses == processed
        assert engine.store.session_hits == 0
        # warm rerun: one hit per entry, misses unchanged
        run_fractional_analysis(
            self._repo_with_hw(), hw_values=(2, 3), timeout=30.0, engine=engine
        )
        assert engine.store.session_misses == processed
        assert engine.store.session_hits == processed

    def test_custom_precision_bypasses_the_cache(self):
        """A row bisected at coarse precision must not be replayed for a
        finer request — non-default precisions compute live, uncached."""
        from repro.analysis.fractional_analysis import frac_improve_outcome

        h = random_hypergraph(5)
        store = ResultStore()
        coarse = frac_improve_outcome(h, 3, timeout=30.0, precision=1.0, store=store)
        assert len(store) == 0  # non-default precision is never cached
        fine = frac_improve_outcome(h, 3, timeout=30.0, precision=0.01, store=store)
        assert len(store) == 0
        assert fine.decomposition.width <= coarse.decomposition.width
        default = frac_improve_outcome(h, 3, timeout=30.0, store=store)
        assert store.methods() == {"fracimprove": 1}
        assert default.verdict == YES

    def test_store_backed_hd_warm_start_without_hw_analysis(self, triangle):
        """A fresh repository with known hw but no in-session HD gets the
        decomposition replayed from the store."""
        engine = DecompositionEngine(store=ResultStore())
        engine.check(triangle, 2, method="hd", timeout=30.0)  # caches the HD
        repo = HyperBenchRepository()
        entry = repo.add(triangle, BenchmarkClass.CQ_APPLICATION)
        entry.hw_high = 2
        analysis = run_fractional_analysis(
            repo, hw_values=(2,), timeout=30.0, engine=engine
        )
        assert entry.extra.get("hd") is not None
        assert analysis.cell("improve", 2).counts["[0.5,1)"] == 1  # 2 -> 1.5
        assert entry.fhw_high == pytest.approx(1.5, abs=0.2)


# ------------------------------------------------------ parallel repo statistics


def _crash_on_rand2(hypergraph, deadline=None):
    if hypergraph.name == "rand2":
        os._exit(23)
    return compute_statistics(hypergraph, deadline)


def _spin_on_rand1(hypergraph, deadline=None):
    if hypergraph.name == "rand1":
        while True:
            pass
    return compute_statistics(hypergraph, deadline)


class TestParallelStatistics:
    def _repo(self):
        repo = HyperBenchRepository()
        for seed in range(5):
            repo.add(random_hypergraph(seed), BenchmarkClass.CQ_APPLICATION)
        return repo

    def test_parallel_matches_sequential(self):
        sequential = self._repo()
        parallel = self._repo()
        assert sequential.compute_all_statistics() == {}
        assert parallel.compute_all_statistics(jobs=3) == {}
        for a, b in zip(sequential, parallel):
            assert a.statistics == b.statistics, a.name

    def test_worker_crash_is_a_per_entry_timeout(self):
        repo = self._repo()
        failures = repo.compute_all_statistics(jobs=3, _stats_fn=_crash_on_rand2)
        assert failures == {"rand2": "timeout"}
        assert repo.get("rand2").statistics is None
        for entry in repo:
            if entry.name != "rand2":
                assert entry.statistics is not None, entry.name

    def test_hung_worker_is_a_per_entry_timeout(self):
        repo = self._repo()
        failures = repo.compute_all_statistics(
            jobs=3, timeout=0.5, _stats_fn=_spin_on_rand1
        )
        assert failures == {"rand1": "timeout"}
        for entry in repo:
            if entry.name != "rand1":
                assert entry.statistics is not None, entry.name

    def test_parallel_path_derives_timeout_from_deadline(self):
        """Without an explicit timeout, the cooperative deadline's remaining
        budget becomes the per-entry hard cap — a hung worker cannot
        outlive it."""
        repo = self._repo()
        failures = repo.compute_all_statistics(
            deadline=Deadline(0.5), jobs=3, _stats_fn=_spin_on_rand1
        )
        assert failures == {"rand1": "timeout"}

    def test_single_pending_entry_still_gets_crash_isolation(self):
        repo = self._repo()
        failures = repo.compute_all_statistics(jobs=3, _stats_fn=_crash_on_rand2)
        assert failures == {"rand2": "timeout"}
        # only rand2 is pending now — a retry must still run in a worker and
        # report the failure instead of crashing the caller
        failures = repo.compute_all_statistics(jobs=3, _stats_fn=_crash_on_rand2)
        assert failures == {"rand2": "timeout"}

    def test_skips_entries_that_already_have_statistics(self):
        repo = self._repo()
        repo.compute_all_statistics()
        marker = repo.get("rand0").statistics
        assert repo.compute_all_statistics(jobs=3) == {}
        assert repo.get("rand0").statistics is marker


# ------------------------------------------------------------------ CLI surfaces


class TestCliBounds:
    @pytest.fixture
    def triangle_file(self, tmp_path):
        path = tmp_path / "tri.hg"
        path.write_text("r(x,y),\ns(y,z),\nt(z,x).\n", encoding="utf-8")
        return path

    def test_fractional_command_with_cache_replays(self, triangle_file, tmp_path, capsys):
        cache = tmp_path / "cache.db"
        args = ["fractional", str(triangle_file), "-k", "2", "--cache", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "ImproveHD width      1.500" in first
        assert "FracImproveHD width  1.500" in first
        assert main(args) == 0  # warm: replayed from the store
        assert capsys.readouterr().out == first
        with ResultStore(cache) as store:
            assert "fracimprove" in store.methods()
            assert store.stats.hits > 0

    def test_fractional_command_without_engine(self, triangle_file, capsys):
        assert main(["fractional", str(triangle_file), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "FracImproveHD width  1.500" in out

    def test_fractional_command_no_hd(self, triangle_file, capsys):
        assert main(["fractional", str(triangle_file), "-k", "1"]) == 1
        assert "no HD of width <= 1" in capsys.readouterr().out

    def test_cache_bounds_lists_derived_intervals(self, triangle_file, tmp_path, capsys):
        cache = tmp_path / "cache.db"
        assert main(["width", str(triangle_file), "--cache", str(cache)]) == 0
        capsys.readouterr()
        assert main(["cache", "bounds", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "method" in out and "hd" in out
        row = next(line for line in out.splitlines() if " hd " in line)
        assert " 2" in row  # hw(triangle) = 2: lo = hi = 2

    def test_cache_bounds_empty_store(self, tmp_path, capsys):
        cache = tmp_path / "cache.db"
        with ResultStore(cache):
            pass
        assert main(["cache", "bounds", "--cache", str(cache)]) == 0
        assert "no width bounds" in capsys.readouterr().out
