"""Tests for benchmark build options (SQL-derived instances)."""

from repro.benchmark import BenchmarkClass, build_default_benchmark


class TestSqlDerived:
    def test_sql_derived_added_to_cq_application(self):
        base = build_default_benchmark(scale=0.05)
        extended = build_default_benchmark(scale=0.05, sql_derived=5)
        assert len(extended) == len(base) + 5
        assert (
            extended.count(BenchmarkClass.CQ_APPLICATION)
            == base.count(BenchmarkClass.CQ_APPLICATION) + 5
        )

    def test_sql_derived_deterministic(self):
        a = build_default_benchmark(scale=0.05, sql_derived=4)
        b = build_default_benchmark(scale=0.05, sql_derived=4)
        assert [e.name for e in a] == [e.name for e in b]

    def test_sql_derived_instances_analysable(self):
        from repro.decomp.detkdecomp import check_hd

        repo = build_default_benchmark(scale=0.05, sql_derived=3)
        sql_entries = [e for e in repo if e.name.startswith("cq_sql_")]
        assert len(sql_entries) == 3
        for entry in sql_entries:
            assert check_hd(entry.hypergraph, 3) is not None
