"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def triangle_file(tmp_path):
    path = tmp_path / "tri.hg"
    path.write_text("r(x,y),\ns(y,z),\nt(z,x).\n", encoding="utf-8")
    return path


@pytest.fixture
def acyclic_file(tmp_path):
    path = tmp_path / "path.hg"
    path.write_text("a(u,v), b(v,w).\n", encoding="utf-8")
    return path


class TestAnalyze:
    def test_analyze_output(self, triangle_file, capsys):
        assert main(["analyze", str(triangle_file)]) == 0
        out = capsys.readouterr().out
        assert "vertices     3" in out
        assert "BIP          1" in out

    def test_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.hg"
        bad.write_text("???", encoding="utf-8")
        assert main(["analyze", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestWidth:
    def test_exact_width(self, triangle_file, capsys):
        assert main(["width", str(triangle_file)]) == 0
        assert "hw(tri) = 2" in capsys.readouterr().out

    def test_width_with_ghw(self, triangle_file, capsys):
        assert main(["width", str(triangle_file), "--ghw"]) == 0
        assert "ghw(tri) = hw(tri) = 2" in capsys.readouterr().out

    def test_acyclic(self, acyclic_file, capsys):
        assert main(["width", str(acyclic_file)]) == 0
        assert "hw(path) = 1" in capsys.readouterr().out


class TestDecompose:
    @pytest.mark.parametrize(
        "algorithm", ["hd", "globalbip", "localbip", "balsep", "hybrid"]
    )
    def test_decompose_yes(self, triangle_file, capsys, algorithm):
        code = main(["decompose", str(triangle_file), "-k", "2", "--algorithm", algorithm])
        assert code == 0
        out = capsys.readouterr().out
        assert "width 2" in out
        assert "bag {" in out

    def test_decompose_no(self, triangle_file, capsys):
        assert main(["decompose", str(triangle_file), "-k", "1"]) == 1
        assert "no HD of width <= 1" in capsys.readouterr().out

    def test_decompose_json(self, triangle_file, capsys):
        assert main(["decompose", str(triangle_file), "-k", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "HD"
        assert payload["width"] == 2.0

    def test_decompose_improve(self, triangle_file, capsys):
        code = main(["decompose", str(triangle_file), "-k", "2", "--improve"])
        assert code == 0
        assert "1.500" in capsys.readouterr().out


class TestBenchmark:
    def test_benchmark_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "bench"
        assert main(["benchmark", str(out_dir), "--scale", "0.03"]) == 0
        assert (out_dir / "hyperbench.csv").exists()
        assert (out_dir / "hyperbench.json").exists()
        assert (out_dir / "hyperbench.html").exists()
        hypergraphs = list((out_dir / "hypergraphs").glob("*.hg"))
        assert len(hypergraphs) == 10  # 5 classes x 2 minimum


class TestConvert:
    def test_convert_cq(self, capsys):
        assert main(["convert", "--cq", "ans(X) :- r(X,Y), s(Y,Z)."]) == 0
        out = capsys.readouterr().out
        assert "r#0(" in out and out.rstrip().endswith(".")

    def test_convert_xcsp(self, tmp_path, capsys):
        xml = tmp_path / "inst.xml"
        xml.write_text(
            """<instance format="XCSP3" type="CSP">
            <variables><var id="x">0 1</var><var id="y">0 1</var></variables>
            <constraints><extension id="c"><list>x y</list>
            <supports>(0,1)</supports></extension></constraints></instance>""",
            encoding="utf-8",
        )
        assert main(["convert", "--xcsp", str(xml)]) == 0
        assert "c(x,y)." in capsys.readouterr().out

    def test_convert_sql(self, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text(
            json.dumps({"relations": {"tab": ["a", "b", "c"]}}), encoding="utf-8"
        )
        sql = tmp_path / "q.sql"
        sql.write_text(
            "SELECT * FROM tab t1, tab t2 WHERE t1.a = t2.a;", encoding="utf-8"
        )
        assert main(["convert", "--sql", str(sql), "--schema", str(schema)]) == 0
        out = capsys.readouterr().out
        assert "t1(" in out and "t2(" in out

    def test_convert_sql_needs_schema(self, tmp_path, capsys):
        sql = tmp_path / "q.sql"
        sql.write_text("SELECT * FROM t;", encoding="utf-8")
        assert main(["convert", "--sql", str(sql)]) == 2
