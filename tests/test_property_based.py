"""Property-based tests (hypothesis) on the core invariants.

These are the "decomposition returned by any algorithm always validates"
oracles plus the structural laws the theory guarantees:

* components partition the non-absorbed edges;
* ``fhw <= ghw <= hw`` on every instance where they are computed;
* yes-monotonicity of ``Check(·, k)`` in k;
* subedges of ``f(H, k)`` are proper subsets of edges;
* the relational operators obey their algebraic laws.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.components import components, is_balanced_separator, vertices_of
from repro.core.covers import fractional_cover
from repro.core.hypergraph import Hypergraph
from repro.core.properties import intersection_size, multi_intersection_size
from repro.core.subedges import subedge_family
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import check_hd
from repro.decomp.fractional import improve_hd
from repro.decomp.localbip import check_ghd_local_bip
from repro.relational.relation import Relation

# ----------------------------------------------------------------- strategies

vertex_names = st.integers(min_value=0, max_value=6).map(lambda i: f"v{i}")

edges_strategy = st.lists(
    st.frozensets(vertex_names, min_size=1, max_size=4),
    min_size=1,
    max_size=6,
    unique=True,
)


@st.composite
def hypergraphs(draw) -> Hypergraph:
    edge_sets = draw(edges_strategy)
    return Hypergraph({f"e{i}": sorted(e) for i, e in enumerate(edge_sets)})


SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------- components


@given(h=hypergraphs(), sep_seed=st.frozensets(vertex_names, max_size=4))
@SETTINGS
def test_components_partition_non_absorbed_edges(h: Hypergraph, sep_seed):
    comps = components(h.edges, sep_seed)
    seen: set[str] = set()
    for comp in comps:
        assert not (seen & comp), "components must be disjoint"
        seen |= comp
    for name in set(h.edge_names) - seen:
        assert h.edge(name) <= sep_seed, "absorbed edges lie inside the separator"


@given(h=hypergraphs(), sep_seed=st.frozensets(vertex_names, max_size=4))
@SETTINGS
def test_balanced_separator_definition(h: Hypergraph, sep_seed):
    balanced = is_balanced_separator(h.edges, sep_seed)
    sizes = [len(c) for c in components(h.edges, sep_seed)]
    assert balanced == all(s <= len(h.edges) / 2 for s in sizes)


# --------------------------------------------------------------------- covers


@given(h=hypergraphs())
@SETTINGS
def test_fractional_cover_is_feasible_and_bounded(h: Hypergraph):
    cover = fractional_cover(h.edges, h.vertices)
    # Feasibility: every vertex receives total weight >= 1.
    totals = {v: 0.0 for v in h.vertices}
    for name, weight in cover.weights.items():
        for v in h.edge(name):
            totals[v] += weight
    assert all(t >= 1.0 - 1e-6 for t in totals.values())
    # Bounded by the integral optimum (picking all edges works).
    assert cover.weight <= len(h.edges) + 1e-9


# ------------------------------------------------------------------- subedges


@given(h=hypergraphs(), k=st.integers(min_value=1, max_value=3))
@SETTINGS
def test_subedges_are_proper_subsets(h: Hypergraph, k: int):
    for sub in subedge_family(h.edges, k):
        assert any(sub < e for e in h.edges.values())
        assert sub  # non-empty


# ----------------------------------------------------------------- properties


@given(h=hypergraphs())
@SETTINGS
def test_multi_intersection_monotone_in_c(h: Hypergraph):
    values = [multi_intersection_size(h, c) for c in (2, 3, 4)]
    assert values == sorted(values, reverse=True)
    assert intersection_size(h) == values[0]


# ----------------------------------------------------------------- algorithms


@given(h=hypergraphs(), k=st.integers(min_value=1, max_value=3))
@SETTINGS
def test_hd_results_always_validate(h: Hypergraph, k: int):
    hd = check_hd(h, k)
    if hd is not None:
        hd.validate("HD")
        assert hd.integral_width <= k


@given(h=hypergraphs())
@SETTINGS
def test_hd_yes_is_monotone_in_k(h: Hypergraph):
    answers = [check_hd(h, k) is not None for k in (1, 2, 3, 4)]
    # once yes, always yes
    assert answers == sorted(answers)


@given(h=hypergraphs(), k=st.integers(min_value=1, max_value=3))
@SETTINGS
def test_ghw_at_most_hw(h: Hypergraph, k: int):
    if check_hd(h, k) is not None:
        ghd = check_ghd_balsep(h, k)
        assert ghd is not None
        ghd.validate("GHD")


@given(h=hypergraphs(), k=st.integers(min_value=1, max_value=2))
@SETTINGS
def test_localbip_and_balsep_agree(h: Hypergraph, k: int):
    a = check_ghd_local_bip(h, k)
    b = check_ghd_balsep(h, k)
    assert (a is None) == (b is None)
    for d in (a, b):
        if d is not None:
            d.validate("GHD")


@given(h=hypergraphs())
@SETTINGS
def test_improve_hd_never_increases_width(h: Hypergraph):
    hd = check_hd(h, 3)
    if hd is None:
        return
    fhd = improve_hd(hd)
    fhd.validate("FHD")
    assert fhd.width <= hd.width + 1e-9


# ------------------------------------------------------------------ relations

rows_strategy = st.sets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8
)


@given(r_rows=rows_strategy, s_rows=rows_strategy)
@SETTINGS
def test_semijoin_is_join_projection(r_rows, s_rows):
    r = Relation(("a", "b"), r_rows)
    s = Relation(("b", "c"), s_rows)
    semi = r.semijoin(s)
    via_join = r.join(s).project(("a", "b"))
    assert semi.rows == via_join.rows


@given(r_rows=rows_strategy, s_rows=rows_strategy)
@SETTINGS
def test_semijoin_antijoin_partition(r_rows, s_rows):
    r = Relation(("a", "b"), r_rows)
    s = Relation(("b", "c"), s_rows)
    semi = r.semijoin(s)
    anti = r.antijoin(s)
    assert semi.rows | anti.rows == r.rows
    assert not (semi.rows & anti.rows)


@given(r_rows=rows_strategy, s_rows=rows_strategy)
@SETTINGS
def test_join_commutes(r_rows, s_rows):
    r = Relation(("a", "b"), r_rows)
    s = Relation(("b", "c"), s_rows)
    assert r.join(s) == s.join(r)
