"""Unit tests for the timed-check / exact-width / portfolio drivers."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import (
    GHD_ALGORITHMS,
    NO,
    TIMEOUT,
    YES,
    exact_width,
    ghd_portfolio,
    timed_check,
)
from repro.errors import DeadlineExceeded
from tests.conftest import clique_hypergraph


class TestTimedCheck:
    def test_yes_outcome(self, triangle):
        outcome = timed_check(check_hd, triangle, 2)
        assert outcome.verdict == YES
        assert outcome.decomposition is not None
        assert outcome.answered

    def test_no_outcome(self, triangle):
        outcome = timed_check(check_hd, triangle, 1)
        assert outcome.verdict == NO
        assert outcome.decomposition is None
        assert outcome.answered

    def test_timeout_outcome(self, k5):
        outcome = timed_check(check_hd, k5, 2, timeout=0.0)
        assert outcome.verdict == TIMEOUT
        assert not outcome.answered

    def test_seconds_recorded(self, triangle):
        outcome = timed_check(check_hd, triangle, 2)
        assert outcome.seconds >= 0.0


class TestExactWidth:
    def test_exact_on_triangle(self, triangle):
        result = exact_width(check_hd, triangle, max_k=3)
        assert result.exact
        assert result.value == 2
        assert result.decomposition is not None

    def test_exact_on_acyclic(self, path3):
        result = exact_width(check_hd, path3, max_k=2)
        assert result.value == 1

    def test_upper_bound_without_exactness(self, k5):
        # With a zero timeout below k=3 everything times out; no width known.
        result = exact_width(check_hd, k5, max_k=2, timeout=0.0)
        assert not result.exact
        assert result.upper is None

    def test_timings_per_k(self, triangle):
        result = exact_width(check_hd, triangle, max_k=3)
        assert set(result.timings) == {1, 2}
        assert result.timings[1].verdict == NO
        assert result.timings[2].verdict == YES


class TestPortfolio:
    def test_portfolio_yes(self, triangle):
        best, per_algorithm = ghd_portfolio(triangle, 2, timeout=5.0)
        assert best.verdict == YES
        assert set(per_algorithm) == set(GHD_ALGORITHMS)

    def test_portfolio_no(self, triangle):
        best, _ = ghd_portfolio(triangle, 1, timeout=5.0)
        assert best.verdict == NO

    def test_portfolio_all_timeout(self, k5):
        best, per_algorithm = ghd_portfolio(k5, 2, timeout=0.0)
        assert best.verdict == TIMEOUT
        assert all(o.verdict == TIMEOUT for o in per_algorithm.values())

    def test_portfolio_picks_fastest_answer(self, cycle6):
        best, per_algorithm = ghd_portfolio(cycle6, 2, timeout=5.0)
        answered = [o for o in per_algorithm.values() if o.answered]
        assert best.seconds == min(o.seconds for o in answered)
