"""Unit tests for the conjunctive-query model, parser and conversion."""

import pytest

from repro.cq.convert import cq_to_hypergraph
from repro.cq.model import Atom, ConjunctiveQuery, is_variable, make_query
from repro.cq.parser import parse_cq
from repro.errors import ParseError


class TestModel:
    def test_variable_convention(self):
        assert is_variable("X")
        assert is_variable("_anon")
        assert not is_variable("const")
        assert not is_variable("42")
        assert not is_variable("")

    def test_atom_variables_in_order(self):
        atom = Atom("r", ("X", "c", "Y", "X"))
        assert atom.variables() == ("X", "Y")

    def test_query_arity_is_max_atom_arity(self):
        q = make_query([("r", ("X", "Y")), ("s", ("X", "Y", "Z"))])
        assert q.arity == 3

    def test_query_variables(self):
        q = make_query([("r", ("X", "Y")), ("s", ("Y", "Z"))], head=("X",))
        assert q.variables() == ("X", "Y", "Z")
        assert not q.is_boolean()

    def test_boolean_query(self):
        q = make_query([("r", ("X",))])
        assert q.is_boolean()

    def test_str_round(self):
        q = make_query([("r", ("X", "Y"))], head=("X",))
        assert str(q) == "ans(X) :- r(X, Y)."


class TestParser:
    def test_basic(self):
        q = parse_cq("ans(X, Y) :- r(X, Z), s(Z, Y).")
        assert q.head == ("X", "Y")
        assert len(q.atoms) == 2
        assert q.atoms[0] == Atom("r", ("X", "Z"))

    def test_boolean_head(self):
        q = parse_cq("ans() :- r(X).")
        assert q.head == ()

    def test_constants_preserved(self):
        q = parse_cq("ans(X) :- r(X, 'paris'), s(X, 42).")
        assert q.atoms[0].terms == ("X", "paris")
        assert q.atoms[1].terms == ("X", "42")

    def test_missing_separator_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("ans(X) r(X)")

    def test_empty_body_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("ans(X) :- ")

    def test_malformed_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("ans(X) :- r(X,, Y).")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("ans(X) :- r(X, s(Y.")


class TestConversion:
    def test_triangle_query(self):
        q = parse_cq("ans() :- r(X, Y), s(Y, Z), t(Z, X).")
        h = cq_to_hypergraph(q)
        assert h.num_edges == 3
        assert h.vertices == {"X", "Y", "Z"}

    def test_constants_produce_no_vertices(self):
        q = parse_cq("ans() :- r(X, 'c'), s(X, 5).")
        h = cq_to_hypergraph(q)
        assert h.vertices == {"X"}

    def test_ground_atoms_produce_no_edges(self):
        q = parse_cq("ans() :- r('a', 'b'), s(X, Y).")
        h = cq_to_hypergraph(q)
        assert h.num_edges == 1

    def test_self_join_edges_deduplicated(self):
        q = parse_cq("ans() :- r(X, Y), r(X, Y).")
        assert cq_to_hypergraph(q).num_edges == 1
        assert cq_to_hypergraph(q, dedupe=False).num_edges == 2

    def test_repeated_variable_atom(self):
        q = parse_cq("ans() :- r(X, X, Y).")
        h = cq_to_hypergraph(q)
        assert h.edge("r#0") == {"X", "Y"}

    def test_acyclic_cq_has_width_1(self):
        from repro.decomp.detkdecomp import check_hd

        q = parse_cq("ans(A) :- r(A, B), s(B, C), t(C, D).")
        assert check_hd(cq_to_hypergraph(q), 1) is not None
