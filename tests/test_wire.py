"""Wire-layer tests: packed hypergraphs, mask decompositions, pickling.

Property-based round trips for :class:`repro.core.bitset.PackedHypergraph`
(names, masks, fingerprint stability), the mask wire form of decompositions,
the fingerprint-carrying ``Hypergraph.__reduce__``, and a differential test
that packed-dispatch verdicts through real worker processes match the frozen
reference kernel (:mod:`repro.decomp.reference`) on random hypergraphs.
"""

from __future__ import annotations

import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.bitset import (
    HypergraphView,
    PackedHypergraph,
    pack_decomposition,
    unpack_decomposition,
)
from repro.core.hypergraph import Hypergraph
from repro.decomp.detkdecomp import check_hd
from repro.decomp.fractional import best_fractional_improvement
from repro.decomp.localbip import check_ghd_local_bip
from repro.decomp.reference import check_ghd_balsep_reference, check_hd_reference
import importlib

from repro.engine import fingerprint, map_checks, run_checked

# The package re-exports the ``fingerprint`` *function* under the submodule's
# name, so the module object must be resolved explicitly for monkeypatching.
fingerprint_module = importlib.import_module("repro.engine.fingerprint")
from tests.conftest import random_hypergraph

vertex_names = st.integers(min_value=0, max_value=6).map(lambda i: f"v{i}")

edges_strategy = st.lists(
    st.frozensets(vertex_names, min_size=1, max_size=4),
    min_size=1,
    max_size=6,
    unique=True,
)


def build(edge_sets) -> Hypergraph:
    return Hypergraph({f"e{i}": sorted(vs) for i, vs in enumerate(edge_sets)}, name="H")


# -------------------------------------------------------- pack / unpack


class TestPackedRoundTrip:
    @given(edges_strategy)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_unpack_restores_the_hypergraph(self, edge_sets):
        h = build(edge_sets)
        packed = PackedHypergraph.pack(h)
        restored = packed.unpack()
        assert restored == h
        assert restored.name == h.name
        assert restored.edge_names == h.edge_names
        assert restored.vertices == h.vertices

    @given(edges_strategy)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_pack_of_unpack_is_identity(self, edge_sets):
        packed = PackedHypergraph.pack(build(edge_sets))
        assert PackedHypergraph.pack(packed.unpack()) == packed

    @given(edges_strategy)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_fingerprint_is_stable_across_the_wire(self, edge_sets):
        h = build(edge_sets)
        packed = PackedHypergraph.pack(h)
        revived = pickle.loads(pickle.dumps(packed))
        assert revived == packed
        assert fingerprint(revived.unpack()) == fingerprint(h)

    def test_unpacked_view_matches_a_freshly_built_one(self):
        h = random_hypergraph(3)
        packed = PackedHypergraph.pack(h)
        restored = packed.unpack()
        cached = HypergraphView.of(restored)  # installed by unpack()
        rebuilt = HypergraphView(restored)
        assert cached.vertex_names == rebuilt.vertex_names
        assert cached.edge_names == rebuilt.edge_names
        assert cached.edge_masks == rebuilt.edge_masks
        assert cached.incidence == rebuilt.incidence
        assert cached.all_vertices == rebuilt.all_vertices
        assert cached.all_edges == rebuilt.all_edges

    def test_unpack_skips_rehashing(self, monkeypatch):
        h = random_hypergraph(5)
        packed = PackedHypergraph.pack(h)

        def boom(_h):  # the canonical form must not be recomputed
            raise AssertionError("canonical_form recomputed after unpack")

        monkeypatch.setattr(fingerprint_module, "canonical_form", boom)
        assert fingerprint(packed.unpack()) == packed.fingerprint


# --------------------------------------------------- decomposition wire


class TestDecompositionWire:
    @pytest.mark.parametrize("seed", range(8))
    def test_hd_round_trip_validates(self, seed):
        h = random_hypergraph(seed)
        decomposition = check_hd(h, 3)
        if decomposition is None:
            pytest.skip("no HD of width <= 3")
        payload = pickle.loads(pickle.dumps(pack_decomposition(decomposition)))
        restored = unpack_decomposition(payload, h)
        restored.validate()
        assert restored.kind == decomposition.kind
        assert restored.integral_width == decomposition.integral_width
        assert sorted(map(sorted, restored.bags())) == sorted(
            map(sorted, decomposition.bags())
        )

    def test_fractional_weights_survive(self, triangle):
        fhd = best_fractional_improvement(triangle, 2)
        assert fhd is not None
        restored = unpack_decomposition(pack_decomposition(fhd), triangle)
        assert restored.width == pytest.approx(fhd.width)

    def test_ghd_round_trip(self, triangle):
        decomposition = check_ghd_local_bip(triangle, 2)
        restored = unpack_decomposition(pack_decomposition(decomposition), triangle)
        restored.validate()
        assert restored.integral_width == decomposition.integral_width


# ------------------------------------------------- fingerprint pickling


class TestReduceCarriesFingerprint:
    def test_round_trip_skips_canonical_form(self, monkeypatch):
        h = random_hypergraph(11)
        fp = fingerprint(h)  # computed and cached before pickling
        revived = pickle.loads(pickle.dumps(h))
        assert revived == h

        def boom(_h):
            raise AssertionError("canonical_form recomputed after unpickling")

        monkeypatch.setattr(fingerprint_module, "canonical_form", boom)
        assert fingerprint(revived) == fp

    def test_uncomputed_fingerprint_stays_lazy(self):
        h = random_hypergraph(12)
        revived = pickle.loads(pickle.dumps(h))
        assert revived._fingerprint is None
        assert fingerprint(revived) == fingerprint(h)


# ----------------------------------------------------- differential runs


class TestPackedDispatchMatchesReference:
    """Verdicts through packed worker processes == in-process reference."""

    @pytest.mark.parametrize("seed", range(6))
    def test_hd_verdicts(self, seed):
        h = random_hypergraph(seed)
        for k in (1, 2, 3):
            reference = check_hd_reference(h, k)
            outcome = run_checked("hd", h, k, timeout=30.0)
            assert outcome.verdict == ("yes" if reference is not None else "no"), (
                h.name,
                k,
            )
            if outcome.verdict == "yes":
                outcome.decomposition.validate()
                assert outcome.decomposition.integral_width <= k
                # re-named at the parent: labels refer to this hypergraph
                assert outcome.decomposition.hypergraph is h

    def test_ghd_batch_through_the_pool(self):
        graphs = [random_hypergraph(seed) for seed in range(5)]
        tasks = [("balsep", h, 2, 30.0) for h in graphs]
        outcomes = map_checks(tasks, jobs=2)
        for h, outcome in zip(graphs, outcomes):
            reference = check_ghd_balsep_reference(h, 2)
            assert outcome.verdict == ("yes" if reference is not None else "no"), h.name
            if outcome.decomposition is not None:
                outcome.decomposition.validate()

    def test_packed_and_legacy_paths_agree(self):
        h = random_hypergraph(7)
        packed = run_checked("hd", h, 2, timeout=30.0)
        legacy = run_checked("hd", h, 2, timeout=30.0, packed=False)
        assert packed.verdict == legacy.verdict
        if packed.verdict == "yes":
            assert (
                packed.decomposition.integral_width
                == legacy.decomposition.integral_width
            )
