"""Unit tests for decomposition objects and their validators."""

import pytest

from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.errors import ValidationError


def make_path_td():
    h = Hypergraph({"a": ["1", "2"], "b": ["2", "3"]}, name="p")
    leaf = DecompositionNode({"2", "3"}, {"b": 1.0})
    root = DecompositionNode({"1", "2"}, {"a": 1.0}, [leaf])
    return h, Decomposition(h, root, kind="HD")


class TestBasics:
    def test_width(self):
        _, d = make_path_td()
        assert d.width == 1.0
        assert d.integral_width == 1

    def test_len_and_nodes(self):
        _, d = make_path_td()
        assert len(d) == 2
        assert len(list(d.nodes())) == 2

    def test_unknown_kind_rejected(self):
        h, d = make_path_td()
        with pytest.raises(ValueError):
            Decomposition(h, d.root, kind="XXX")

    def test_lambda_label_ignores_zero_weights(self):
        node = DecompositionNode({"x"}, {"a": 1.0, "b": 0.0})
        assert node.lambda_label() == {"a"}

    def test_to_dict_roundtrippable(self):
        _, d = make_path_td()
        payload = d.to_dict()
        assert payload["kind"] == "HD"
        assert payload["width"] == 1.0
        assert payload["root"]["children"][0]["bag"] == ["2", "3"]


class TestValidation:
    def test_valid_hd_passes(self):
        _, d = make_path_td()
        d.validate("HD")

    def test_edge_coverage_violation(self):
        h = Hypergraph({"a": ["1", "2"], "b": ["3", "4"]})
        root = DecompositionNode({"1", "2"}, {"a": 1.0})
        d = Decomposition(h, root, kind="TD")
        with pytest.raises(ValidationError, match="contained in no bag"):
            d.validate()

    def test_connectedness_violation(self):
        h = Hypergraph({"a": ["1", "2"], "b": ["2", "3"], "c": ["1", "3"]})
        # 1 appears at the root and in a grandchild but not between.
        grandchild = DecompositionNode({"1", "3"}, {"c": 1.0})
        child = DecompositionNode({"2", "3"}, {"b": 1.0}, [grandchild])
        root = DecompositionNode({"1", "2"}, {"a": 1.0}, [child])
        d = Decomposition(h, root, kind="TD")
        with pytest.raises(ValidationError, match="connectedness|disconnected"):
            d.validate()

    def test_cover_violation(self):
        h = Hypergraph({"a": ["1", "2"]})
        root = DecompositionNode({"1", "2"}, {})
        d = Decomposition(h, root, kind="GHD")
        with pytest.raises(ValidationError, match="not covered"):
            d.validate()

    def test_td_does_not_check_covers(self):
        h = Hypergraph({"a": ["1", "2"]})
        root = DecompositionNode({"1", "2"}, {})
        Decomposition(h, root, kind="TD").validate()

    def test_unknown_edge_in_cover(self):
        h = Hypergraph({"a": ["1"]})
        root = DecompositionNode({"1"}, {"zzz": 1.0})
        with pytest.raises(ValidationError, match="unknown edge"):
            Decomposition(h, root, kind="GHD").validate()

    def test_negative_weight_rejected(self):
        h = Hypergraph({"a": ["1"]})
        root = DecompositionNode({"1"}, {"a": -1.0})
        with pytest.raises(ValidationError, match="negative"):
            Decomposition(h, root, kind="FHD").validate()

    def test_fractional_weight_rejected_for_ghd(self):
        h = Hypergraph({"a": ["1"], "b": ["1"]})
        root = DecompositionNode({"1"}, {"a": 0.5, "b": 0.5})
        with pytest.raises(ValidationError, match="non-integral"):
            Decomposition(h, root, kind="GHD").validate()

    def test_fractional_weights_fine_for_fhd(self):
        h = Hypergraph({"a": ["1", "2"], "b": ["2", "3"], "c": ["1", "3"]})
        root = DecompositionNode({"1", "2", "3"}, {"a": 0.5, "b": 0.5, "c": 0.5})
        Decomposition(h, root, kind="FHD").validate()

    def test_special_condition_violation(self):
        # λ at the root covers vertex 3, which is cut from the root bag but
        # reappears below -> violates the HD special condition.
        h = Hypergraph({"r": ["1", "2"], "s": ["2", "3"]})
        child = DecompositionNode({"2", "3"}, {"s": 1.0})
        root = DecompositionNode({"1", "2"}, {"r": 1.0, "s": 1.0}, [child])
        d = Decomposition(h, root, kind="HD")
        with pytest.raises(ValidationError, match="special condition"):
            d.validate()

    def test_same_tree_valid_as_ghd(self):
        h = Hypergraph({"r": ["1", "2"], "s": ["2", "3"]})
        child = DecompositionNode({"2", "3"}, {"s": 1.0})
        root = DecompositionNode({"1", "2"}, {"r": 1.0, "s": 1.0}, [child])
        Decomposition(h, root, kind="GHD").validate()
