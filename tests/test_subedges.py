"""Unit tests for the subedge sets f(H,k) / f_u(H,k) of Equations 1-2."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.core.subedges import (
    augment_with_subedges,
    pairwise_intersections,
    subedge_family,
    subedges_for_edge,
)
from repro.errors import SubedgeLimitError


class TestPairwiseIntersections:
    def test_basic(self):
        e = frozenset({"a", "b", "c"})
        others = [frozenset({"a", "b", "x"}), frozenset({"c", "y"})]
        result = pairwise_intersections(e, others)
        assert frozenset({"a", "b"}) in result
        assert frozenset({"c"}) in result

    def test_subsumed_intersections_dropped(self):
        e = frozenset({"a", "b", "c"})
        others = [frozenset({"a", "b", "x"}), frozenset({"a", "z"})]
        result = pairwise_intersections(e, others)
        assert result == [frozenset({"a", "b"})]

    def test_full_edge_intersection_excluded(self):
        e = frozenset({"a", "b"})
        others = [frozenset({"a", "b", "c"})]
        assert pairwise_intersections(e, others) == []

    def test_disjoint_edges_give_nothing(self):
        e = frozenset({"a"})
        assert pairwise_intersections(e, [frozenset({"b"})]) == []


class TestSubedgesForEdge:
    def test_triangle_edge_subedges(self, triangle):
        subs = subedges_for_edge(
            triangle.edge("r"), [triangle.edge("s"), triangle.edge("t")], k=2
        )
        # r = {x,y}; intersections {y} (with s) and {x} (with t); unions up to
        # size 2 give {x}, {y} and... {x,y} = r itself is excluded.
        assert frozenset({"x"}) in subs
        assert frozenset({"y"}) in subs
        assert frozenset({"x", "y"}) not in subs

    def test_all_subedges_are_proper_subsets(self):
        e = frozenset({"a", "b", "c", "d"})
        others = [frozenset({"a", "b", "x"}), frozenset({"c", "d", "x"})]
        subs = subedges_for_edge(e, others, k=2)
        assert all(s < e for s in subs)
        # The union {a,b} ∪ {c,d} = e is excluded, its proper subsets remain.
        assert frozenset({"a", "b", "c"}) in subs

    def test_budget_enforced(self):
        e = frozenset(f"v{i}" for i in range(20))
        others = [frozenset(list(e)[:18])]
        with pytest.raises(SubedgeLimitError):
            subedges_for_edge(e, others, k=2, budget=100)


class TestSubedgeFamily:
    def test_triangle_family(self, triangle):
        subs = subedge_family(triangle.edges, 2)
        assert set(subs) == {
            frozenset({"x"}),
            frozenset({"y"}),
            frozenset({"z"}),
        }

    def test_deduplicated_against_original_edges(self):
        h = Hypergraph({"a": ["x", "y", "z"], "b": ["x", "y"], "c": ["y", "z"]})
        subs = subedge_family(h.edges, 2)
        assert frozenset({"x", "y"}) not in subs  # already an edge
        assert frozenset({"y", "z"}) not in subs

    def test_restricted_family_is_subset(self):
        h = Hypergraph(
            {
                "a": ["x", "y"],
                "b": ["y", "z"],
                "c": ["z", "w"],
                "d": ["w", "x"],
            }
        )
        full = set(subedge_family(h.edges, 2))
        local = set(subedge_family(h.edges, 2, restrict_to=["a", "b"]))
        assert local <= full

    def test_sorted_larger_first(self):
        h = Hypergraph(
            {"a": ["x", "y", "z", "w"], "b": ["x", "y", "q"], "c": ["z", "p"]}
        )
        subs = subedge_family(h.edges, 2)
        sizes = [len(s) for s in subs]
        assert sizes == sorted(sizes, reverse=True)


class TestAugment:
    def test_augment_adds_named_subedges(self, triangle):
        family, parent_map = augment_with_subedges(triangle.edges, 2)
        assert len(family) == 3 + 3
        for sub_name, parent in parent_map.items():
            assert family[sub_name] <= triangle.edge(parent)

    def test_augment_no_intersections(self):
        h = Hypergraph({"a": ["x", "y"], "b": ["p", "q"]})
        family, parent_map = augment_with_subedges(h.edges, 2)
        assert parent_map == {}
        assert len(family) == 2
