"""Tests for the SQL-pipeline-driven benchmark generator."""

import random

import pytest

from repro.benchmark.generators.sql_workload import (
    generate_sql_application_cqs,
    generate_sql_text,
    synthetic_schema,
)
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import exact_width
from repro.sql.convert import sql_to_hypergraphs
from repro.sql.parser import parse_sql


class TestSchema:
    def test_synthetic_schema_relations(self):
        schema = synthetic_schema(4)
        assert "fact" in schema
        assert "dim3" in schema
        assert "ref" in schema
        assert schema.attributes("fact") == ("fk0", "fk1", "fk2", "fk3", "measure")


class TestSqlText:
    @pytest.mark.parametrize("seed", range(15))
    def test_generated_sql_parses(self, seed):
        rng = random.Random(seed)
        sql = generate_sql_text(rng)
        parse_sql(sql)  # must not raise

    @pytest.mark.parametrize("seed", range(15))
    def test_generated_sql_converts(self, seed):
        rng = random.Random(seed)
        schema = synthetic_schema()
        sql = generate_sql_text(rng)
        hypergraphs = sql_to_hypergraphs(sql, schema, name=f"w{seed}")
        assert hypergraphs


class TestGenerator:
    def test_count_and_determinism(self):
        first = generate_sql_application_cqs(8, seed=3)
        second = generate_sql_application_cqs(8, seed=3)
        assert len(first) == 8
        assert [h.edges for h in first] == [h.edges for h in second]

    def test_unique_names(self):
        names = [h.name for h in generate_sql_application_cqs(10, seed=1)]
        assert len(set(names)) == len(names)

    def test_application_shape_low_width(self):
        """SQL-derived CQs behave like the paper's CQ Application class."""
        for h in generate_sql_application_cqs(12, seed=5):
            result = exact_width(check_hd, h, max_k=3, timeout=5.0)
            assert result.upper is not None and result.upper <= 3

    def test_mostly_star_joins_are_acyclic(self):
        hypergraphs = generate_sql_application_cqs(12, seed=7)
        acyclic = sum(1 for h in hypergraphs if check_hd(h, 1) is not None)
        assert acyclic >= len(hypergraphs) // 2
