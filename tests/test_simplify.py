"""Tests for the width-preserving simplifications and decomposition lifting."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.core.simplify import lift_decomposition, simplify
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import exact_width
from tests.conftest import random_hypergraph


class TestSimplify:
    def test_duplicate_edges_dropped(self):
        h = Hypergraph({"a": ["x", "y"], "b": ["y", "x"], "c": ["y", "z"]})
        trace = simplify(h)
        assert "b" in trace.dropped_edges
        assert trace.dropped_edges["b"] == "a"

    def test_covered_edges_dropped(self):
        h = Hypergraph({"big": ["x", "y", "z"], "small": ["x", "y"]})
        trace = simplify(h)
        assert trace.dropped_edges == {"small": "big"}

    def test_survivor_chains_resolved(self):
        h = Hypergraph({"a": ["x"], "b": ["x", "y"], "c": ["x", "y", "z"]})
        trace = simplify(h)
        assert trace.dropped_edges["a"] == "c"
        assert trace.dropped_edges["b"] == "c"

    def test_degree_one_vertices_removed(self):
        h = Hypergraph({"a": ["x", "y", "lonely"], "b": ["y", "z"]})
        trace = simplify(h)
        # Both "lonely" and "x" occur only in edge a and are removed.
        assert "lonely" in trace.dropped_vertices
        assert "x" in trace.dropped_vertices
        assert trace.reduced.edge("a") == {"y"}

    def test_edge_never_emptied(self):
        h = Hypergraph({"solo": ["only"]})
        trace = simplify(h)
        assert trace.reduced.num_edges == 1
        assert trace.reduced.edge("solo")  # non-empty

    def test_no_duplicate_created_by_shrinking(self):
        # Shrinking "a" to {x, y} would duplicate "b"; it must be skipped.
        h = Hypergraph({"a": ["x", "y", "p"], "b": ["x", "y", "q"]})
        trace = simplify(h)
        shrunk = {trace.reduced.edge("a"), trace.reduced.edge("b")}
        assert len(shrunk) == 2

    def test_trivial_trace(self, triangle):
        trace = simplify(triangle)
        assert not trace.nontrivial
        assert trace.reduced == triangle

    def test_reduced_never_larger(self):
        for seed in range(10):
            h = random_hypergraph(seed)
            trace = simplify(h)
            assert trace.reduced.num_edges <= h.num_edges
            assert trace.reduced.num_vertices <= h.num_vertices


class TestWidthPreservation:
    @pytest.mark.parametrize("seed", range(25))
    def test_hw_value_preserved(self, seed):
        h = random_hypergraph(seed)
        trace = simplify(h)
        if not trace.reduced.num_edges:
            return
        original = exact_width(check_hd, h, 4).value
        reduced = exact_width(check_hd, trace.reduced, 4).value
        assert original == reduced

    @pytest.mark.parametrize("seed", range(25))
    def test_lifted_decomposition_validates(self, seed):
        h = random_hypergraph(seed)
        trace = simplify(h)
        if not trace.reduced.num_edges:
            return
        width = exact_width(check_hd, trace.reduced, 4).value
        if width is None:
            return
        hd = check_hd(trace.reduced, width)
        lifted = lift_decomposition(trace, hd)
        lifted.validate(lifted.kind)
        assert lifted.integral_width <= max(width, 1)

    def test_lift_rejects_foreign_decomposition(self, triangle, path3):
        trace = simplify(triangle)
        hd = check_hd(path3, 1)
        with pytest.raises(ValueError):
            lift_decomposition(trace, hd)

    def test_lift_keeps_kind_without_vertex_drops(self):
        h = Hypergraph({"a": ["x", "y"], "b": ["y", "x"], "c": ["y", "z"], "d": ["z", "x"]})
        trace = simplify(h)
        assert trace.dropped_vertices == {}
        width = exact_width(check_hd, trace.reduced, 3).value
        hd = check_hd(trace.reduced, width)
        lifted = lift_decomposition(trace, hd)
        assert lifted.kind == "HD"
        lifted.validate("HD")
