"""Tests for the overload-protection layer (``repro.service.overload``).

Covers the admission controller (pending budget, priority watermarks,
per-kind caps, per-tenant token buckets), the circuit breaker state machine
under a deterministic clock, deadline propagation (clamping, expiry on
arrival, shedding at wave formation), graceful drain (in-process and a real
SIGTERM against a ``repro serve`` subprocess), the HTTP status taxonomy
(429/503 + ``Retry-After``, 413 for oversized bodies, degraded
``/healthz``), and the client's jittered backoff loop.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.hypergraph import Hypergraph
from repro.engine import DecompositionEngine, ResultStore, register_method
from repro.service import (
    AdmissionController,
    BatchScheduler,
    CircuitBreaker,
    Rejected,
    ServiceClient,
    ServiceThread,
    TokenBucket,
)
from repro.service.client import ServiceError
from repro.service.overload import CLOSED, HALF_OPEN, OPEN, PRIORITIES
from repro.service.scheduler import EXPIRED, REJECTED
from tests.conftest import REPO_ROOT, FakeClock, cycle_hypergraph


def _triangle() -> Hypergraph:
    return Hypergraph(
        {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="triangle"
    )


def _ovl_sleepy(hypergraph, k, deadline):
    """A slow registered check so flights stay in flight during the test."""
    time.sleep(0.3)
    return None


register_method("ovl_sleepy", _ovl_sleepy)


# --------------------------------------------------------------- token bucket


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock(0.0)
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.take() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.take()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.take() == 0.0

    def test_never_exceeds_capacity(self):
        clock = FakeClock(0.0)
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        assert bucket.take() > 0.0  # capped at burst, not 100 tokens

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


# ------------------------------------------------------- admission controller


class TestAdmissionController:
    def test_pending_budget_and_priority_watermarks(self):
        admission = AdmissionController(max_pending=10)
        # high fills the budget, normal cuts at 90 %, low at 50 %.
        assert admission.threshold(PRIORITIES["high"]) == 10
        assert admission.threshold(PRIORITIES["normal"]) == 9
        assert admission.threshold(PRIORITIES["low"]) == 5
        admission.admit("check", None, PRIORITIES["high"], 9, {})
        with pytest.raises(Rejected) as excinfo:
            admission.admit("check", None, PRIORITIES["normal"], 9, {})
        assert excinfo.value.reason == "capacity"
        with pytest.raises(Rejected) as excinfo:
            admission.admit("check", None, PRIORITIES["low"], 5, {})
        assert excinfo.value.reason == "capacity"

    def test_tiny_budget_still_admits_every_class(self):
        admission = AdmissionController(max_pending=1)
        for rank in PRIORITIES.values():
            admission.admit("check", None, rank, 0, {})  # floor is 1, not 0

    def test_kind_cap(self):
        admission = AdmissionController(kind_limits={"width": 1})
        admission.admit("width", None, 0, 5, {"width": 0})
        with pytest.raises(Rejected) as excinfo:
            admission.admit("width", None, 0, 5, {"width": 1})
        assert excinfo.value.reason == "kind"
        # Other kinds are untouched by the cap.
        admission.admit("check", None, 0, 5, {"width": 1})

    def test_tenant_rate_isolates_tenants(self):
        clock = FakeClock(0.0)
        admission = AdmissionController(
            tenant_rate=1.0, tenant_burst=1.0, clock=clock
        )
        admission.admit("check", "alice", 0, 0, {})
        with pytest.raises(Rejected) as excinfo:
            admission.admit("check", "alice", 0, 0, {})
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after == pytest.approx(1.0)
        # Bob has his own bucket: Alice's burst cannot starve him.
        admission.admit("check", "bob", 0, 0, {})

    def test_snapshot_shape(self):
        admission = AdmissionController(max_pending=4, tenant_rate=2.0)
        admission.admit("check", "alice", 0, 0, {})
        snap = admission.snapshot()
        assert snap["max_pending"] == 4
        assert snap["tenants_tracked"] == 1


# ------------------------------------------------------------ circuit breaker


class TestCircuitBreaker:
    def test_full_state_cycle(self):
        clock = FakeClock(0.0)
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=5.0, clock=clock
        )
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # no second probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.opened == 1

    def test_half_open_failure_reopens(self):
        clock = FakeClock(0.0)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=2.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(2.0)
        assert breaker.allow()       # probe granted
        breaker.record_failure()     # probe failed
        assert breaker.state == OPEN
        assert breaker.opened == 2

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never 3 *consecutive* failures


# --------------------------------------------------- scheduler-level behavior


class TestSchedulerOverload:
    def test_burst_beyond_budget_rejects_excess_without_errors(self):
        """The tentpole property, in process: a 4x burst of distinct jobs
        against a budget of 4 yields admits + typed rejects, zero errors."""

        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(
                engine, window=0.1,
                admission=AdmissionController(max_pending=4),
            )

            async def ask(i):
                try:
                    return await scheduler.check(
                        cycle_hypergraph(3 + i), 2, priority="high"
                    )
                except Rejected as exc:
                    return {"verdict": REJECTED, "reason": exc.reason}

            results = await asyncio.gather(*(ask(i) for i in range(16)))
            stats = scheduler.stats
            await scheduler.close(close_engine=True)
            return results, stats

        results, stats = asyncio.run(main())
        verdicts = [r["verdict"] for r in results]
        assert verdicts.count(REJECTED) == 12
        assert all(v in ("yes", "no", REJECTED) for v in verdicts)
        assert stats.rejected == 12
        assert stats.errors == 0
        assert all(
            r["reason"] == "capacity" for r in results if r["verdict"] == REJECTED
        )

    def test_coalesced_and_store_answers_bypass_admission(self):
        """Duplicates and cache hits create no work, so a full budget must
        not reject them."""

        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(
                engine, window=0.05,
                admission=AdmissionController(max_pending=1),
            )
            h = _triangle()
            first = await asyncio.gather(*(scheduler.check(h, 2) for _ in range(8)))
            replay = await scheduler.check(h, 2)  # store answer, budget full or not
            stats = scheduler.stats
            await scheduler.close(close_engine=True)
            return first, replay, stats

        first, replay, stats = asyncio.run(main())
        assert {r["verdict"] for r in first} == {"yes"}
        assert replay["source"] == "store"
        assert stats.rejected == 0 and stats.coalesced == 7

    def test_deadline_clamps_job_timeout(self):
        assert BatchScheduler._clamp(60.0, 5.0) == 5.0
        assert BatchScheduler._clamp(2.0, 5.0) == 2.0
        assert BatchScheduler._clamp(None, 5.0) == 5.0
        assert BatchScheduler._clamp(60.0, None) == 60.0
        assert BatchScheduler._clamp(None, None) is None

    def test_expired_on_arrival_never_registers_a_flight(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.0)
            payload = await scheduler.check(_triangle(), 2, deadline=0.0)
            stats = scheduler.stats
            engine_stats = engine.stats
            await scheduler.close(close_engine=True)
            return payload, stats, engine_stats

        payload, stats, engine_stats = asyncio.run(main())
        assert payload["verdict"] == EXPIRED
        assert stats.expired == 1 and engine_stats.executed == 0

    def test_dead_deadline_flight_is_shed_not_dispatched(self):
        """Hop three: a flight whose only waiter already expired is dropped
        at wave formation instead of burning engine time."""

        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.3)
            payload = await scheduler.check(
                _triangle(), 2, method="ovl_sleepy", deadline=0.05
            )
            # Let the wave form (and shed) after the waiter gave up.
            await asyncio.sleep(0.4)
            stats = scheduler.stats
            engine_stats = engine.stats
            await scheduler.close(close_engine=True)
            return payload, stats, engine_stats

        payload, stats, engine_stats = asyncio.run(main())
        assert payload["verdict"] == EXPIRED
        assert stats.shed == 1
        assert engine_stats.executed == 0

    def test_breaker_opens_on_wave_failures_then_recovers(self):
        """closed → open under a failing engine → half-open probe → closed,
        driven through the scheduler's own dispatch loop."""
        clock = FakeClock(0.0)
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=60.0, clock=clock
        )

        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.0, breaker=breaker)
            # Two waves that raise inside run_batch (unknown method).
            for i in range(2):
                bad = await scheduler.check(
                    cycle_hypergraph(3 + i), 2, method="no-such-method"
                )
                assert bad["verdict"] == "error"
            assert breaker.state == OPEN
            # While open, admission refuses instantly.
            with pytest.raises(Rejected) as excinfo:
                await scheduler.check(_triangle(), 2)
            assert excinfo.value.reason == "breaker"
            assert excinfo.value.retry_after == pytest.approx(60.0)
            # After the cooldown, the probe wave is admitted and heals it.
            clock.advance(60.0)
            assert breaker.state == HALF_OPEN
            good = await scheduler.check(_triangle(), 2)
            assert good["verdict"] == "yes"
            assert breaker.state == CLOSED
            stats = scheduler.stats
            await scheduler.close(close_engine=True)
            return stats

        stats = asyncio.run(main())
        assert stats.rejected == 1 and stats.errors == 2

    def test_open_breaker_sheds_already_queued_wave(self):
        """Flights admitted before the circuit opened are shed with typed
        payloads at dispatch time, not fed to the known-bad backend."""
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=60.0)

        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.2, breaker=breaker)
            task = asyncio.ensure_future(scheduler.check(_triangle(), 2))
            await asyncio.sleep(0.05)  # admitted, wave not yet formed
            breaker.record_failure()   # the circuit opens underneath it
            payload = await task
            stats = scheduler.stats
            engine_stats = engine.stats
            await scheduler.close(close_engine=True)
            return payload, stats, engine_stats

        payload, stats, engine_stats = asyncio.run(main())
        assert payload["verdict"] == REJECTED
        assert payload["reason"] == "breaker"
        assert stats.shed == 1 and engine_stats.executed == 0

    def test_drain_refuses_new_work_and_reports_counts(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.0)
            task = asyncio.ensure_future(
                scheduler.check(_triangle(), 2, method="ovl_sleepy")
            )
            await asyncio.sleep(0.05)  # in flight
            report = await scheduler.drain(budget=5.0)
            with pytest.raises(Rejected) as excinfo:
                await scheduler.check(cycle_hypergraph(4), 2)
            landed = await task
            await scheduler.close(close_engine=True)
            return report, excinfo.value, landed

        report, rejection, landed = asyncio.run(main())
        assert report == {"in_flight": 1, "drained": 1, "stragglers": 0}
        assert rejection.reason == "draining"
        assert landed["verdict"] == "no"

    def test_drain_budget_reports_stragglers(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.0)
            task = asyncio.ensure_future(
                scheduler.check(_triangle(), 2, method="ovl_sleepy")
            )
            await asyncio.sleep(0.05)
            report = await scheduler.drain(budget=0.01)  # far too tight
            await task  # the straggler still lands afterwards
            await scheduler.close(close_engine=True)
            return report

        report = asyncio.run(main())
        assert report["in_flight"] == 1 and report["stragglers"] == 1


# --------------------------------------------------------- HTTP status taxonomy


class TestHttpOverload:
    def test_burst_yields_only_success_and_429_with_retry_after(self):
        """The acceptance criterion over real HTTP: a burst beyond the
        budget sees 2xx and 429 only — never 500 — and rejects carry
        Retry-After."""
        engine = DecompositionEngine(store=ResultStore())
        admission = AdmissionController(max_pending=2, retry_after_hint=1.5)
        with ServiceThread(engine, window=0.1, admission=admission) as service:
            statuses: list[int] = []
            retry_afters: list[float | None] = []

            def ask(i: int) -> None:
                with ServiceClient(port=service.port) as client:
                    try:
                        result = client.check(cycle_hypergraph(3 + i), 2)
                        statuses.append(200)
                        assert result["verdict"] in ("yes", "no")
                    except ServiceError as exc:
                        statuses.append(exc.status)
                        retry_afters.append(exc.retry_after)

            threads = [
                threading.Thread(target=ask, args=(i,)) for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert set(statuses) <= {200, 429}
        assert statuses.count(429) >= 1  # the budget of 2 cannot fit 12
        assert 500 not in statuses
        assert all(ra is not None and ra >= 1.0 for ra in retry_afters)

    def test_tenant_rate_limit_maps_to_429(self):
        engine = DecompositionEngine(store=ResultStore())
        admission = AdmissionController(tenant_rate=0.001, tenant_burst=1.0)
        with ServiceThread(engine, window=0.0, admission=admission) as service:
            with ServiceClient(port=service.port) as client:
                first = client.check(_triangle(), 2, tenant="alice")
                assert first["verdict"] == "yes"
                with pytest.raises(ServiceError) as excinfo:
                    client.check(cycle_hypergraph(4), 2, tenant="alice")
                assert excinfo.value.status == 429
                assert excinfo.value.payload["reason"] == "rate"
                assert excinfo.value.retry_after is not None
                # A different tenant still gets in.
                other = client.check(cycle_hypergraph(5), 2, tenant="bob")
                assert other["verdict"] in ("yes", "no")

    def test_open_breaker_maps_to_503_and_degraded_healthz(self):
        engine = DecompositionEngine(store=ResultStore())
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=60.0)
        with ServiceThread(engine, window=0.0, breaker=breaker) as service:
            with ServiceClient(port=service.port) as client:
                assert client.healthz()["status"] == "ok"
                breaker.record_failure()  # wedge the backend by fiat
                with pytest.raises(ServiceError) as excinfo:
                    client.check(_triangle(), 2)
                assert excinfo.value.status == 503
                assert excinfo.value.payload["reason"] == "breaker"
                with pytest.raises(ServiceError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 503
                assert excinfo.value.payload["status"] == "degraded"
                stats = client.stats()
                assert stats["breaker"]["state"] == OPEN

    def test_unknown_method_is_400_and_does_not_trip_breaker(self):
        engine = DecompositionEngine(store=ResultStore())
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=60.0)
        with ServiceThread(engine, window=0.0, breaker=breaker) as service:
            with ServiceClient(port=service.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.check(_triangle(), 2, method="no-such-method")
                assert excinfo.value.status == 400
                assert breaker.state == CLOSED
                assert client.check(_triangle(), 2)["verdict"] == "yes"

    def test_invalid_priority_is_400(self):
        engine = DecompositionEngine(store=ResultStore())
        with ServiceThread(engine) as service:
            with ServiceClient(port=service.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.check(_triangle(), 2, priority="urgent")
                assert excinfo.value.status == 400

    def test_oversized_body_gets_413(self):
        engine = DecompositionEngine(store=ResultStore())
        with ServiceThread(engine, max_body_bytes=1024) as service:
            with socket.create_connection(("127.0.0.1", service.port), 5) as s:
                s.sendall(
                    b"POST /check HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
                )
                s.settimeout(5)
                response = s.recv(4096)
            assert response.startswith(b"HTTP/1.1 413"), response[:80]
            # The server survives the refusal.
            with ServiceClient(port=service.port) as client:
                assert client.healthz()["status"] == "ok"

    def test_service_thread_stop_reports_wedged_thread(self):
        """A join that times out raises instead of silently leaking."""
        engine = DecompositionEngine(store=ResultStore())
        service = ServiceThread(engine, window=0.0)
        started = threading.Event()

        def slow_request():
            with ServiceClient(port=service.port) as client:
                started.set()
                client.check(_triangle(), 2, method="ovl_sleepy")

        t = threading.Thread(target=slow_request)
        t.start()
        started.wait(5)
        time.sleep(0.05)  # the sleepy wave is now mid-flight
        with pytest.raises(RuntimeError, match="did not stop"):
            service.stop(join_timeout=0.01)
        service.stop()  # the real join: drains and exits cleanly
        t.join(10)
        assert service.drain_report is not None

    def test_stop_drains_inflight_waves(self):
        """Requests in flight when stop() begins still get 200s — the
        listener closes but live connections drain."""
        engine = DecompositionEngine(store=ResultStore())
        service = ServiceThread(engine, window=0.0)
        results: list[dict] = []
        started = threading.Event()

        def slow_request():
            with ServiceClient(port=service.port) as client:
                started.set()
                results.append(
                    client.check(_triangle(), 2, method="ovl_sleepy")
                )

        t = threading.Thread(target=slow_request)
        t.start()
        started.wait(5)
        time.sleep(0.1)  # in flight
        service.stop()
        t.join(10)
        assert results and results[0]["verdict"] == "no"
        assert service.drain_report["stragglers"] == 0


# ------------------------------------------------------------- client backoff


class _FlakyTransport:
    """Stand-in for ``_request_once``: refuse N times, then succeed."""

    def __init__(self, failures: int, status: int = 429, retry_after=None):
        self.remaining = failures
        self.status = status
        self.retry_after = retry_after
        self.calls = 0

    def __call__(self, method, path, body=None):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise ServiceError(
                self.status, {"error": "overloaded"}, retry_after=self.retry_after
            )
        return {"verdict": "yes"}


class TestClientBackoff:
    def _client(self, **kwargs) -> tuple[ServiceClient, list[float]]:
        sleeps: list[float] = []
        client = ServiceClient(
            port=1, rng=lambda: 0.5, sleep=sleeps.append, **kwargs
        )
        return client, sleeps

    def test_retries_429_with_exponential_jittered_delays(self):
        client, sleeps = self._client(retries=3, backoff_base=0.1)
        transport = _FlakyTransport(failures=3)
        client._request_once = transport
        assert client._request("POST", "/check")["verdict"] == "yes"
        assert transport.calls == 4
        # base·2^n scaled by the pinned jitter factor 0.75.
        assert sleeps == pytest.approx([0.075, 0.15, 0.3])

    def test_honors_retry_after_over_schedule(self):
        client, sleeps = self._client(retries=1, backoff_base=0.01)
        client._request_once = _FlakyTransport(failures=1, retry_after=2.5)
        client._request("GET", "/stats")
        assert sleeps == [2.5]  # the server's hint overrides 0.0075

    def test_retry_budget_bounds_total_sleep(self):
        client, sleeps = self._client(retries=10, retry_budget=0.2, backoff_base=0.1)
        client._request_once = _FlakyTransport(failures=10)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/check")
        assert excinfo.value.status == 429
        assert sum(sleeps) <= 0.2

    def test_no_retry_by_default_and_never_on_client_errors(self):
        client, sleeps = self._client()
        client._request_once = _FlakyTransport(failures=1)
        with pytest.raises(ServiceError):
            client._request("POST", "/check")
        assert sleeps == []
        client, sleeps = self._client(retries=5)
        client._request_once = _FlakyTransport(failures=1, status=400)
        with pytest.raises(ServiceError):
            client._request("POST", "/check")
        assert sleeps == []  # 400 is not retryable


# ----------------------------------------------------- SIGTERM drain, for real


class TestGracefulDrain:
    def test_sigterm_drains_inflight_waves_into_store(self, tmp_path):
        """A real ``repro serve`` process, SIGTERMed with a wave in flight:
        exits 0, answers the in-flight request, persists its verdict."""
        cache = tmp_path / "drain.db"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--cache", str(cache),
                "--window", "0.5", "--drain-seconds", "10",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "repro service on http://" in banner, banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0].rstrip("/"))

            results: list[dict] = []

            def ask():
                with ServiceClient(port=port, timeout=30.0) as client:
                    results.append(client.check(cycle_hypergraph(6), 2))

            t = threading.Thread(target=ask)
            t.start()
            time.sleep(0.2)  # request accepted, wave still in its window
            proc.send_signal(signal.SIGTERM)
            t.join(timeout=30)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        output = proc.stdout.read()
        assert "draining" in output
        # The in-flight client was answered, not dropped.
        assert results and results[0]["verdict"] == "yes"
        # ... and the drained wave's verdict landed in the store.
        store = ResultStore(cache)
        try:
            assert len(store) >= 1
        finally:
            store.close()
