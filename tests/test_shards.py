"""The fingerprint-sharded result store.

Routing determinism (every process agrees on each row's home shard),
``kind_bounds`` replication (implied answers stay shard-local no matter
which shard a reader consults), the aggregated accounting surfaces the CLI
``cache stats|clear`` commands sit on, LRU capping split across shards, and
in-place migration of a pre-shard single-file cache."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.decomp.driver import CheckOutcome
from repro.engine import (
    DecompositionEngine,
    JobSpec,
    ResultStore,
    ShardedResultStore,
    fingerprint,
    open_result_store,
)
from repro.engine.shards import shard_for
from repro.errors import ReproError
from tests.conftest import random_hypergraph
from tests.test_cross_bounds import write_pr2_era_store


def _fingerprints(count: int) -> list[str]:
    return [fingerprint(random_hypergraph(seed)) for seed in range(count)]


# ---------------------------------------------------------------- routing


class TestRouting:
    def test_routing_is_deterministic_and_in_range(self):
        for n_shards in (1, 2, 4, 7):
            for fp in _fingerprints(20):
                route = shard_for(fp, n_shards)
                assert 0 <= route < n_shards
                assert route == shard_for(fp, n_shards)  # stable
                assert route == int(fp[:2], 16) % n_shards

    def test_non_hex_fingerprints_still_route(self):
        assert 0 <= shard_for("not-hex-at-all", 4) < 4
        assert shard_for("not-hex-at-all", 4) == shard_for("not-hex-at-all", 4)

    def test_rows_land_on_their_routed_shard(self, tmp_path):
        fps = _fingerprints(12)
        with ShardedResultStore(tmp_path / "cache.d", shards=4) as store:
            for fp in fps:
                store.put(fp, "hd", 2, None, CheckOutcome("yes", 0.1))
            for fp in fps:
                owner = shard_for(fp, 4)
                for index, shard in enumerate(store.shards):
                    # bounds=False bypasses the replicated knowledge layer,
                    # so only the owner holds the literal row
                    hit = shard.get(fp, "hd", 2, None, record=False, bounds=False)
                    assert (hit is not None) == (index == owner)

    def test_reopen_recovers_the_same_routing(self, tmp_path):
        fps = _fingerprints(8)
        with ShardedResultStore(tmp_path / "cache.d", shards=3) as store:
            for fp in fps:
                store.put(fp, "hd", 2, None, CheckOutcome("no", 0.1))
        # no shard count passed: the manifest decides
        with open_result_store(tmp_path / "cache.d") as store:
            assert isinstance(store, ShardedResultStore)
            assert store.n_shards == 3
            for fp in fps:
                assert store.get(fp, "hd", 2, None, record=False).verdict == "no"

    def test_conflicting_shard_count_is_refused(self, tmp_path):
        with ShardedResultStore(tmp_path / "cache.d", shards=2):
            pass
        with pytest.raises(ReproError, match="resharding"):
            ShardedResultStore(tmp_path / "cache.d", shards=5)


# ------------------------------------------------------------- replication


class TestKindBoundsReplication:
    def test_every_shard_sees_the_owners_kind_bounds(self, tmp_path):
        fps = _fingerprints(10)
        with ShardedResultStore(tmp_path / "cache.d", shards=4) as store:
            for fp in fps:
                store.put(fp, "hd", 2, None, CheckOutcome("yes", 0.1))
                store.put(fp, "hd", 1, None, CheckOutcome("no", 0.1))
            for fp in fps:
                expected = store.kind_bounds(fp, "hw")
                assert expected == (2, 2)
                for shard in store.shards:
                    assert shard.kind_bounds(fp, "hw") == expected

    def test_implied_answers_are_shard_local(self, tmp_path):
        """A reader must never need a cross-shard query to prune a job.

        hw ≤ 2 implies ghw ≤ 2 (and hw ≥ 2 implies ghw ≥ ceil(2/3) wait —
        the exact relation lives in WIDTH_RELATIONS); the point here is
        that whatever `implied` derives on the owner is derivable on every
        shard, because the kind_bounds rows were replicated.
        """
        fps = _fingerprints(10)
        with ShardedResultStore(tmp_path / "cache.d", shards=4) as store:
            for fp in fps:
                store.put(fp, "hd", 2, None, CheckOutcome("yes", 0.1))
            for fp in fps:
                owner_implied = store.implied(fp, "balsep", 2)
                assert owner_implied is not None  # hw <= 2 => ghw <= 2
                for shard in store.shards:
                    local = shard.implied(fp, "balsep", 2)
                    assert local is not None
                    assert local.verdict == owner_implied.verdict

    def test_aggregate_kind_rows_dedupe_replicas(self, tmp_path):
        fps = _fingerprints(6)
        with ShardedResultStore(tmp_path / "cache.d", shards=4) as store:
            for fp in fps:
                store.put(fp, "hd", 2, None, CheckOutcome("yes", 0.1))
            rows = store.kind_bounds_rows()
            keys = [(fp, kind) for fp, kind, _lo, _hi in rows]
            assert len(keys) == len(set(keys)), "replicas leaked into the view"
            assert {fp for fp, _ in keys} == set(fps)


# -------------------------------------------------- accounting + eviction


class TestAccountingAndEviction:
    def test_engine_runs_identically_on_a_sharded_store(self, tmp_path):
        specs = [JobSpec.check(random_hypergraph(seed), 2) for seed in range(12)]
        sharded = DecompositionEngine(
            store=ShardedResultStore(tmp_path / "cache.d", shards=4)
        )
        plain = DecompositionEngine(store=ResultStore())
        assert [r.verdict for r in sharded.run_batch(specs).results] == [
            r.verdict for r in plain.run_batch(specs).results
        ]
        # second pass: everything replays from the shards
        rerun = sharded.run_batch(specs)
        assert rerun.executed == 0
        assert rerun.cache_hits == len(specs)

    def test_lru_cap_is_split_across_shards(self):
        store = ShardedResultStore(shards=4, max_entries=8)
        for fp in _fingerprints(40):
            store.put(fp, "hd", 2, None, CheckOutcome("yes", 0.1))
        assert len(store) <= 8 + 4  # per-shard ceil split: total <= cap + n
        assert all(len(shard) <= 2 for shard in store.shards)

    def test_cli_cache_stats_aggregates_shards(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache.d"
        with ShardedResultStore(cache_dir, shards=4) as store:
            for fp in _fingerprints(10):
                store.put(fp, "hd", 2, None, CheckOutcome("yes", 0.1))
                store.get(fp, "hd", 2, None)  # one recorded hit each
        assert main(["cache", "stats", "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries      10" in out
        assert "hits         10" in out

    def test_cli_cache_clear_empties_every_shard(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache.d"
        with ShardedResultStore(cache_dir, shards=4) as store:
            for fp in _fingerprints(10):
                store.put(fp, "hd", 2, None, CheckOutcome("yes", 0.1))
        assert main(["cache", "clear", "--cache", str(cache_dir)]) == 0
        assert "cleared 10" in capsys.readouterr().out
        with open_result_store(cache_dir) as store:
            assert len(store) == 0
            assert all(len(shard) == 0 for shard in store.shards)


# --------------------------------------------------------------- migration


class TestSingleFileMigration:
    def test_pre_shard_file_migrates_in_place(self, tmp_path, triangle):
        """A PR 2-era single-file cache becomes a shard directory, losslessly.

        Two schema eras at once: the old file predates the knowledge layer
        *and* the shard layout, so opening it sharded exercises the full
        upgrade path — column migration first (ResultStore), then row
        distribution (ShardedResultStore)."""
        path = tmp_path / "cache.db"
        fp = write_pr2_era_store(path, triangle)

        with ShardedResultStore(path, shards=2) as store:
            assert store.n_shards == 2
            assert len(store) == 3
            hit = store.get(fp, "hd", 2, None, record=False)
            assert hit.verdict == "yes"
            assert hit.decomposition_json is not None
            assert store.bounds(fp, "hd") == (2, 2)
            # migrated rows rebuilt the knowledge layer and replicated it
            for shard in store.shards:
                assert shard.kind_bounds(fp, "hw") == (2, 2)

        assert path.is_dir()
        backup = tmp_path / "cache.db.preshard"
        assert backup.is_file(), "original file must survive as a backup"
        manifest = json.loads((path / "shards.json").read_text())
        assert manifest == {"version": 1, "shards": 2}

    def test_migrated_rows_route_correctly(self, tmp_path, triangle):
        path = tmp_path / "cache.db"
        fp = write_pr2_era_store(path, triangle)
        with ShardedResultStore(path, shards=2) as store:
            owner = shard_for(fp, 2)
            for index, shard in enumerate(store.shards):
                held = shard.get(fp, "hd", 2, None, record=False, bounds=False)
                assert (held is not None) == (index == owner)

    def test_lifetime_counters_survive_migration(self, tmp_path, triangle):
        path = tmp_path / "cache.db"
        write_pr2_era_store(path, triangle)  # records hits=5 in meta
        with ShardedResultStore(path, shards=4) as store:
            assert store.stats.hits == 5

    def test_open_result_store_picks_the_right_flavour(self, tmp_path, triangle):
        assert isinstance(open_result_store(None), ResultStore)
        assert isinstance(open_result_store(None, shards=4), ShardedResultStore)
        single = tmp_path / "single.db"
        with open_result_store(single) as store:
            assert isinstance(store, ResultStore)
        # a single file + --shards migrates; the manifest then sticks
        with open_result_store(single, shards=2) as store:
            assert isinstance(store, ShardedResultStore)
        with open_result_store(single) as store:
            assert isinstance(store, ShardedResultStore)
            assert store.n_shards == 2
