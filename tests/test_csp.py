"""Unit tests for the CSP model, XCSP parser, and hypergraph conversion."""

import pytest

from repro.csp.convert import csp_to_hypergraph
from repro.csp.model import Constraint, CSPInstance, all_different_constraint
from repro.csp.xcsp import format_xcsp, parse_xcsp
from repro.errors import ParseError, SolverError


def neq(name, scope, size):
    return Constraint(
        name, scope, frozenset((i, i) for i in range(size)), positive=False
    )


class TestModel:
    def test_constraint_arity_check(self):
        with pytest.raises(SolverError):
            Constraint("c", ("x", "y"), frozenset({(1, 2, 3)}))

    def test_allows_positive(self):
        c = Constraint("c", ("x", "y"), frozenset({(1, 2)}))
        assert c.allows({"x": 1, "y": 2})
        assert not c.allows({"x": 2, "y": 1})

    def test_allows_negative(self):
        c = neq("c", ("x", "y"), 3)
        assert c.allows({"x": 0, "y": 1})
        assert not c.allows({"x": 1, "y": 1})

    def test_consistent_prunes_positive(self):
        c = Constraint("c", ("x", "y"), frozenset({(1, 2)}))
        assert c.consistent({"x": 1})
        assert not c.consistent({"x": 3})

    def test_consistent_defers_negative(self):
        c = neq("c", ("x", "y"), 2)
        assert c.consistent({"x": 0})  # cannot prune yet
        assert not c.consistent({"x": 0, "y": 0})

    def test_instance_rejects_undeclared_variables(self):
        with pytest.raises(SolverError):
            CSPInstance("i", {"x": (0,)}, [Constraint("c", ("x", "y"), frozenset())])

    def test_check_full_assignment(self):
        inst = CSPInstance(
            "i", {"x": (0, 1), "y": (0, 1)},
            [Constraint("c", ("x", "y"), frozenset({(0, 1)}))],
        )
        assert inst.check({"x": 0, "y": 1})
        assert not inst.check({"x": 1, "y": 1})
        with pytest.raises(SolverError):
            inst.check({"x": 0})

    def test_constraints_on(self):
        inst = CSPInstance(
            "i",
            {"x": (0,), "y": (0,), "z": (0,)},
            [
                Constraint("a", ("x", "y"), frozenset({(0, 0)})),
                Constraint("b", ("y", "z"), frozenset({(0, 0)})),
            ],
        )
        assert [c.name for c in inst.constraints_on("y")] == ["a", "b"]

    def test_all_different(self):
        c = all_different_constraint("ad", ("x", "y", "z"), (0, 1, 2))
        assert len(c.tuples) == 6
        assert c.allows({"x": 0, "y": 1, "z": 2})
        assert not c.allows({"x": 0, "y": 0, "z": 2})


class TestXcsp:
    XML = """<instance format="XCSP3" type="CSP">
      <variables>
        <var id="x"> 0 1 2 </var>
        <array id="y" size="[2]"> 0..1 </array>
      </variables>
      <constraints>
        <extension id="c0">
          <list> x y[0] </list>
          <supports> (0,1)(1,0) </supports>
        </extension>
        <extension>
          <list> y[0] y[1] </list>
          <conflicts> (1,1) </conflicts>
        </extension>
      </constraints>
    </instance>"""

    def test_parse_variables(self):
        inst = parse_xcsp(self.XML)
        assert inst.domains["x"] == (0, 1, 2)
        assert inst.domains["y[0]"] == (0, 1)
        assert inst.domains["y[1]"] == (0, 1)

    def test_parse_constraints(self):
        inst = parse_xcsp(self.XML)
        assert inst.num_constraints == 2
        assert inst.constraints[0].positive
        assert not inst.constraints[1].positive
        assert inst.constraints[1].name == "c1"  # auto-numbered

    def test_range_domains(self):
        inst = parse_xcsp(self.XML)
        assert inst.domains["y[0]"] == (0, 1)

    def test_round_trip(self):
        inst = parse_xcsp(self.XML, "rt")
        again = parse_xcsp(format_xcsp(inst))
        assert again.domains == inst.domains
        assert {(c.scope, c.tuples, c.positive) for c in again.constraints} == {
            (c.scope, c.tuples, c.positive) for c in inst.constraints
        }

    def test_bad_xml(self):
        with pytest.raises(ParseError):
            parse_xcsp("<oops")

    def test_wrong_root(self):
        with pytest.raises(ParseError):
            parse_xcsp("<x/>")

    def test_missing_variables(self):
        with pytest.raises(ParseError):
            parse_xcsp("<instance><constraints/></instance>")

    def test_non_extensional_rejected(self):
        xml = """<instance><variables><var id="x">0</var></variables>
                 <constraints><allDifferent/></constraints></instance>"""
        with pytest.raises(ParseError, match="extensional"):
            parse_xcsp(xml)

    def test_arity_mismatch_rejected(self):
        xml = """<instance><variables><var id="x">0</var><var id="y">0</var></variables>
                 <constraints><extension><list>x y</list>
                 <supports>(0,0,0)</supports></extension></constraints></instance>"""
        with pytest.raises(ParseError):
            parse_xcsp(xml)


class TestConversion:
    def test_hypergraph_structure(self):
        inst = CSPInstance(
            "i",
            {"x": (0,), "y": (0,), "z": (0,)},
            [
                Constraint("a", ("x", "y"), frozenset({(0, 0)})),
                Constraint("b", ("y", "z"), frozenset({(0, 0)})),
            ],
        )
        h = csp_to_hypergraph(inst)
        assert h.num_edges == 2
        assert h.edge("a") == {"x", "y"}

    def test_isolated_variables_dropped(self):
        inst = CSPInstance(
            "i", {"x": (0,), "lonely": (0,)},
            [Constraint("a", ("x",), frozenset({(0,)}))],
        )
        h = csp_to_hypergraph(inst)
        assert "lonely" not in h.vertices

    def test_duplicate_scopes_deduplicated(self):
        inst = CSPInstance(
            "i", {"x": (0,), "y": (0,)},
            [
                Constraint("a", ("x", "y"), frozenset({(0, 0)})),
                Constraint("b", ("y", "x"), frozenset()),
            ],
        )
        assert csp_to_hypergraph(inst).num_edges == 1
        assert csp_to_hypergraph(inst, dedupe=False).num_edges == 2
