"""Tests for the SQL dependency graph, extraction and hypergraph conversion.

These reproduce the paper's Listings 1–3 and Figures 1–2 exactly.
"""

import pytest

from repro.decomp.detkdecomp import check_hd
from repro.errors import UnsupportedSQLError
from repro.sql.convert import simple_query_to_hypergraph, sql_to_hypergraphs
from repro.sql.dependency import build_dependency_graph
from repro.sql.extract import extract_simple_queries, to_simple_query
from repro.sql.parser import parse_sql
from repro.sql.schema import Schema
from repro.sql.workloads import (
    JOB_LIKE_QUERIES,
    JOB_LIKE_SCHEMA,
    TPCH_LIKE_QUERIES,
    TPCH_LIKE_SCHEMA,
)

SCHEMA = Schema({"tab": ["a", "b", "c"], "differenttable": ["a", "b"]})

LISTING_1 = """
SELECT * FROM tab t1, tab t2
WHERE t1.a = t2.a AND t1.b > 5 AND t1.c <> t2.c;
"""

LISTING_2 = """
SELECT * FROM tab t1, tab t2
WHERE t1.a = t2.a
AND t1.b IN (SELECT tab.b FROM tab WHERE tab.c = 'ok')
AND EXISTS (SELECT * FROM differentTable dt WHERE dt.a = t1.a);
"""

LISTING_3 = """
WITH crossView AS (
  SELECT t1.a a1, t1.c c1, t2.a a2, t2.c c2
  FROM tab t1, tab t2 WHERE t1.b = t2.b
)
SELECT * FROM tab t1, tab t2, crossView cr
WHERE t1.a = cr.a1 AND t1.c = cr.a2 AND t2.a = cr.c1 AND t2.c = cr.c2;
"""


class TestSchema:
    def test_attributes(self):
        assert SCHEMA.attributes("tab") == ("a", "b", "c")

    def test_case_insensitive(self):
        assert SCHEMA.attributes("TAB") == ("a", "b", "c")
        assert "DifferentTable" in SCHEMA

    def test_unknown_relation(self):
        with pytest.raises(UnsupportedSQLError):
            SCHEMA.attributes("nope")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(UnsupportedSQLError):
            Schema({"t": ["a", "a"]})

    def test_extend(self):
        extended = SCHEMA.extend({"extra": ["x"]})
        assert "extra" in extended and "tab" in extended


class TestDependencyGraph:
    def test_listing2_matches_figure1(self):
        """Figure 1: q -> s1, q -> s2, s2 -> q (cycle); s2 is eliminated."""
        graph = build_dependency_graph(parse_sql(LISTING_2))
        assert len(graph.nodes) == 3
        root, s1, s2 = graph.nodes
        assert root.parent is None
        assert not s1.correlated_with
        assert s2.correlated_with == {root.node_id}
        surviving = [n.label for n in graph.surviving_queries()]
        assert surviving == ["q", "q.s1"]

    def test_uncorrelated_exists_survives(self):
        sql = """SELECT * FROM tab t1
                 WHERE EXISTS (SELECT * FROM differentTable dt WHERE dt.a = 1)"""
        graph = build_dependency_graph(parse_sql(sql))
        assert len(graph.surviving_queries()) == 2

    def test_nested_under_correlated_also_dies(self):
        sql = """SELECT * FROM tab t1 WHERE EXISTS (
                   SELECT * FROM differentTable dt
                   WHERE dt.a = t1.a AND dt.b IN (SELECT tab.b FROM tab))"""
        graph = build_dependency_graph(parse_sql(sql))
        surviving = [n.label for n in graph.surviving_queries()]
        assert surviving == ["q"]

    def test_set_operation_branches_are_roots(self):
        sql = "SELECT a FROM tab UNION SELECT b FROM tab"
        graph = build_dependency_graph(parse_sql(sql))
        assert [n.parent for n in graph.nodes] == [None, None]


class TestExtraction:
    def test_listing1_conjunctive_core(self):
        (simple,) = extract_simple_queries(LISTING_1, SCHEMA)
        assert simple.num_atoms == 2
        assert simple.joins == [(("t1", "a"), ("t2", "a"))]
        assert simple.constants == []  # b > 5 and c <> are non-conjunctive

    def test_constants_extracted(self):
        sql = "SELECT * FROM tab t1 WHERE t1.b = 5 AND 'x' = t1.c"
        (simple,) = extract_simple_queries(sql, SCHEMA)
        assert (("t1", "b"), "5") in simple.constants
        assert (("t1", "c"), "x") in simple.constants

    def test_or_groups_dropped(self):
        sql = "SELECT * FROM tab t1, tab t2 WHERE t1.a = t2.a OR t1.b = t2.b"
        (simple,) = extract_simple_queries(sql, SCHEMA)
        assert simple.joins == []

    def test_single_value_in_is_constant(self):
        sql = "SELECT * FROM tab t1 WHERE t1.a IN ('only')"
        (simple,) = extract_simple_queries(sql, SCHEMA)
        assert simple.constants == [(("t1", "a"), "only")]

    def test_unqualified_column_resolution(self):
        schema = Schema({"r": ["a"], "s": ["b"]})
        sql = "SELECT * FROM r, s WHERE a = b"
        (simple,) = extract_simple_queries(sql, schema)
        assert simple.joins == [(("r", "a"), ("s", "b"))]

    def test_ambiguous_column_skipped(self):
        sql = "SELECT * FROM tab t1, tab t2 WHERE a = 5"
        assert extract_simple_queries(sql, SCHEMA) == []
        with pytest.raises(UnsupportedSQLError):
            extract_simple_queries(sql, SCHEMA, skip_unsupported=False)

    def test_view_expansion_inlines_tables(self):
        (simple,) = extract_simple_queries(LISTING_3, SCHEMA)
        assert simple.num_atoms == 4  # t1, t2 + the view's two tab instances
        relations = {t.relation for t in simple.tables}
        assert relations == {"tab"}

    def test_set_operation_yields_two_queries(self):
        sql = """SELECT t1.a FROM tab t1, tab t2 WHERE t1.a = t2.a
                 UNION SELECT t1.b FROM tab t1"""
        simples = extract_simple_queries(sql, SCHEMA)
        assert len(simples) == 2

    def test_outputs_for_views(self):
        query = parse_sql("SELECT t1.a x, t1.b FROM tab t1")
        simple = to_simple_query(query, SCHEMA, "v")
        assert simple.outputs == {"x": ("t1", "a"), "b": ("t1", "b")}


class TestHypergraphConversion:
    def test_listing1_hypergraph(self):
        (simple,) = extract_simple_queries(LISTING_1, SCHEMA)
        h = simple_query_to_hypergraph(simple)
        assert h.num_edges == 2
        # The join merges t1.a and t2.a into one shared vertex.
        shared = h.edge("t1") & h.edge("t2")
        assert len(shared) == 1

    def test_constant_removes_vertex(self):
        sql = "SELECT * FROM tab t1 WHERE t1.b = 5"
        (h,) = sql_to_hypergraphs(sql, SCHEMA)
        assert h.edge("t1") == {"t1.a", "t1.c"}

    def test_constant_on_join_class_removes_both(self):
        sql = "SELECT * FROM tab t1, tab t2 WHERE t1.a = t2.a AND t2.a = 7"
        (h,) = sql_to_hypergraphs(sql, SCHEMA)
        assert all("a" not in v.split(".")[1] for e in h.edges.values() for v in e)

    def test_listing3_matches_figure2(self):
        """Figure 2(b): the view-expanded query has two cycles through t1/t2."""
        (h,) = sql_to_hypergraphs(LISTING_3, SCHEMA)
        assert h.num_edges == 4
        # Cyclic: no hypertree decomposition of width 1.
        assert check_hd(h, 1) is None
        assert check_hd(h, 2) is not None

    def test_all_edges_dropped_gives_no_hypergraph(self):
        sql = "SELECT * FROM tab t1 WHERE t1.a = 1 AND t1.b = 2 AND t1.c = 3"
        assert sql_to_hypergraphs(sql, SCHEMA) == []

    def test_min_atoms_filter(self):
        assert sql_to_hypergraphs(LISTING_1, SCHEMA, min_atoms=3) == []


class TestWorkloads:
    @pytest.mark.parametrize("sql", TPCH_LIKE_QUERIES)
    def test_tpch_like_pipeline(self, sql):
        hypergraphs = sql_to_hypergraphs(sql, TPCH_LIKE_SCHEMA)
        assert hypergraphs, "every workload query must produce a hypergraph"
        for h in hypergraphs:
            assert h.num_edges >= 1
            # Width analysis terminates quickly on workload queries.
            from repro.decomp.driver import exact_width
            from repro.decomp.detkdecomp import check_hd as chd

            result = exact_width(chd, h, max_k=3, timeout=5.0)
            assert result.upper is not None and result.upper <= 3

    @pytest.mark.parametrize("sql", JOB_LIKE_QUERIES)
    def test_job_like_pipeline(self, sql):
        hypergraphs = sql_to_hypergraphs(sql, JOB_LIKE_SCHEMA)
        assert hypergraphs
        for h in hypergraphs:
            assert check_hd(h, 2) is not None
