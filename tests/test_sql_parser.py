"""Unit tests for the SQL tokenizer and parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    BooleanOp,
    ColumnRef,
    Comparison,
    ExistsCondition,
    InCondition,
    Literal,
    NotCondition,
    SelectQuery,
    SetOperation,
    SubquerySource,
    TableRef,
)
from repro.sql.parser import parse_sql
from repro.sql.tokens import tokenize


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM WhErE")
        assert [t.value for t in tokens] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind == "KEYWORD" for t in tokens)

    def test_identifiers_lowercased(self):
        (token,) = tokenize("MyTable")
        assert token.kind == "NAME" and token.value == "mytable"

    def test_strings_with_escapes(self):
        (token,) = tokenize("'it''s'")
        assert token.kind == "STRING" and token.value == "it's"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens] == ["42", "3.14"]

    def test_operators(self):
        tokens = tokenize("= <> != <= >= < >")
        assert [t.value for t in tokens] == ["=", "<>", "!=", "<=", ">=", "<", ">"]

    def test_comments_skipped(self):
        tokens = tokenize("a -- comment\n b")
        assert [t.value for t in tokens] == ["a", "b"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestSelectParsing:
    def test_simple_select(self):
        q = parse_sql("SELECT * FROM tab t1 WHERE t1.a = 5")
        assert isinstance(q, SelectQuery)
        assert q.sources == [TableRef("tab", "t1")]
        assert isinstance(q.where, Comparison)

    def test_multiple_sources_and_aliases(self):
        q = parse_sql("SELECT t1.a FROM tab t1, tab AS t2")
        assert [s.binding for s in q.sources] == ["t1", "t2"]

    def test_select_items(self):
        q = parse_sql("SELECT t1.a x, t1.b AS y, 5 FROM tab t1")
        assert q.select[0].alias == "x"
        assert q.select[1].alias == "y"
        assert isinstance(q.select[2].expr, Literal)

    def test_star_and_qualified_star(self):
        q = parse_sql("SELECT *, t1.* FROM tab t1")
        assert q.select[0].is_star and q.select[0].star_table is None
        assert q.select[1].is_star and q.select[1].star_table == "t1"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_where_conjunction(self):
        q = parse_sql("SELECT * FROM t WHERE a = b AND c = 1 AND d > 2")
        assert isinstance(q.where, BooleanOp) and q.where.op == "AND"
        assert len(q.where.operands) == 3

    def test_or_and_precedence(self):
        q = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(q.where, BooleanOp) and q.where.op == "OR"
        assert isinstance(q.where.operands[1], BooleanOp)

    def test_not(self):
        q = parse_sql("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(q.where, NotCondition)

    def test_between_desugars(self):
        q = parse_sql("SELECT * FROM t WHERE a BETWEEN 1 AND 3")
        assert isinstance(q.where, BooleanOp)
        assert [c.op for c in q.where.operands] == [">=", "<="]

    def test_like(self):
        q = parse_sql("SELECT * FROM t WHERE a LIKE '%x%'")
        assert q.where.op == "LIKE"

    def test_is_null(self):
        q = parse_sql("SELECT * FROM t WHERE a IS NULL")
        assert isinstance(q.where, Comparison)
        q2 = parse_sql("SELECT * FROM t WHERE a IS NOT NULL")
        assert isinstance(q2.where, NotCondition)

    def test_group_order_tails_skipped(self):
        q = parse_sql(
            "SELECT a FROM t WHERE a = 1 GROUP BY a HAVING a > 1 ORDER BY a DESC LIMIT 5"
        )
        assert isinstance(q, SelectQuery)

    def test_join_on_normalised_into_where(self):
        q = parse_sql("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y = 1")
        assert len(q.sources) == 2
        assert isinstance(q.where, BooleanOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM t WHERE a = 1 extra")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a WHERE a = 1")


class TestSubqueries:
    def test_in_subquery(self):
        q = parse_sql("SELECT * FROM t WHERE t.a IN (SELECT s.a FROM s)")
        assert isinstance(q.where, InCondition)
        assert isinstance(q.where.subquery, SelectQuery)

    def test_not_in_values(self):
        q = parse_sql("SELECT * FROM t WHERE t.a NOT IN (1, 2, 3)")
        assert q.where.negated and len(q.where.values) == 3

    def test_exists(self):
        q = parse_sql("SELECT * FROM t WHERE EXISTS (SELECT * FROM s)")
        assert isinstance(q.where, ExistsCondition) and not q.where.negated

    def test_not_exists(self):
        q = parse_sql("SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM s)")
        assert isinstance(q.where, ExistsCondition) and q.where.negated

    def test_from_subquery(self):
        q = parse_sql("SELECT * FROM (SELECT a FROM s) sub WHERE sub.a = 1")
        assert isinstance(q.sources[0], SubquerySource)
        assert q.sources[0].alias == "sub"


class TestViewsAndSetOps:
    def test_with_views(self):
        q = parse_sql("WITH v AS (SELECT a FROM s) SELECT * FROM v")
        assert isinstance(q, SelectQuery)
        assert "v" in q.views

    def test_multiple_views(self):
        q = parse_sql(
            "WITH v1 AS (SELECT a FROM s), v2 AS (SELECT b FROM t) SELECT * FROM v1, v2"
        )
        assert set(q.views) == {"v1", "v2"}

    def test_union(self):
        q = parse_sql("SELECT a FROM s UNION SELECT b FROM t")
        assert isinstance(q, SetOperation) and q.op == "UNION"
        assert len(q.branches()) == 2

    def test_chained_set_ops(self):
        q = parse_sql("SELECT a FROM s UNION SELECT b FROM t EXCEPT SELECT c FROM u")
        assert isinstance(q, SetOperation) and q.op == "EXCEPT"
        assert len(q.branches()) == 3

    def test_union_all(self):
        q = parse_sql("SELECT a FROM s UNION ALL SELECT b FROM t")
        assert q.op == "UNION"

    def test_views_attach_to_set_branches(self):
        q = parse_sql(
            "WITH v AS (SELECT a FROM s) SELECT * FROM v UNION SELECT b FROM t"
        )
        assert all("v" in b.views for b in q.branches())
