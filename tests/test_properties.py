"""Unit tests for degree, BIP, c-BMIP, VC-dimension and the stats record."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.core.properties import (
    compute_statistics,
    degree,
    intersection_size,
    is_shattered,
    multi_intersection_size,
    vc_dimension,
)
from tests.conftest import clique_hypergraph, cycle_hypergraph


class TestDegree:
    def test_triangle(self, triangle):
        assert degree(triangle) == 2

    def test_star_hub(self, star):
        assert degree(star) == 2

    def test_fan(self):
        h = Hypergraph({f"e{i}": ["hub", f"x{i}"] for i in range(7)})
        assert degree(h) == 7

    def test_empty(self):
        assert degree(Hypergraph({})) == 0


class TestIntersectionSizes:
    def test_triangle_bip(self, triangle):
        assert intersection_size(triangle) == 1

    def test_bigger_overlap(self):
        h = Hypergraph({"a": ["x", "y", "z"], "b": ["x", "y", "w"]})
        assert intersection_size(h) == 2

    def test_c1_is_arity(self, star):
        assert multi_intersection_size(star, 1) == star.arity

    def test_3_bmip_of_fan(self):
        h = Hypergraph({f"e{i}": ["a", "b", f"x{i}"] for i in range(4)})
        assert multi_intersection_size(h, 2) == 2
        assert multi_intersection_size(h, 3) == 2
        assert multi_intersection_size(h, 4) == 2

    def test_bmip_decreasing_in_c(self):
        h = Hypergraph(
            {
                "a": ["1", "2", "3", "4"],
                "b": ["1", "2", "3", "5"],
                "c": ["1", "2", "6", "7"],
                "d": ["1", "8", "9", "0"],
            }
        )
        values = [multi_intersection_size(h, c) for c in (2, 3, 4)]
        assert values == [3, 2, 1]
        assert values == sorted(values, reverse=True)

    def test_fewer_edges_than_c(self, triangle):
        assert multi_intersection_size(triangle, 5) == 0

    def test_c_must_be_positive(self, triangle):
        with pytest.raises(ValueError):
            multi_intersection_size(triangle, 0)

    def test_degree_bound_implies_bmip(self):
        # A (δ+1, 0)-hypergraph: any δ+1 edges intersect emptily.
        h = cycle_hypergraph(8)  # degree 2
        assert multi_intersection_size(h, 3) == 0


class TestVCDimension:
    def test_single_edge_vc_1(self):
        # X={v} shattered needs traces {} and {v}: a second edge avoids v.
        h = Hypergraph({"a": ["x", "y"], "b": ["y"]})
        assert vc_dimension(h) == 1

    def test_shattered_pair(self):
        h = Hypergraph(
            {
                "empty": ["w"],
                "x_only": ["x", "w"],
                "y_only": ["y", "w"],
                "both": ["x", "y"],
            }
        )
        assert is_shattered(h, frozenset({"x", "y"}))
        assert vc_dimension(h) == 2

    def test_triangle_vc(self, triangle):
        # {x,y}: traces of edges on {x,y}: r->{x,y}, s->{y}, t->{x}; the empty
        # trace is missing, so no 2-set shatters.
        assert vc_dimension(triangle) == 1

    def test_cycle_vc(self):
        # An adjacent pair {x1, x2} is shattered: {x1,x2} itself, {x0,x1} ->
        # {x1}, {x2,x3} -> {x2}, {x4,x5} -> {} — so VC(C6) = 2.
        assert vc_dimension(cycle_hypergraph(6)) == 2

    def test_clique_vc_2(self, k5):
        # Binary-edge cliques shatter pairs via disjoint edges but no triple.
        assert vc_dimension(k5) == 2

    def test_is_shattered_negative(self, triangle):
        assert not is_shattered(triangle, frozenset({"x", "y"}))

    def test_empty_hypergraph(self):
        assert vc_dimension(Hypergraph({})) == 0


class TestStatisticsRecord:
    def test_compute_statistics(self, triangle):
        stats = compute_statistics(triangle)
        assert stats.num_vertices == 3
        assert stats.num_edges == 3
        assert stats.arity == 2
        assert stats.degree == 2
        assert stats.bip == 1
        assert stats.bmip3 == 0
        assert stats.bmip4 == 0
        assert stats.vc_dim == 1

    def test_as_row_matches_metrics(self, triangle):
        stats = compute_statistics(triangle)
        row = stats.as_row()
        assert len(row) == len(stats.METRICS) + 1  # +1 for the name

    def test_bounded_degree_implies_bmip_property(self, k4):
        stats = compute_statistics(k4)
        # degree δ means any δ+1 edges share nothing (Definition 4 remark)
        assert multi_intersection_size(k4, stats.degree + 1) == 0
