"""Unit tests for DetKDecomp (Check(HD, k))."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.decomp.detkdecomp import DetKDecomp, check_hd
from repro.errors import DeadlineExceeded
from repro.utils.deadline import Deadline
from tests.conftest import clique_hypergraph, cycle_hypergraph


class TestKnownWidths:
    def test_single_edge_width_1(self):
        h = Hypergraph({"a": ["x", "y", "z"]})
        hd = check_hd(h, 1)
        assert hd is not None and hd.width == 1.0
        hd.validate("HD")

    def test_path_is_acyclic(self, path3):
        hd = check_hd(path3, 1)
        assert hd is not None
        hd.validate("HD")

    def test_star_is_acyclic(self, star):
        assert check_hd(star, 1) is not None

    def test_triangle_width_2(self, triangle):
        assert check_hd(triangle, 1) is None
        hd = check_hd(triangle, 2)
        assert hd is not None and hd.integral_width <= 2
        hd.validate("HD")

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_cycles_have_hw_2(self, n):
        h = cycle_hypergraph(n)
        assert check_hd(h, 1) is None
        hd = check_hd(h, 2)
        assert hd is not None
        hd.validate("HD")

    @pytest.mark.parametrize("n,expected", [(3, 2), (4, 2), (5, 3), (6, 3)])
    def test_clique_hw_is_half_n(self, n, expected):
        h = clique_hypergraph(n)
        assert check_hd(h, expected - 1) is None
        hd = check_hd(h, expected)
        assert hd is not None
        hd.validate("HD")

    def test_acyclic_hyperedges(self):
        # A γ-acyclic join of wide edges: width 1 regardless of arity.
        h = Hypergraph(
            {
                "a": ["1", "2", "3", "4"],
                "b": ["3", "4", "5"],
                "c": ["5", "6"],
            }
        )
        hd = check_hd(h, 1)
        assert hd is not None
        hd.validate("HD")


class TestStructure:
    def test_empty_hypergraph(self):
        hd = check_hd(Hypergraph({}), 1)
        assert hd is not None
        assert hd.width == 0

    def test_disconnected_components_joined(self):
        h = Hypergraph({"a": ["1", "2"], "b": ["3", "4"]})
        hd = check_hd(h, 1)
        assert hd is not None
        hd.validate("HD")

    def test_disconnected_cyclic_parts(self, triangle):
        edges = dict(triangle.edges)
        edges.update({"p": ["u", "v"], "q": ["v", "w"], "o": ["w", "u"]})
        h = Hypergraph(edges)
        assert check_hd(h, 1) is None
        hd = check_hd(h, 2)
        assert hd is not None
        hd.validate("HD")

    def test_monotone_in_k(self, k5):
        # A yes at k implies a yes at every k' > k.
        assert check_hd(k5, 3) is not None
        assert check_hd(k5, 4) is not None
        assert check_hd(k5, 5) is not None

    def test_k_must_be_positive(self, triangle):
        with pytest.raises(ValueError):
            DetKDecomp(triangle, 0)

    def test_all_edges_covered_by_some_bag(self, k4):
        hd = check_hd(k4, 2)
        bags = hd.bags()
        for edge in k4.edges.values():
            assert any(edge <= bag for bag in bags)


class TestDeadline:
    def test_expired_deadline_raises(self, k5):
        deadline = Deadline(0.0)
        with pytest.raises(DeadlineExceeded):
            DetKDecomp(k5, 2, deadline=deadline).decompose()


class TestBagFilter:
    def test_filter_rejecting_everything_gives_none(self, triangle):
        result = DetKDecomp(triangle, 2, bag_filter=lambda bag: False).decompose()
        assert result is None

    def test_filter_accepting_everything_is_neutral(self, triangle):
        result = DetKDecomp(triangle, 2, bag_filter=lambda bag: True).decompose()
        assert result is not None

    def test_filter_threshold_on_bag_size(self, cycle6):
        # Cycle bags need at most 3 vertices with k=2.
        result = DetKDecomp(cycle6, 2, bag_filter=lambda bag: len(bag) <= 3).decompose()
        assert result is not None
        result.validate("HD")
        assert all(len(b) <= 3 for b in result.bags())
