"""Distributed dispatch, proven correct under fault injection.

Four layers of evidence, bottom up:

1. **Queue lifecycle** — the `pending → leased → done|failed|dead` state
   machine on one in-memory queue with a controllable clock: exclusive
   leases, monotone deadlines, lease-fenced completion, exponential backoff,
   attempt budgets, expiry sweeping, idempotent enqueue.
2. **Property-based invariants** (hypothesis) — arbitrary interleavings of
   enqueue / lease / complete / fail / clock-skew / sweep never double-lease
   a live job, never exceed an attempt budget, and always drain every job
   to ``done`` or ``dead``.
3. **Crash recovery** — a *real* worker subprocess SIGKILLed mid-lease: its
   leases expire, the sweeper requeues them, a second worker completes
   them, and nothing is lost or duplicated.
4. **End-to-end equivalence** — a two-worker distributed ``run_batch``
   produces verdicts identical to the single-process engine on the same
   specs; a dispatcher that "crashes" resumes from its journal without
   re-dispatching finished work.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    DecompositionEngine,
    Dispatcher,
    JobQueue,
    JobSpec,
    QueueWorker,
    ResultStore,
)
from repro.engine.queue import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    payload_from_spec,
    spec_from_payload,
)
from repro.obs.trace import TraceContext
from tests.conftest import FakeClock, random_hypergraph, spawn_worker, wait_for_leased


# ---------------------------------------------------------------- lifecycle


class TestQueueLifecycle:
    def test_enqueue_is_idempotent_on_spec_key(self, triangle):
        queue = JobQueue()
        spec = JobSpec.check(triangle, 2)
        first = queue.enqueue(spec)
        second = queue.enqueue(spec)
        assert first.created and not second.created
        assert first.job_id == second.job_id
        assert len(queue) == 1

    def test_lease_is_exclusive_while_live(self, triangle):
        queue = JobQueue()
        queue.enqueue(JobSpec.check(triangle, 2))
        assert len(queue.lease("w1", 5)) == 1
        assert queue.lease("w2", 5) == []
        assert queue.lease("w1", 5) == []  # not even to the same worker

    def test_lease_rebuilds_the_spec(self, triangle):
        queue = JobQueue()
        spec = JobSpec.check(triangle, 2, timeout=5.0)
        queue.enqueue(spec)
        lease = queue.lease("w", 1)[0]
        rebuilt = lease.spec()
        assert rebuilt.key() == spec.key()
        assert rebuilt.hypergraph.edges == spec.hypergraph.edges

    def test_complete_is_lease_fenced(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock)
        queue.enqueue(JobSpec.check(triangle, 2))
        lease = queue.lease("w1", 1, lease_seconds=5)[0]
        # the sweeper revokes the lease before w1 reports
        fake_clock.advance(6)
        assert queue.requeue_expired() == 1
        assert not queue.complete("w1", lease.job_id, {"verdict": "yes"})
        # the re-lease's completion (after backoff) is the one that counts
        fake_clock.advance(1)
        release = queue.lease("w2", 1)[0]
        assert queue.complete("w2", release.job_id, {"verdict": "yes"})
        assert queue.job(lease.job_id)["state"] == DONE
        assert queue.stats()["counters"]["completed"] == 1

    def test_extend_deadlines_are_monotone(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock)
        queue.enqueue(JobSpec.check(triangle, 2))
        lease = queue.lease("w", 1, lease_seconds=100)[0]
        # a shorter heartbeat must never shrink the deadline
        assert queue.extend("w", [lease.job_id], lease_seconds=1) == 1
        assert queue.job(lease.job_id)["lease_deadline"] == lease.deadline
        fake_clock.advance(50)
        assert queue.extend("w", [lease.job_id], lease_seconds=100) == 1
        assert queue.job(lease.job_id)["lease_deadline"] == pytest.approx(
            fake_clock.now + 100
        )

    def test_extend_reports_revoked_leases(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock)
        queue.enqueue(JobSpec.check(triangle, 2))
        lease = queue.lease("w1", 1, lease_seconds=5)[0]
        fake_clock.advance(10)
        queue.requeue_expired()
        assert queue.extend("w1", [lease.job_id]) == 0

    def test_fail_backs_off_exponentially_then_kills(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock, max_attempts=3, backoff=1.0)
        queue.enqueue(JobSpec.check(triangle, 2))
        delays = []
        for attempt in range(1, 4):
            lease = queue.lease("w", 1, lease_seconds=60)
            assert len(lease) == 1, f"attempt {attempt} not leasable"
            assert lease[0].attempts == attempt
            assert queue.fail("w", lease[0].job_id, f"boom {attempt}")
            job = queue.job(lease[0].job_id)
            if attempt < 3:
                assert job["state"] == FAILED
                delays.append(job["not_before"] - fake_clock.now)
                assert queue.lease("w", 1) == []  # backoff gates the re-lease
                fake_clock.advance(delays[-1])
            else:
                assert job["state"] == DEAD
                assert job["error"] == "boom 3"
        assert delays == [1.0, 2.0]  # backoff * 2**(attempts-1)
        assert queue.lease("w", 1) == []

    def test_expiry_consumes_the_attempt_budget(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock, max_attempts=2, backoff=0.5)
        queue.enqueue(JobSpec.check(triangle, 2))
        for _ in range(2):
            assert len(queue.lease("w", 1, lease_seconds=5)) == 1
            fake_clock.advance(10)
            assert queue.requeue_expired() == 1
            fake_clock.advance(1)  # clear the retry backoff
        stats = queue.stats()
        assert stats["dead"] == 1
        assert stats["counters"]["expired"] == 2
        assert stats["counters"]["retries"] == 1

    def test_failed_attempts_are_leasable_after_backoff(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock, backoff=2.0)
        queue.enqueue(JobSpec.check(triangle, 2))
        lease = queue.lease("w", 1)[0]
        queue.fail("w", lease.job_id, "transient")
        assert queue.job(lease.job_id)["state"] == FAILED
        assert queue.stats()["depth"] == 0
        fake_clock.advance(2.0)
        assert queue.stats()["depth"] == 1
        again = queue.lease("w", 1)[0]
        assert queue.complete("w", again.job_id, {"verdict": "yes"})
        assert queue.job(again.job_id)["error"] is None

    def test_resurrect_dead_restores_the_budget(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock, max_attempts=1)
        queue.enqueue(JobSpec.check(triangle, 2))
        lease = queue.lease("w", 1, lease_seconds=1)[0]
        fake_clock.advance(5)
        queue.requeue_expired()
        assert queue.job(lease.job_id)["state"] == DEAD
        assert queue.resurrect_dead() == 1
        job = queue.job(lease.job_id)
        assert job["state"] == PENDING and job["attempts"] == 0

    def test_queue_survives_reopen(self, triangle, tmp_path):
        path = tmp_path / "queue.db"
        spec = JobSpec.check(triangle, 2)
        with JobQueue(path) as queue:
            queue.enqueue(spec)
            queue.lease("w", 1)
        with JobQueue(path) as queue:
            assert len(queue) == 1
            assert queue.stats()[LEASED] == 1
            existing = queue.enqueue(spec)
            assert not existing.created

    def test_stats_counts_states_and_counters(self, triangle, fake_clock):
        queue = JobQueue(clock=fake_clock)
        specs = [JobSpec.check(random_hypergraph(seed), 2) for seed in range(4)]
        ids = [queue.enqueue(s).job_id for s in specs]
        leases = queue.lease("w", 2)
        queue.complete("w", leases[0].job_id, {"verdict": "yes"})
        stats = queue.stats()
        assert stats["total"] == 4
        assert stats[DONE] == 1 and stats[LEASED] == 1 and stats[PENDING] == 2
        assert stats["depth"] == 2
        assert stats["counters"]["enqueued"] == 4
        assert stats["counters"]["leased"] == 2
        assert stats["counters"]["completed"] == 1
        assert set(queue.poll(ids)) == {leases[0].job_id}


class TestPayloadRoundTrip:
    def test_spec_round_trips_with_trace(self, triangle):
        trace = TraceContext("t" * 16, "s" * 8)
        spec = JobSpec.width(triangle, max_k=4, method="balsep", timeout=2.5, trace=trace)
        rebuilt = spec_from_payload(payload_from_spec(spec))
        assert rebuilt.key() == spec.key()
        assert rebuilt.hypergraph.edges == spec.hypergraph.edges
        assert rebuilt.hypergraph.name == triangle.name
        assert tuple(rebuilt.trace) == tuple(trace)

    def test_payload_is_byte_stable_for_equal_specs(self, triangle):
        import json

        from repro.core.hypergraph import Hypergraph

        shuffled = Hypergraph(
            {"t": ["x", "z"], "s": ["z", "y"], "r": ["y", "x"]}, name="triangle"
        )
        a = json.dumps(payload_from_spec(JobSpec.check(triangle, 2)), sort_keys=True)
        b = json.dumps(payload_from_spec(JobSpec.check(shuffled, 2)), sort_keys=True)
        assert a == b


# ----------------------------------------------------- property-based model


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), st.integers(0, 5)),
        st.tuples(st.just("lease"), st.sampled_from(["w1", "w2", "w3"])),
        st.tuples(st.just("complete"), st.sampled_from(["w1", "w2", "w3"])),
        st.tuples(st.just("fail"), st.sampled_from(["w1", "w2", "w3"])),
        st.tuples(st.just("advance"), st.floats(0.1, 30.0)),
        st.tuples(st.just("sweep"), st.just(None)),
    ),
    max_size=40,
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_OPS)
def test_queue_invariants_hold_under_arbitrary_interleavings(ops):
    """No double-lease, budget respected, and every job drains to done|dead."""
    clock = FakeClock()
    max_attempts = 3
    queue = JobQueue(
        clock=clock, max_attempts=max_attempts, backoff=1.0, lease_seconds=10.0
    )
    # A handle is (job_id, attempts): the attempt counter is the lease token,
    # so a handle revoked by a sweep stops matching the row once the job is
    # re-leased (attempts bumps) — exactly the fencing complete()/fail() use.
    held: dict[str, list[tuple[int, int]]] = {"w1": [], "w2": [], "w3": []}
    enqueued: set[int] = set()

    def check_invariants() -> None:
        seen: set[int] = set()
        for jobs in held.values():
            for job_id, token in jobs:
                row = queue.job(job_id)
                if row["state"] != LEASED or row["attempts"] != token:
                    continue  # lease revoked by a sweep — stale handle
                assert job_id not in seen, "job under two live leases"
                seen.add(job_id)
        for job_id in enqueued:
            assert queue.job(job_id)["attempts"] <= max_attempts

    for op, arg in ops:
        if op == "enqueue":
            job = queue.enqueue({"n": arg}, key=("job", arg))
            enqueued.add(job.job_id)
        elif op == "lease":
            for lease in queue.lease(arg, 2):
                held[arg].append((lease.job_id, lease.attempts))
        elif op == "complete":
            if held[arg]:
                queue.complete(arg, held[arg].pop(0)[0], {"verdict": "yes"})
        elif op == "fail":
            if held[arg]:
                queue.fail(arg, held[arg].pop(0)[0], "injected")
        elif op == "advance":
            clock.advance(arg)
        elif op == "sweep":
            queue.requeue_expired()
        check_invariants()

    # Drain: losing every worker and sweeping forever must terminate every
    # job — the attempt budget bounds the retries.
    for worker in held.values():
        worker.clear()
    for _ in range(4 * max_attempts):
        clock.advance(60.0)
        queue.requeue_expired()
        for lease in queue.lease("drain", 100):
            queue.complete("drain", lease.job_id, {"verdict": "yes"})
    for job_id in enqueued:
        row = queue.job(job_id)
        assert row["state"] in (DONE, DEAD), row
        assert row["attempts"] <= max_attempts


# ---------------------------------------------------------- crash recovery


def _enqueue_specs(queue: JobQueue, count: int, k: int = 2) -> list[JobSpec]:
    specs = [JobSpec.check(random_hypergraph(seed), k) for seed in range(count)]
    for spec in specs:
        queue.enqueue(spec)
    return specs


def _slow_specs(count: int) -> list[JobSpec]:
    """Distinct `hw(K8+pendants) <= 3` jobs, each ~0.1 s: long enough that a
    worker wave stays observably ``leased`` while the fault injector aims."""
    from repro.core.hypergraph import Hypergraph
    from tests.conftest import clique_hypergraph

    specs = []
    for tag in range(count):
        edges = {k: list(v) for k, v in clique_hypergraph(8).edges.items()}
        edges[f"p{tag}"] = ["v0", f"w{tag}"]
        for i in range(tag):
            edges[f"q{tag}_{i}"] = [f"w{tag}", f"u{tag}_{i}"]
        specs.append(JobSpec.check(Hypergraph(edges, name=f"K8p{tag}"), 3))
    return specs


def _drain_in_thread(
    queue: JobQueue, store, lease_n: int = 4, timeout: float = 60.0
) -> QueueWorker:
    """Run an in-thread worker until the queue holds no runnable work."""
    import time

    engine = DecompositionEngine(store=store)
    worker = QueueWorker(queue, engine, lease_n=lease_n, poll=0.01)
    thread = threading.Thread(target=worker.run, kwargs={"max_idle": timeout}, daemon=True)
    thread.start()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        queue.requeue_expired()
        stats = queue.stats()
        if stats[DONE] + stats[DEAD] == stats["total"]:
            break
        time.sleep(0.05)
    worker.stop()
    thread.join(timeout=10)
    return worker


class TestCrashRecovery:
    def test_sigkilled_worker_leases_expire_and_complete_elsewhere(
        self, tmp_path, crashing_worker
    ):
        """The acceptance scenario: kill a worker mid-lease, lose nothing.

        A real subprocess worker leases jobs and dies by SIGKILL (as an OOM
        kill would).  Its heartbeat dies with it, the leases expire, the
        sweeper requeues them, and an in-thread worker finishes the queue —
        every job exactly once, verdicts matching a single-process run.
        """
        queue_path = tmp_path / "queue.db"
        cache_path = tmp_path / "cache.db"
        queue = JobQueue(queue_path, lease_seconds=1.0, backoff=0.05)
        specs = _slow_specs(12)
        for spec in specs:
            queue.enqueue(spec)

        killed = crashing_worker(
            queue_path,
            cache_path,
            "--lease-n", "12",
            "--lease-seconds", "1",
            "--poll", "0.05",
            min_leased=1,
        )
        assert killed.returncode == -9  # died by SIGKILL, not cleanly

        # the dead worker still "holds" leases; they must expire, not block
        stats = queue.stats()
        assert stats[DONE] + stats[LEASED] + stats[PENDING] == stats["total"]
        survivor = _drain_in_thread(queue, ResultStore(cache_path))
        assert survivor.completed > 0

        stats = queue.stats()
        assert stats[DONE] == len(specs), stats
        assert stats[DEAD] == 0, stats
        assert stats["counters"]["expired"] > 0, "no lease ever expired"
        # exactly-once: completions equal jobs, despite the re-leases
        assert stats["counters"]["completed"] == len(specs)

        # no lost and no corrupted results: verdicts match a fresh engine
        reference = DecompositionEngine(store=ResultStore()).run_batch(specs)
        for spec, expected in zip(specs, reference.results):
            state, payload, _error = queue.poll(
                [queue.enqueue(spec).job_id]
            ).popitem()[1]
            assert state == DONE
            assert payload["verdict"] == expected.verdict

    def test_clock_skew_shim_expires_leases_without_waiting(
        self, triangle, fake_clock
    ):
        """The same recovery logic, driven purely by the clock shim."""
        queue = JobQueue(clock=fake_clock, backoff=0.0)
        queue.enqueue(JobSpec.check(triangle, 2))
        queue.lease("doomed", 1, lease_seconds=30)
        assert queue.requeue_expired() == 0
        fake_clock.advance(31)
        assert queue.requeue_expired() == 1
        release = queue.lease("survivor", 1)
        assert len(release) == 1 and release[0].attempts == 2


# ------------------------------------------------- dispatcher + end-to-end


class TestDispatcher:
    def test_journal_resume_after_dispatcher_crash(self, tmp_path):
        """A restarted dispatcher re-runs nothing the journal already has."""
        queue = JobQueue(tmp_path / "queue.db", lease_seconds=10)
        store = ResultStore(tmp_path / "cache.db")
        journal = tmp_path / "batch.jsonl"
        first_wave = [JobSpec.check(random_hypergraph(seed), 2) for seed in range(4)]
        full_batch = first_wave + [
            JobSpec.check(random_hypergraph(seed), 2) for seed in range(4, 8)
        ]

        worker_engine = DecompositionEngine(store=store)
        worker = QueueWorker(queue, worker_engine, lease_n=4, poll=0.01)
        thread = threading.Thread(target=worker.run, kwargs={"max_idle": 30}, daemon=True)
        thread.start()
        try:
            # "crashing" dispatcher: finishes the first half, then is gone
            crashed = Dispatcher(queue, DecompositionEngine(store=store), wait_timeout=60)
            report = crashed.run_batch(first_wave, journal=str(journal))
            assert report.total == 4 and len(report.results) == 4

            # restart: a new dispatcher object, same journal, full batch
            restarted = Dispatcher(queue, DecompositionEngine(store=store), wait_timeout=60)
            report = restarted.run_batch(full_batch, journal=str(journal))
        finally:
            worker.stop()
            thread.join(timeout=10)

        assert report.total == 8
        assert report.resumed == 4, "journalled first wave was not resumed"
        assert len(report.results) == 8
        # the resumed half cost no new queue traffic
        assert restarted.dispatched <= 4

    def test_reconciles_completions_it_never_saw(self, tmp_path):
        """Queue `done` rows from a previous run are adopted, not re-run."""
        queue = JobQueue(tmp_path / "queue.db")
        store = ResultStore(tmp_path / "cache.db")
        specs = _enqueue_specs(queue, 3)
        _drain_in_thread(queue, store)  # a worker finished everything...

        dispatcher = Dispatcher(queue, engine=None, wait_timeout=10)
        report = dispatcher.run_batch(specs)  # ...before this dispatcher ran
        assert report.resumed == 3 and dispatcher.reconciled == 3
        assert dispatcher.dispatched == 0
        assert [r.verdict for r in report.results] != []

    def test_dead_jobs_surface_as_error_verdicts(self, tmp_path, fake_clock):
        queue = JobQueue(
            tmp_path / "queue.db", clock=fake_clock, max_attempts=1, backoff=0.0
        )
        spec = JobSpec.check(random_hypergraph(0), 2)
        queue.enqueue(spec)
        lease = queue.lease("crashy", 1, lease_seconds=1)[0]
        queue.fail("crashy", lease.job_id, "simulated crash")
        dispatcher = Dispatcher(queue, engine=None, wait_timeout=5)
        report = dispatcher.run_batch([spec])
        assert report.results[0].verdict == "error"


class TestTwoWorkerEndToEnd:
    def test_two_process_run_matches_single_process_engine(self, tmp_path):
        """≥ 48 jobs across two real worker processes ≡ one in-process run."""
        queue_path = tmp_path / "queue.db"
        cache_dir = tmp_path / "cache.d"
        specs = [JobSpec.check(random_hypergraph(seed), 2) for seed in range(48)]

        workers = [
            spawn_worker(
                queue_path,
                cache_dir,
                "--shards", "4",
                "--lease-n", "6",
                "--poll", "0.05",
                "--max-idle", "20",
            )
            for _ in range(2)
        ]
        try:
            queue = JobQueue(queue_path, lease_seconds=30)
            from repro.engine import open_result_store

            store = open_result_store(cache_dir, shards=4)
            dispatcher = Dispatcher(
                queue, DecompositionEngine(store=store), wait_timeout=120
            )
            report = dispatcher.run_batch(specs)
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
                proc.wait(timeout=30)

        assert report.total == 48 and len(report.results) == 48
        reference = DecompositionEngine(store=ResultStore()).run_batch(specs)
        assert [r.verdict for r in report.results] == [
            r.verdict for r in reference.results
        ]
        # exactly-once per distinct job: duplicate specs collapse onto one
        # queue row, and nothing was completed twice
        unique_jobs = len({spec.key() for spec in specs})
        assert queue.stats()["counters"]["completed"] == unique_jobs
