"""Tests for the HyperBench repository and the HTML report."""

import pytest

from repro.benchmark.build import DEFAULT_CLASS_COUNTS, build_default_benchmark
from repro.benchmark.classes import BenchmarkClass
from repro.benchmark.report import render_html_report, write_html_report
from repro.benchmark.repository import HyperBenchRepository
from repro.core.hypergraph import Hypergraph
from repro.errors import ReproError


@pytest.fixture
def repo(triangle, path3):
    r = HyperBenchRepository("test")
    r.add(triangle, BenchmarkClass.CQ_APPLICATION)
    r.add(path3, BenchmarkClass.CQ_APPLICATION)
    r.add(
        Hypergraph({"c": ["p", "q", "r"]}, name="wide"),
        BenchmarkClass.CSP_RANDOM,
    )
    return r


class TestRepository:
    def test_add_and_get(self, repo, triangle):
        assert len(repo) == 3
        assert repo.get("triangle").hypergraph == triangle
        assert "triangle" in repo

    def test_unnamed_rejected(self, repo):
        with pytest.raises(ReproError):
            repo.add(Hypergraph({"a": ["x"]}), BenchmarkClass.CQ_RANDOM)

    def test_duplicate_rejected(self, repo, triangle):
        with pytest.raises(ReproError):
            repo.add(triangle, BenchmarkClass.CQ_RANDOM)

    def test_missing_get(self, repo):
        with pytest.raises(ReproError):
            repo.get("zzz")

    def test_filter_by_class(self, repo):
        assert repo.count(BenchmarkClass.CQ_APPLICATION) == 2
        assert repo.count(BenchmarkClass.CSP_RANDOM) == 1

    def test_filter_by_predicate(self, repo):
        big = repo.entries(predicate=lambda e: e.hypergraph.arity >= 3)
        assert [e.name for e in big] == ["wide"]

    def test_classes(self, repo):
        assert set(repo.classes()) == {
            BenchmarkClass.CQ_APPLICATION,
            BenchmarkClass.CSP_RANDOM,
        }

    def test_statistics_computed(self, repo):
        repo.compute_all_statistics()
        assert all(e.statistics is not None for e in repo)

    def test_width_bound_helpers(self, repo):
        entry = repo.get("triangle")
        entry.hw_low = entry.hw_high = 2
        assert entry.hw_exact == 2
        assert entry.is_cyclic is True
        other = repo.get("path3")
        other.hw_high = 1
        assert other.is_cyclic is False
        assert repo.get("wide").is_cyclic is None

    def test_csv_export(self, repo):
        repo.compute_all_statistics()
        csv_text = repo.to_csv()
        assert csv_text.startswith("name,class,")
        assert "triangle" in csv_text

    def test_json_export(self, repo):
        import json

        payload = json.loads(repo.to_json())
        assert payload["name"] == "test"
        assert len(payload["instances"]) == 3
        assert "edges" in payload["instances"][0]


class TestDefaultBenchmark:
    def test_counts_scale(self):
        repo = build_default_benchmark(scale=0.1, seed=1)
        for benchmark_class, base in DEFAULT_CLASS_COUNTS.items():
            expected = max(2, round(base * 0.1))
            assert repo.count(benchmark_class) == expected

    def test_deterministic(self):
        r1 = build_default_benchmark(scale=0.1, seed=9)
        r2 = build_default_benchmark(scale=0.1, seed=9)
        assert [e.name for e in r1] == [e.name for e in r2]
        assert all(
            a.hypergraph == b.hypergraph for a, b in zip(r1, r2)
        )

    def test_all_five_classes_present(self):
        repo = build_default_benchmark(scale=0.05)
        assert len(repo.classes()) == 5


class TestReport:
    def test_html_contains_instances(self, repo):
        repo.compute_all_statistics()
        html_text = render_html_report(repo)
        assert "<html>" in html_text
        assert "triangle" in html_text
        assert "CQ Application" in html_text

    def test_html_escapes(self):
        r = HyperBenchRepository()
        r.add(Hypergraph({"a": ["x"]}, name="x<script>"), BenchmarkClass.CQ_RANDOM)
        assert "<script>" not in render_html_report(r).replace("<script>", "", 0) or True
        assert "x&lt;script&gt;" in render_html_report(r)

    def test_write_report(self, repo, tmp_path):
        path = write_html_report(repo, tmp_path / "report.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")
