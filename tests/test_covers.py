"""Unit tests for integral and fractional edge covers."""

import pytest

from repro.core.covers import (
    covered_vertices,
    fractional_cover,
    fractional_cover_number,
    is_integral_cover,
    minimum_integral_cover,
)
from repro.errors import HypergraphError
from tests.conftest import clique_hypergraph


class TestFractionalCover:
    def test_triangle_fractional_cover_is_1_5(self, triangle):
        cover = fractional_cover(triangle.edges, triangle.vertices)
        assert cover.weight == pytest.approx(1.5, abs=1e-6)

    def test_triangle_weights_are_halves(self, triangle):
        cover = fractional_cover(triangle.edges, triangle.vertices)
        assert all(w == pytest.approx(0.5, abs=1e-6) for w in cover.weights.values())

    def test_single_edge_covers_itself(self, star):
        cover = fractional_cover(star.edges, star.edge("fact"))
        assert cover.weight == pytest.approx(1.0, abs=1e-6)

    def test_empty_bag_costs_nothing(self, triangle):
        assert fractional_cover(triangle.edges, []).weight == 0.0

    def test_uncoverable_vertex_raises(self, triangle):
        with pytest.raises(HypergraphError):
            fractional_cover(triangle.edges, ["nonexistent"])

    def test_allowed_restriction(self, triangle):
        cover = fractional_cover(triangle.edges, ["x", "y"], allowed=["r"])
        assert set(cover.weights) == {"r"}

    def test_allowed_restriction_infeasible(self, triangle):
        with pytest.raises(HypergraphError):
            fractional_cover(triangle.edges, ["x", "y", "z"], allowed=["r"])

    def test_k5_fractional_cover(self, k5):
        # K5: fractional vertex cover by edges = 5/2 edges of weight 1/... the
        # optimum is 2.5 (each vertex in 4 edges; LP optimum n/2).
        assert fractional_cover_number(k5.edges, k5.vertices) == pytest.approx(2.5, abs=1e-6)

    def test_covered_vertices(self, triangle):
        covered = covered_vertices(triangle.edges, {"r": 0.5, "s": 0.5, "t": 0.5})
        assert covered == {"x", "y", "z"}

    def test_covered_vertices_threshold(self, triangle):
        covered = covered_vertices(triangle.edges, {"r": 0.4, "s": 0.4, "t": 0.4})
        assert covered == frozenset()


class TestIntegralCover:
    def test_is_integral_cover_true(self, triangle):
        assert is_integral_cover(triangle.edges, ["r", "s"], ["x", "y", "z"])

    def test_is_integral_cover_false(self, triangle):
        assert not is_integral_cover(triangle.edges, ["r"], ["x", "y", "z"])

    def test_minimum_cover_of_triangle_needs_two(self, triangle):
        cover = minimum_integral_cover(triangle.edges, triangle.vertices)
        assert cover is not None and len(cover) == 2

    def test_minimum_cover_empty_bag(self, triangle):
        assert minimum_integral_cover(triangle.edges, []) == ()

    def test_minimum_cover_uncoverable(self, triangle):
        assert minimum_integral_cover(triangle.edges, ["q"]) is None

    def test_minimum_cover_respects_max_size(self, triangle):
        assert minimum_integral_cover(triangle.edges, triangle.vertices, max_size=1) is None

    def test_k4_needs_two_edges(self, k4):
        cover = minimum_integral_cover(k4.edges, k4.vertices)
        assert len(cover) == 2

    def test_clique_cover_grows(self):
        k6 = clique_hypergraph(6)
        cover = minimum_integral_cover(k6.edges, k6.vertices)
        assert len(cover) == 3
