"""Tests for the per-table experiment drivers and the full study."""

import pytest

from repro.analysis.experiments import (
    figure3_sizes,
    figure4_hw,
    figure5_correlation,
    run_full_study,
    table1_overview,
    table2_properties,
    table3_ghw_algorithms,
    table4_ghw_portfolio,
    table5_improve_hd,
    table6_frac_improve,
)


@pytest.fixture(scope="module")
def study():
    # A tiny but complete run of the whole Section 6 pipeline.
    return run_full_study(scale=0.06, seed=7, timeout=1.0)


class TestStudyPipeline:
    def test_all_artefacts_present(self, study):
        expected = {
            "table1",
            "table2",
            "figure3",
            "figure4",
            "figure5",
            "table3",
            "table4",
            "table5",
            "table6",
        }
        assert set(study.results) == expected

    def test_render_all_contains_titles(self, study):
        text = study.render_all()
        assert "Table 1" in text
        assert "Figure 5" in text

    def test_table1_total_row(self, study):
        result = table1_overview(study.repository)
        assert result.rows[-1][0] == "Total"
        assert result.rows[-1][1] == len(study.repository)

    def test_table1_cyclic_at_most_total(self, study):
        result = table1_overview(study.repository)
        for row in result.rows:
            assert row[2] <= row[1]

    def test_table2_histogram_sums(self, study):
        result = table2_properties(study.repository)
        per_class: dict[str, int] = {}
        for row in result.rows:
            per_class[row[0]] = per_class.get(row[0], 0) + row[2]  # Deg column
        for name, total in per_class.items():
            assert total == study.repository.count(
                next(c for c in study.repository.classes() if str(c) == name)
            )

    def test_figure3_percentages_sum(self, study):
        result = figure3_sizes(study.repository)
        sums: dict[tuple[str, str], float] = {}
        for row in result.rows:
            sums[(row[0], row[1])] = sums.get((row[0], row[1]), 0.0) + row[4]
        for total in sums.values():
            assert total == pytest.approx(100.0, abs=0.5)

    def test_figure4_counts_match_repository(self, study):
        result = figure4_hw(study.hw)
        # Every instance appears exactly once at k=1.
        k1_total = sum(row[2] + row[4] + row[6] for row in result.rows if row[1] == 1)
        assert k1_total == len(study.repository)

    def test_figure5_has_all_metrics(self, study):
        result = figure5_correlation(study.repository)
        assert len(result.rows) == 9
        assert result.rows[0][1] == 1.0  # diagonal

    def test_table3_headers(self, study):
        result = table3_ghw_algorithms(study.ghw)
        assert "GlobalBIP yes" in result.headers
        assert "BalSep no" in result.headers

    def test_table4_consistency(self, study):
        result = table4_ghw_portfolio(study.ghw)
        assert len(result.rows) == len(study.ghw.ks)

    def test_tables_5_6_buckets(self, study):
        for result in (table5_improve_hd(study.fractional), table6_frac_improve(study.fractional)):
            assert result.headers == ["hw", ">=1", "[0.5,1)", "[0.1,0.5)", "no", "timeout"]

    def test_paper_shape_non_random_cqs_low_hw(self, study):
        """Goal 2 shape: CQ Application instances all have hw <= 3."""
        from repro.benchmark.classes import BenchmarkClass

        for entry in study.repository.entries(BenchmarkClass.CQ_APPLICATION):
            assert entry.hw_high is not None and entry.hw_high <= 3

    def test_paper_shape_hw_equals_ghw_mostly(self, study):
        """Section 6.4 shape: where both are exact, hw = ghw almost always."""
        solved = [
            e
            for e in study.repository
            if e.hw_exact is not None and e.ghw_exact is not None
        ]
        agreeing = [e for e in solved if e.hw_exact == e.ghw_exact]
        if solved:
            assert len(agreeing) / len(solved) >= 0.9


class TestRenderedTables:
    def test_every_result_renders(self, study):
        for result in study.results.values():
            text = result.rendered
            assert text.count("+-") >= 2  # has separators
            assert result.title in text
