"""Equivalence suite: bitset kernel vs the frozenset reference kernel.

Property-based differential tests on random hypergraphs: the mask-native
primitives (:mod:`repro.core.bitset`) must agree with the frozenset reference
implementations (:mod:`repro.core.components`, the frozenset
``covering_combinations``), and every mask-rewritten decomposition search
must return the same verdict — and an equally valid decomposition — as the
frozen pre-bitset implementations in :mod:`repro.decomp.reference`.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.bitset import (
    FamilyIndex,
    HypergraphView,
    iter_bits,
    mask_components,
    mask_covering_combinations,
    mask_is_balanced,
    mask_minimum_cover,
    mask_separate,
)
from repro.core.components import (
    components,
    is_balanced_separator,
    separate,
)
from repro.core.covers import is_integral_cover, minimum_integral_cover
from repro.core.hypergraph import Hypergraph
from repro.core.simplify import lift_decomposition, simplify
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import DetKDecomp, check_hd, covering_combinations
from repro.decomp.globalbip import check_ghd_global_bip
from repro.decomp.hybrid import check_ghd_hybrid
from repro.decomp.localbip import check_ghd_local_bip
from repro.decomp.reference import (
    ReferenceDetKDecomp,
    check_ghd_balsep_reference,
    check_hd_reference,
)
from repro.perf import counters
from repro.utils.deadline import Deadline
from tests.conftest import clique_hypergraph, cycle_hypergraph, random_hypergraph

SEEDS = range(40)


def _view_components_as_names(view, comps):
    return {view.edge_names_of(members) for members, _ in comps}


def _random_vertex_subset(h: Hypergraph, rng: random.Random) -> frozenset[str]:
    vertices = sorted(h.vertices)
    return frozenset(v for v in vertices if rng.random() < 0.4)


class TestComponentsEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_components_match_reference(self, seed):
        h = random_hypergraph(seed)
        view = HypergraphView.of(h)
        rng = random.Random(seed * 31 + 7)
        for _ in range(5):
            separator = _random_vertex_subset(h, rng)
            expected = set(components(h.edges, separator))
            got = _view_components_as_names(
                view, mask_components(view.edge_masks, view.vertices_mask(separator))
            )
            assert got == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_separate_matches_reference(self, seed):
        h = random_hypergraph(seed)
        view = HypergraphView.of(h)
        rng = random.Random(seed * 17 + 3)
        separator = _random_vertex_subset(h, rng)
        ref_comps, ref_absorbed = separate(h.edges, separator)
        comps, absorbed = mask_separate(
            view.edge_masks, view.vertices_mask(separator)
        )
        assert _view_components_as_names(view, comps) == set(ref_comps)
        assert view.edge_names_of(absorbed) == ref_absorbed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_balanced_matches_reference(self, seed):
        h = random_hypergraph(seed)
        view = HypergraphView.of(h)
        rng = random.Random(seed * 13 + 1)
        for _ in range(5):
            separator = _random_vertex_subset(h, rng)
            assert mask_is_balanced(
                view.edge_masks, view.vertices_mask(separator)
            ) == is_balanced_separator(h.edges, separator)

    def test_components_active_subset(self):
        h = cycle_hypergraph(8)
        view = HypergraphView.of(h)
        active = view.edges_mask(["c0", "c1", "c4", "c5"])
        comps = mask_components(
            view.edge_masks, view.vertices_mask(["x2"]), active=active
        )
        got = _view_components_as_names(view, comps)
        sub = {n: h.edge(n) for n in ("c0", "c1", "c4", "c5")}
        assert got == set(components(sub, frozenset({"x2"})))


class TestCoveringEnumerationEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_frozenset_reference(self, seed):
        h = random_hypergraph(seed)
        view = HypergraphView.of(h)
        rng = random.Random(seed * 41 + 5)
        names = list(view.edge_names)
        rng.shuffle(names)
        n_primary = rng.randint(0, len(names))
        primary, secondary = names[:n_primary], names[n_primary:]
        conn = _random_vertex_subset(h, rng)
        k = rng.randint(1, 3)
        require = rng.random() < 0.5

        ref = {
            frozenset(combo)
            for combo in covering_combinations(
                dict(h.edges), primary, secondary, conn, k,
                Deadline.unlimited(), require_primary=require,
            )
        }
        masks = [view.edge_masks[view.edge_bit[n]] for n in names]
        got = {
            frozenset(names[j] for j in combo)
            for combo in mask_covering_combinations(
                masks, n_primary, view.vertices_mask(conn), k,
                Deadline.unlimited(), require_primary=require,
            )
        }
        assert got == ref

    def test_specialised_k_matches_general_dfs(self):
        # k=1 / k=2 / k=3 take the specialised loops; cross-check them
        # against the k=4 general DFS restricted to the same sizes.
        rng = random.Random(99)
        for _ in range(50):
            n = rng.randint(0, 7)
            masks = [rng.randint(0, 63) for _ in range(n)]
            n_primary = rng.randint(0, n)
            conn = rng.randint(0, 63)
            require = rng.random() < 0.5
            general = list(
                mask_covering_combinations(
                    masks, n_primary, conn, 4, Deadline.unlimited(),
                    require_primary=require,
                )
            )
            for k in (1, 2, 3):
                special = list(
                    mask_covering_combinations(
                        masks, n_primary, conn, k, Deadline.unlimited(),
                        require_primary=require,
                    )
                )
                assert special == [c for c in general if len(c) <= k]


class TestMinimumCoverEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mask_cover_matches_name_cover_size(self, seed):
        h = random_hypergraph(seed)
        view = HypergraphView.of(h)
        rng = random.Random(seed * 7 + 11)
        bag = _random_vertex_subset(h, rng)
        ref = minimum_integral_cover(h.edges, bag)
        got = mask_minimum_cover(view.edge_masks, view.vertices_mask(bag))
        if ref is None:
            assert got is None
        else:
            assert got is not None and len(got) == len(ref)
            cover_names = [view.edge_names[j] for j in got]
            assert is_integral_cover(h.edges, cover_names, bag)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_max_size_agreement(self, seed):
        h = random_hypergraph(seed)
        view = HypergraphView.of(h)
        bag = h.vertices
        for max_size in (1, 2):
            ref = minimum_integral_cover(h.edges, bag, max_size=max_size)
            got = mask_minimum_cover(
                view.edge_masks, view.vertices_mask(bag), max_size=max_size
            )
            assert (got is None) == (ref is None)


class TestViewRoundTrips:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mask_name_round_trips(self, seed):
        h = random_hypergraph(seed)
        view = HypergraphView.of(h)
        assert view.vertex_names_of(view.all_vertices) == h.vertices
        assert view.edge_names_of(view.all_edges) == frozenset(h.edge_names)
        for name in h.edge_names:
            mask = view.edge_masks[view.edge_bit[name]]
            assert view.vertex_names_of(mask) == h.edge(name)
        # incidence: vertex bit -> mask of incident edges
        for v in h.vertices:
            b = view.vertex_bit[v]
            assert view.edge_names_of(view.incidence[b]) == frozenset(
                h.incident_edges(v)
            )

    def test_view_is_cached_per_hypergraph(self, triangle):
        assert HypergraphView.of(triangle) is HypergraphView.of(triangle)

    def test_family_index_matches_view(self, triangle):
        view = HypergraphView.of(triangle)
        index = FamilyIndex(triangle.edges)
        assert index.edge_names == view.edge_names
        assert index.edge_masks == view.edge_masks

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]


class TestVerdictEquivalence:
    """All decomposition methods agree with the frozen reference kernel."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hd_verdicts_and_validity(self, seed):
        h = random_hypergraph(seed)
        for k in (1, 2, 3):
            got = check_hd(h, k)
            ref = check_hd_reference(h, k)
            assert (got is None) == (ref is None), f"hd verdict differs at k={k}"
            if got is not None:
                got.validate("HD")
                assert got.integral_width <= k
            if ref is not None:
                ref.validate("HD")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ghd_verdicts_and_validity(self, seed):
        h = random_hypergraph(seed)
        for k in (1, 2):
            ref = check_ghd_balsep_reference(h, k)
            for fn in (
                check_ghd_balsep,
                check_ghd_local_bip,
                check_ghd_global_bip,
                check_ghd_hybrid,
            ):
                got = fn(h, k)
                assert (got is None) == (ref is None), (
                    f"{fn.__name__} verdict differs at k={k}"
                )
                if got is not None:
                    got.validate("GHD")
                    assert got.integral_width <= k

    @pytest.mark.parametrize("heuristic", DetKDecomp.HEURISTICS)
    def test_heuristics_agree_with_reference(self, heuristic):
        for seed in range(10):
            h = random_hypergraph(seed + 500)
            for k in (1, 2):
                got = DetKDecomp(h, k, heuristic=heuristic).decompose()
                ref = ReferenceDetKDecomp(h, k, heuristic=heuristic).decompose()
                assert (got is None) == (ref is None)

    def test_structured_instances(self):
        # Known widths: K_n has hw = ghw = ceil(n/2); cycles have hw = 2.
        assert check_hd(clique_hypergraph(6), 2) is None
        assert check_hd(clique_hypergraph(6), 3) is not None
        assert check_ghd_balsep(cycle_hypergraph(9), 1) is None
        assert check_ghd_balsep(cycle_hypergraph(9), 2) is not None

    @pytest.mark.parametrize("seed", range(12))
    def test_bag_filter_equivalence(self, seed):
        h = random_hypergraph(seed + 900)
        for limit in (2, 3):
            got = DetKDecomp(h, 2, bag_filter=lambda bag: len(bag) <= limit).decompose()
            ref = ReferenceDetKDecomp(
                h, 2, bag_filter=lambda bag: len(bag) <= limit
            ).decompose()
            assert (got is None) == (ref is None)
            if got is not None:
                assert all(len(b) <= limit for b in got.bags())

    @pytest.mark.parametrize("seed", range(12))
    def test_simplified_verdicts_survive_lift(self, seed):
        h = random_hypergraph(seed + 1200)
        trace = simplify(h)
        for k in (1, 2):
            reduced_ghd = check_ghd_balsep(trace.reduced, k)
            full_ghd = check_ghd_balsep_reference(h, k)
            assert (reduced_ghd is None) == (full_ghd is None)
            if reduced_ghd is not None:
                lifted = lift_decomposition(trace, reduced_ghd)
                lifted.validate("GHD")


class TestCounters:
    def test_kernel_counters_increment(self, k5):
        counters.reset()
        assert check_hd(k5, 2) is None
        snap = counters.snapshot()
        assert snap["components_calls"] > 0
        assert snap["cover_enumerations"] > 0

    def test_reference_counters_increment(self, k5):
        counters.reset()
        assert check_hd_reference(k5, 2) is None
        snap = counters.snapshot()
        assert snap["components_calls"] > 0
        assert snap["cover_enumerations"] > 0

    def test_subedge_closure_counted(self, triangle):
        counters.reset()
        assert check_ghd_balsep(triangle, 1) is None
        assert counters.snapshot()["subedge_closures"] >= 1


class TestHarness:
    def test_quick_workload_runs_and_agrees(self):
        from repro.perf.harness import compare_to_baseline, default_workload, run_workload

        cases = [c for c in default_workload(quick=True) if c.instance in ("K6", "cycle16")]
        assert cases, "workload subset is empty"
        report = run_workload(cases=cases)
        assert report["summary"]["verdict_mismatches"] == 0
        for record in report["cases"]:
            assert record["bitset"]["seconds"] >= 0
            assert record["bitset"]["components_calls"] > 0
        # The report regresses against itself only if times somehow doubled.
        assert compare_to_baseline(report, report) == []

    def test_compare_to_baseline_flags_regressions(self):
        baseline = {
            "cases": [
                {"case": "a/x/k1", "bitset": {"seconds": 1.0}},
                {"case": "b/x/k1", "bitset": {"seconds": 0.001}},
            ]
        }
        report = {
            "cases": [
                {"case": "a/x/k1", "bitset": {"seconds": 2.5}},
                # tiny case doubling stays under the absolute floor
                {"case": "b/x/k1", "bitset": {"seconds": 0.002}},
                {"case": "new/x/k1", "bitset": {"seconds": 9.9}},
            ]
        }
        from repro.perf.harness import compare_to_baseline

        regressions = compare_to_baseline(report, baseline)
        assert len(regressions) == 1 and regressions[0].startswith("a/x/k1")


class TestSubedgeMaskClosure:
    @pytest.mark.parametrize("seed", range(15))
    def test_mask_entries_match_frozenset_family(self, seed):
        from repro.core.subedges import mask_subedge_entries, subedge_family

        h = random_hypergraph(seed, max_vertices=6, max_edges=5)
        view = HypergraphView.of(h)
        family = subedge_family(h.edges, 2)
        entries = mask_subedge_entries(view.edge_masks, 2)
        got = {view.vertex_names_of(mask) for mask, _ in entries}
        assert got == set(family)
        for mask, parent in entries:
            assert view.vertex_names_of(mask) <= h.edge(view.edge_names[parent])

    @pytest.mark.parametrize("seed", range(15))
    def test_restricted_closure_is_subset(self, seed):
        from repro.core.subedges import mask_subedge_entries

        h = random_hypergraph(seed, max_vertices=6, max_edges=6)
        view = HypergraphView.of(h)
        full = {m for m, _ in mask_subedge_entries(view.edge_masks, 2)}
        half = view.all_edges & (view.all_edges >> 1) | 1
        local = {
            m for m, _ in mask_subedge_entries(view.edge_masks, 2, restrict_to=half)
        }
        assert local <= full
