"""Tests for the separator-ordering heuristics of DetKDecomp."""

import pytest

from repro.decomp.detkdecomp import DetKDecomp
from tests.conftest import clique_hypergraph, cycle_hypergraph, random_hypergraph


class TestHeuristics:
    def test_unknown_heuristic_rejected(self, triangle):
        with pytest.raises(ValueError):
            DetKDecomp(triangle, 2, heuristic="zzz")

    @pytest.mark.parametrize("heuristic", DetKDecomp.HEURISTICS)
    def test_each_heuristic_finds_hd(self, heuristic, cycle6):
        hd = DetKDecomp(cycle6, 2, heuristic=heuristic).decompose()
        assert hd is not None
        hd.validate("HD")

    @pytest.mark.parametrize("heuristic", DetKDecomp.HEURISTICS)
    def test_each_heuristic_refutes(self, heuristic, k5):
        assert DetKDecomp(k5, 2, heuristic=heuristic).decompose() is None

    @pytest.mark.parametrize("seed", range(15))
    def test_verdict_independent_of_heuristic(self, seed):
        h = random_hypergraph(seed)
        for k in (1, 2, 3):
            verdicts = set()
            for heuristic in DetKDecomp.HEURISTICS:
                result = DetKDecomp(h, k, heuristic=heuristic).decompose()
                verdicts.add(result is not None)
                if result is not None:
                    result.validate("HD")
            assert len(verdicts) == 1, f"heuristic changes verdict on {h!r} k={k}"
