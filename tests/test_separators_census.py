"""Tests for the balanced-separator census."""

import math

import pytest

from repro.analysis.separators import count_balanced_separators
from repro.core.hypergraph import Hypergraph
from tests.conftest import clique_hypergraph, cycle_hypergraph


class TestCensus:
    def test_total_is_binomial_sum(self, triangle):
        census = count_balanced_separators(triangle, 2)
        assert census.total == math.comb(3, 1) + math.comb(3, 2)

    def test_triangle_pairs_balanced_singles_not(self, triangle):
        census = count_balanced_separators(triangle, 2)
        # A single edge leaves the other two edges [B(λ)]-connected (they
        # share the opposite vertex): 2 > 3/2, unbalanced.  Every pair
        # absorbs everything: balanced.
        assert census.balanced == 3
        assert census.total == 6

    def test_cycle_singles_unbalanced(self):
        c8 = cycle_hypergraph(8)
        census1 = count_balanced_separators(c8, 1)
        # One edge leaves a single 6-edge path component: 6 > 4.
        assert census1.balanced == 0

    def test_cycle_pairs(self):
        c8 = cycle_hypergraph(8)
        census = count_balanced_separators(c8, 2)
        # Opposite pairs split the cycle evenly; adjacent pairs do not.
        assert 0 < census.balanced < census.total
        assert census.ratio < 0.5

    def test_ratio_zero_total(self):
        census = count_balanced_separators(Hypergraph({}), 2)
        assert census.total == 0 and census.ratio == 0.0

    def test_clique_ratio_shrinks_with_size(self):
        small = count_balanced_separators(clique_hypergraph(4), 1)
        large = count_balanced_separators(clique_hypergraph(6), 1)
        assert large.ratio <= small.ratio


class TestConjecture:
    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_balanced_fraction_small_on_cycles(self, n):
        census = count_balanced_separators(cycle_hypergraph(n), 2)
        assert census.ratio < 0.5
