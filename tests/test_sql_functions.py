"""Tests for SQL function-call tolerance (aggregates, scalar expressions)."""

import pytest

from repro.sql.ast import Literal, SelectQuery
from repro.sql.convert import sql_to_hypergraphs
from repro.sql.extract import extract_simple_queries
from repro.sql.parser import parse_sql
from repro.sql.schema import Schema

SCHEMA = Schema({"tab": ["a", "b", "c"]})


class TestFunctionCalls:
    def test_aggregate_in_select(self):
        q = parse_sql("SELECT SUM(t1.a), COUNT(*) FROM tab t1")
        assert isinstance(q, SelectQuery)
        assert all(isinstance(item.expr, Literal) for item in q.select)
        assert q.select[0].expr.kind == "expr"

    def test_aggregate_with_alias(self):
        q = parse_sql("SELECT SUM(t1.a) AS total FROM tab t1")
        assert q.select[0].alias == "total"

    def test_nested_function_arguments(self):
        q = parse_sql("SELECT substr(concat(t1.a, t1.b), 1, 3) FROM tab t1")
        assert q.select[0].expr.kind == "expr"

    def test_function_in_where_dropped_from_core(self):
        sql = """SELECT * FROM tab t1, tab t2
                 WHERE t1.a = t2.a AND LENGTH(t1.b) = 5"""
        (simple,) = extract_simple_queries(sql, SCHEMA)
        assert simple.joins == [(("t1", "a"), ("t2", "a"))]
        assert simple.constants == []  # LENGTH(...) = 5 is not a constant bind

    def test_expr_comparison_not_a_constant(self):
        sql = "SELECT * FROM tab t1 WHERE t1.b = UPPER(t1.c)"
        (simple,) = extract_simple_queries(sql, SCHEMA)
        assert simple.constants == []

    def test_having_with_aggregate_parses(self):
        sql = """SELECT t1.a FROM tab t1 WHERE t1.b = 1
                 GROUP BY t1.a HAVING COUNT(*) > 3"""
        (h,) = sql_to_hypergraphs(sql, SCHEMA)
        assert h.num_edges == 1

    def test_aggregate_query_still_produces_hypergraph(self):
        sql = """SELECT t1.a, SUM(t2.c) FROM tab t1, tab t2
                 WHERE t1.a = t2.a GROUP BY t1.a"""
        (h,) = sql_to_hypergraphs(sql, SCHEMA)
        assert h.num_edges == 2
        shared = h.edge("t1") & h.edge("t2")
        assert len(shared) == 1
