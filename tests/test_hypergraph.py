"""Unit tests for the Hypergraph data structure."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.errors import HypergraphError


class TestConstruction:
    def test_from_mapping(self):
        h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"]})
        assert h.num_edges == 2
        assert h.vertices == {"x", "y", "z"}

    def test_from_iterable_gets_default_names(self):
        h = Hypergraph([["x", "y"], ["y", "z"]])
        assert h.edge_names == ("e1", "e2")

    def test_vertices_are_union_of_edges(self, triangle):
        assert triangle.vertices == {"x", "y", "z"}

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph({"r": []})

    def test_duplicate_edge_name_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([("a",), ("b",)]).with_edges({"e1": ["c"]})

    def test_empty_edge_name_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph({"": ["x"]})

    def test_vertices_coerced_to_strings(self):
        h = Hypergraph({"r": [1, 2]})
        assert h.vertices == {"1", "2"}

    def test_duplicate_vertices_in_edge_collapse(self):
        h = Hypergraph({"r": ["x", "x", "y"]})
        assert h.edge("r") == {"x", "y"}

    def test_empty_hypergraph(self):
        h = Hypergraph({})
        assert h.num_edges == 0
        assert h.num_vertices == 0
        assert h.arity == 0


class TestAccessors:
    def test_edge_lookup(self, triangle):
        assert triangle.edge("r") == {"x", "y"}

    def test_missing_edge_raises(self, triangle):
        with pytest.raises(HypergraphError):
            triangle.edge("nope")

    def test_contains(self, triangle):
        assert "r" in triangle
        assert "zzz" not in triangle

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert set(triangle) == {"r", "s", "t"}

    def test_arity(self, star):
        assert star.arity == 3

    def test_incident_edges(self, triangle):
        assert set(triangle.incident_edges("y")) == {"r", "s"}
        assert triangle.incident_edges("unknown") == ()

    def test_degree_of(self, star):
        assert star.degree_of("k1") == 2
        assert star.degree_of("a") == 1


class TestDerivation:
    def test_restrict(self, triangle):
        sub = triangle.restrict(["r", "s"])
        assert sub.num_edges == 2
        assert sub.vertices == {"x", "y", "z"}

    def test_with_edges(self, path3):
        extended = path3.with_edges({"d": ["4", "5"]})
        assert extended.num_edges == 4
        assert path3.num_edges == 3  # original untouched

    def test_with_edges_rejects_existing_name(self, path3):
        with pytest.raises(HypergraphError):
            path3.with_edges({"a": ["9"]})

    def test_dedupe_removes_identical_edge_sets(self):
        h = Hypergraph({"a": ["x", "y"], "b": ["y", "x"], "c": ["z", "x"]})
        d = h.dedupe()
        assert d.num_edges == 2
        assert "a" in d and "c" in d

    def test_remove_covered_edges(self):
        h = Hypergraph({"big": ["x", "y", "z"], "small": ["x", "y"]})
        r = h.remove_covered_edges()
        assert r.edge_names == ("big",)

    def test_remove_covered_keeps_equal_first(self):
        h = Hypergraph({"a": ["x", "y"], "b": ["x", "y"]})
        r = h.remove_covered_edges()
        assert r.edge_names == ("a",)


class TestEquality:
    def test_eq_and_hash(self):
        h1 = Hypergraph({"r": ["x", "y"]})
        h2 = Hypergraph({"r": ["y", "x"]})
        assert h1 == h2
        assert hash(h1) == hash(h2)

    def test_neq_on_different_edges(self):
        assert Hypergraph({"r": ["x"]}) != Hypergraph({"r": ["y"]})

    def test_edge_sets_ignore_names(self):
        h1 = Hypergraph({"a": ["x", "y"]})
        h2 = Hypergraph({"b": ["x", "y"]})
        assert h1.is_isomorphic_signature(h2)

    def test_repr_mentions_counts(self, triangle):
        assert "3 edges" in repr(triangle)
