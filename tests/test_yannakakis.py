"""Tests for Yannakakis-style CQ evaluation along decompositions."""

import itertools

import pytest

from repro.cq.convert import cq_to_hypergraph
from repro.cq.parser import parse_cq
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import check_hd
from repro.errors import SolverError
from repro.relational.relation import Relation
from repro.relational.yannakakis import (
    DecompositionEvaluator,
    atom_relation,
    evaluate_cq,
)


def naive_evaluate(query, database):
    """Brute-force CQ evaluation by enumerating variable assignments."""
    variables = query.variables()
    domain = set()
    for relation in database.values():
        for row in relation.rows:
            domain.update(row)
    answers = set()
    for values in itertools.product(sorted(domain, key=repr), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        ok = True
        for atom in query.atoms:
            bound = []
            for term in atom.terms:
                if term in assignment:
                    bound.append(assignment[term])
                else:
                    try:
                        bound.append(int(term))
                    except ValueError:
                        bound.append(term)
            if tuple(bound) not in database[atom.relation].rows:
                ok = False
                break
        if ok:
            answers.add(tuple(assignment[v] for v in query.head))
    return answers


@pytest.fixture
def small_database():
    return {
        "r": Relation(("1", "2"), {(1, 2), (2, 3), (3, 4)}),
        "s": Relation(("1", "2"), {(2, 5), (3, 6), (4, 6)}),
        "t": Relation(("1", "2"), {(5, 1), (6, 3)}),
    }


class TestAtomRelation:
    def test_binds_variables(self):
        rel = Relation(("c1", "c2"), {(1, 2), (3, 4)})
        bound = atom_relation(("X", "Y"), rel)
        assert bound.attributes == ("X", "Y")
        assert bound.rows == {(1, 2), (3, 4)}

    def test_repeated_variable_filters(self):
        rel = Relation(("c1", "c2"), {(1, 1), (1, 2)})
        bound = atom_relation(("X", "X"), rel)
        assert bound.rows == {(1,)}

    def test_constant_selection(self):
        rel = Relation(("c1", "c2"), {(1, 2), (3, 2)})
        bound = atom_relation(("X", "2"), rel)
        assert bound.rows == {(1,), (3,)}


class TestEvaluateCq:
    def test_chain_query(self, small_database):
        query = parse_cq("ans(X, Z) :- r(X, Y), s(Y, Z).")
        h = cq_to_hypergraph(query, dedupe=False)
        hd = check_hd(h, 1)
        result = evaluate_cq(query, small_database, hd)
        assert result.rows == naive_evaluate(query, small_database)

    def test_triangle_query(self, small_database):
        query = parse_cq("ans(X) :- r(X, Y), s(Y, Z), t(Z, X).")
        h = cq_to_hypergraph(query, dedupe=False)
        hd = check_hd(h, 2)
        result = evaluate_cq(query, small_database, hd)
        assert result.rows == naive_evaluate(query, small_database)

    def test_boolean_query(self, small_database):
        query = parse_cq("ans() :- r(X, Y), s(Y, Z).")
        h = cq_to_hypergraph(query, dedupe=False)
        hd = check_hd(h, 1)
        result = evaluate_cq(query, small_database, hd)
        assert bool(result) == bool(naive_evaluate(query, small_database))

    def test_unsatisfiable(self):
        database = {
            "r": Relation(("1", "2"), {(1, 2)}),
            "s": Relation(("1", "2"), {(9, 9)}),
        }
        query = parse_cq("ans(X) :- r(X, Y), s(Y, Z).")
        hd = check_hd(cq_to_hypergraph(query, dedupe=False), 1)
        assert not evaluate_cq(query, database, hd)

    def test_ground_atom_true(self, small_database):
        query = parse_cq("ans(X) :- r(X, Y), r(1, 2).")
        hd = check_hd(cq_to_hypergraph(query, dedupe=False), 1)
        result = evaluate_cq(query, small_database, hd)
        assert result.rows == {(1,), (2,), (3,)}

    def test_ground_atom_false(self, small_database):
        query = parse_cq("ans(X) :- r(X, Y), r(9, 9).")
        hd = check_hd(cq_to_hypergraph(query, dedupe=False), 1)
        assert not evaluate_cq(query, small_database, hd)

    def test_missing_relation(self, small_database):
        query = parse_cq("ans(X) :- zzz(X).")
        hd = check_hd(cq_to_hypergraph(query, dedupe=False), 1)
        with pytest.raises(SolverError):
            evaluate_cq(query, small_database, hd)

    def test_same_answers_along_any_decomposition(self, small_database):
        """The evaluator is decomposition-agnostic: HD vs GHD, same answers."""
        query = parse_cq("ans(X, Z) :- r(X, Y), s(Y, Z), t(Z, X).")
        h = cq_to_hypergraph(query, dedupe=False)
        hd = check_hd(h, 2)
        ghd = check_ghd_balsep(h, 2)
        answers_hd = evaluate_cq(query, small_database, hd).rows
        answers_ghd = evaluate_cq(query, small_database, ghd).rows
        assert answers_hd == answers_ghd == naive_evaluate(query, small_database)


class TestEvaluator:
    def test_edge_relation_attribute_mismatch(self, triangle):
        hd = check_hd(triangle, 2)
        bad = {
            name: Relation(("wrong", "attrs"), set())
            for name in triangle.edge_names
        }
        with pytest.raises(SolverError):
            DecompositionEvaluator(hd, bad)

    def test_missing_edge_relation(self, triangle):
        hd = check_hd(triangle, 2)
        with pytest.raises(SolverError):
            DecompositionEvaluator(hd, {})

    def test_one_solution_consistency(self, triangle):
        hd = check_hd(triangle, 2)
        relations = {
            "r": Relation(("x", "y"), {(0, 1), (1, 0)}),
            "s": Relation(("y", "z"), {(1, 2), (0, 2)}),
            "t": Relation(("z", "x"), {(2, 0), (2, 1)}),
        }
        evaluator = DecompositionEvaluator(hd, relations)
        solution = evaluator.one_solution()
        assert solution is not None
        assert (solution["x"], solution["y"]) in relations["r"].rows
        assert (solution["y"], solution["z"]) in relations["s"].rows
        assert (solution["z"], solution["x"]) in relations["t"].rows

    def test_one_solution_none_when_unsat(self, triangle):
        hd = check_hd(triangle, 2)
        relations = {
            "r": Relation(("x", "y"), {(0, 1)}),
            "s": Relation(("y", "z"), {(1, 2)}),
            "t": Relation(("z", "x"), {(9, 9)}),
        }
        evaluator = DecompositionEvaluator(hd, relations)
        assert evaluator.one_solution() is None
