"""Tests for the ``repro.engine`` subsystem.

Covers fingerprint stability, result-store round-trips and accounting,
hard-timeout worker behaviour, batch resume from a (truncated) journal, and
cross-checks of the engine-backed paths against the in-process drivers.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.hypergraph import Hypergraph
from repro.decomp.driver import NO, TIMEOUT, YES, CheckOutcome, exact_width, ghd_portfolio
from repro.decomp.detkdecomp import check_hd
from repro.engine import (
    DecompositionEngine,
    JobSpec,
    Journal,
    ResultStore,
    canonical_form,
    fingerprint,
    map_checks,
    race_checks,
    register_method,
    run_checked,
    structural_fingerprint,
)
from repro.benchmark.build import build_default_benchmark
from repro.io.json_io import decomposition_from_json, decomposition_to_json
from tests.conftest import cycle_hypergraph, random_hypergraph


def _spin_forever(hypergraph, k, deadline):
    """A check function that ignores its cooperative deadline entirely."""
    while True:
        pass


def _crash(hypergraph, k, deadline):
    """A check function whose worker dies without reporting."""
    raise SystemExit(17)


register_method("spin", _spin_forever)
register_method("crash", _crash)


# ----------------------------------------------------------------- fingerprint


class TestFingerprint:
    def test_stable_under_edge_and_vertex_reordering(self, triangle):
        reordered = Hypergraph(
            {"t": ["x", "z"], "s": ["z", "y"], "r": ["y", "x"]}, name="other-name"
        )
        assert fingerprint(triangle) == fingerprint(reordered)
        assert canonical_form(triangle) == canonical_form(reordered)

    def test_instance_name_is_excluded(self, triangle):
        renamed = Hypergraph(triangle.edges, name="copy")
        assert fingerprint(triangle) == fingerprint(renamed)

    def test_different_graphs_differ(self, triangle, path3, star):
        prints = {fingerprint(h) for h in (triangle, path3, star)}
        assert len(prints) == 3

    def test_edge_names_are_significant(self, triangle):
        # λ-labels refer to edges by name, so renamed edges must not share
        # cached decompositions.
        renamed_edges = Hypergraph(
            {"a": ["x", "y"], "b": ["y", "z"], "c": ["z", "x"]}
        )
        assert fingerprint(triangle) != fingerprint(renamed_edges)

    def test_structural_fingerprint_survives_renaming(self, triangle):
        renamed = Hypergraph({"a": ["p", "q"], "b": ["q", "w"], "c": ["w", "p"]})
        assert structural_fingerprint(triangle) == structural_fingerprint(renamed)

    def test_structural_fingerprint_separates_graphs(self, triangle, path3):
        assert structural_fingerprint(triangle) != structural_fingerprint(path3)
        assert structural_fingerprint(cycle_hypergraph(4)) != structural_fingerprint(
            cycle_hypergraph(6)
        )

    def test_random_graphs_rarely_collide(self):
        graphs = [random_hypergraph(seed) for seed in range(30)]
        forms = {canonical_form(g) for g in graphs}
        prints = {fingerprint(g) for g in graphs}
        assert len(prints) == len(forms)


# ----------------------------------------------------------------------- store


class TestResultStore:
    def test_round_trip_with_decomposition(self, triangle):
        outcome = CheckOutcome(YES, 0.5, check_hd(triangle, 2))
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, 10.0, outcome)
            stored = store.get(fp, "hd", 2, 10.0)
            assert stored is not None
            rebuilt = stored.outcome(triangle)
        assert rebuilt.verdict == YES
        assert rebuilt.seconds == 0.5
        rebuilt.decomposition.validate()
        assert rebuilt.decomposition.integral_width == 2

    def test_hit_miss_accounting(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            assert store.get(fp, "hd", 1, None) is None
            store.put(fp, "hd", 1, None, CheckOutcome(NO, 0.1))
            assert store.get(fp, "hd", 1, None) is not None
            stats = store.stats
            assert (stats.hits, stats.misses) == (1, 1)
            assert (stats.session_hits, stats.session_misses) == (1, 1)
            assert stats.entries == 1

    def test_definite_answers_are_timeout_independent(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, 60.0, CheckOutcome(YES, 0.2, check_hd(triangle, 2)))
            stored = store.get(fp, "hd", 2, 1.0)  # different budget
            assert stored is not None and stored.verdict == YES

    def test_timeouts_only_replay_for_their_budget(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, 1.0, CheckOutcome(TIMEOUT, 1.0))
            assert store.get(fp, "hd", 2, 5.0) is None
            assert store.get(fp, "hd", 2, 1.0) is not None

    def test_lru_eviction(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore(max_entries=3) as store:
            for k in range(1, 6):
                store.put(fp, "hd", k, None, CheckOutcome(NO, 0.1))
            assert len(store) == 3

    def test_clear_and_persistence(self, tmp_path, triangle):
        path = tmp_path / "results.db"
        fp = fingerprint(triangle)
        with ResultStore(path) as store:
            store.put(fp, "hd", 2, None, CheckOutcome(NO, 0.1))
        with ResultStore(path) as store:
            assert store.get(fp, "hd", 2, None) is not None
            assert store.methods() == {"hd": 1}
            store.clear()
            assert len(store) == 0


class TestDecompositionJson:
    @pytest.mark.parametrize(
        "bad",
        [
            '{"root": {"bag": ["A"], "cover": ["e1"]}}',  # cover not a mapping
            '{"root": {"bag": 5, "cover": {}}}',  # bag not iterable
            '{"root": {"bag": ["A"], "cover": {"e": "x"}}}',  # weight not numeric
            '{"root": {"cover": {}}}',  # missing bag
            '{"kind": "XXX", "root": {"bag": [], "cover": {}}}',  # bad kind
        ],
    )
    def test_malformed_payloads_raise_parse_error(self, triangle, bad):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            decomposition_from_json(bad, triangle)

    def test_round_trip(self, triangle):
        decomposition = check_hd(triangle, 2)
        text = decomposition_to_json(decomposition)
        rebuilt = decomposition_from_json(text, triangle)
        rebuilt.validate()
        assert rebuilt.kind == decomposition.kind
        assert rebuilt.width == decomposition.width
        assert sorted(map(sorted, rebuilt.bags())) == sorted(
            map(sorted, decomposition.bags())
        )


# --------------------------------------------------------------------- workers


class TestWorkers:
    def test_hard_timeout_kills_uncooperative_checks(self, triangle):
        outcome = run_checked("spin", triangle, 2, timeout=0.2, grace=0.2)
        assert outcome.verdict == TIMEOUT
        assert outcome.seconds < 5.0

    def test_worker_crash_is_a_timeout(self, triangle):
        outcome = run_checked("crash", triangle, 2, timeout=5.0)
        assert outcome.verdict == TIMEOUT

    def test_unknown_method_raises_in_parent(self, triangle):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown check method"):
            run_checked("no-such-method", triangle, 2, timeout=5.0)
        with pytest.raises(ReproError, match="unknown check method"):
            DecompositionEngine(jobs=2).check(triangle, 2, method="no-such-method")

    def test_worker_exceptions_surface_in_parent(self, triangle):
        def boom(hypergraph, k, deadline):
            raise RuntimeError("worker bug")

        register_method("boom", boom)
        with pytest.raises(RuntimeError, match="worker bug"):
            run_checked("boom", triangle, 2, timeout=5.0)

    def test_run_checked_matches_in_process(self, triangle):
        outcome = run_checked("hd", triangle, 2, timeout=10.0)
        assert outcome.verdict == YES
        outcome.decomposition.validate()
        assert run_checked("hd", triangle, 1, timeout=10.0).verdict == NO

    def test_race_first_answer_wins(self, triangle):
        winner, results = race_checks(
            ["hd", "spin"], triangle, 2, timeout=2.0, grace=0.5
        )
        assert winner == "hd"
        assert results["hd"].verdict == YES
        assert not results["hd"].cancelled
        assert results["spin"].verdict == TIMEOUT
        assert results["spin"].cancelled  # killed because the race was won

    def test_exhausted_race_is_not_cancelled(self, triangle):
        winner, results = race_checks(["spin"], triangle, 2, timeout=0.2, grace=0.2)
        assert winner is None
        assert results["spin"].verdict == TIMEOUT
        assert not results["spin"].cancelled  # ran its full budget

    def test_map_checks_preserves_order(self, triangle, path3):
        tasks = [
            ("hd", triangle, 1, 10.0),
            ("hd", triangle, 2, 10.0),
            ("hd", path3, 1, 10.0),
            ("spin", path3, 1, 0.2),
        ]
        outcomes = map_checks(tasks, jobs=3, grace=0.2)
        assert [o.verdict for o in outcomes] == [NO, YES, YES, TIMEOUT]


# ---------------------------------------------------------------------- engine


class TestEngine:
    def test_check_hits_cache_on_second_call(self, triangle):
        engine = DecompositionEngine(store=ResultStore())
        first = engine.check(triangle, 2)
        second = engine.check(triangle, 2)
        assert first.verdict == second.verdict == YES
        second.decomposition.validate()
        assert engine.stats.cache_hits == 1
        assert engine.stats.executed == 1

    def test_renamed_instance_shares_results(self, triangle):
        engine = DecompositionEngine(store=ResultStore())
        engine.check(triangle, 2)
        copy = Hypergraph(triangle.edges, name="copy")
        engine.check(copy, 2)
        assert engine.stats.cache_hits == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exact_width_matches_in_process_driver(self, jobs):
        engine = DecompositionEngine(store=ResultStore(), jobs=jobs)
        for seed in range(6):
            h = random_hypergraph(seed)
            expected = exact_width(check_hd, h, 4)
            got = engine.exact_width(h, 4, timeout=30.0 if jobs > 1 else None)
            assert (got.lower, got.upper, got.exact) == (
                expected.lower,
                expected.upper,
                expected.exact,
            ), h.name

    def test_parallel_portfolio_verdict_matches_sequential(self, triangle, cycle6):
        sequential = DecompositionEngine()
        parallel = DecompositionEngine(jobs=3)
        for h, k in [(triangle, 1), (triangle, 2), (cycle6, 1), (cycle6, 2)]:
            seq_best, _ = sequential.portfolio(h, k, timeout=30.0)
            par_best, per = parallel.portfolio(h, k, timeout=30.0)
            assert par_best.verdict == seq_best.verdict, (h.name, k)
            assert set(per) == {"GlobalBIP", "LocalBIP", "BalSep"}

    def test_portfolio_cache_preserves_per_algorithm_verdicts(self, triangle):
        engine = DecompositionEngine(store=ResultStore())
        best1, per1 = engine.portfolio(triangle, 2)
        best2, per2 = engine.portfolio(triangle, 2)
        assert best2.verdict == best1.verdict == YES
        assert {n: o.verdict for n, o in per2.items()} == {
            n: o.verdict for n, o in per1.items()
        }
        assert engine.stats.cache_hits == 1

    def test_driver_portfolio_routes_through_engine(self, triangle):
        engine = DecompositionEngine(store=ResultStore())
        best, per = ghd_portfolio(triangle, 2, engine=engine)
        assert best.verdict == YES
        assert engine.stats.requests == 1


class TestBatch:
    def _specs(self, timeout=None):
        graphs = [random_hypergraph(seed) for seed in range(4)]
        specs = [JobSpec.check(h, 2, timeout=timeout) for h in graphs]
        specs.append(JobSpec.width(graphs[0], 3, timeout=timeout))
        specs.append(JobSpec.portfolio(graphs[1], 2, timeout=timeout))
        return specs

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_second_run_is_fully_cached(self, jobs):
        specs = self._specs(timeout=30.0 if jobs > 1 else None)
        engine = DecompositionEngine(store=ResultStore(), jobs=jobs)
        first = engine.run_batch(specs)
        assert first.total == len(specs)
        assert first.executed == len(specs)
        second = engine.run_batch(specs)
        assert second.cache_hits == second.total == len(specs)
        assert second.executed == 0
        assert second.all_cached
        for a, b in zip(first.results, second.results):
            assert a.verdict == b.verdict
            assert (a.lower, a.upper, a.winner) == (b.lower, b.upper, b.winner)

    def test_batch_stats_count_each_request_exactly_once(self, triangle):
        specs = [JobSpec.check(triangle, k) for k in (1, 2, 3)]
        engine = DecompositionEngine(store=ResultStore())
        engine.run_batch(specs)
        assert (engine.stats.requests, engine.stats.cache_hits) == (3, 0)
        assert (engine.store.stats.hits, engine.store.stats.misses) == (0, 3)
        engine.run_batch(specs)
        assert (engine.stats.requests, engine.stats.cache_hits) == (6, 3)
        assert engine.stats.hit_rate == 0.5
        # the store's lifetime counters agree: replay peeks are not
        # double-counted against the later execution lookups
        assert (engine.store.stats.hits, engine.store.stats.misses) == (3, 3)

    def test_parallel_batch_verdicts_match_sequential(self):
        specs = self._specs(timeout=30.0)
        sequential = DecompositionEngine().run_batch(specs)
        parallel = DecompositionEngine(jobs=3).run_batch(specs)
        assert [r.verdict for r in sequential.results] == [
            r.verdict for r in parallel.results
        ]

    def test_resume_from_journal(self, tmp_path):
        specs = self._specs()
        journal = tmp_path / "sweep.jsonl"
        engine = DecompositionEngine()
        engine.run_batch(specs, journal=journal)
        resumed = DecompositionEngine().run_batch(specs, journal=journal)
        assert resumed.resumed == len(specs)
        assert resumed.executed == 0

    def test_resume_from_truncated_journal(self, tmp_path):
        specs = self._specs()
        journal = tmp_path / "sweep.jsonl"
        DecompositionEngine().run_batch(specs, journal=journal)
        text = journal.read_text(encoding="utf-8")
        journal.write_text(text[:-20], encoding="utf-8")  # kill mid-final-line
        report = DecompositionEngine().run_batch(specs, journal=journal)
        assert report.resumed == len(specs) - 1
        assert report.executed == 1
        # the journal is compacted + completed: a third run resumes everything
        final = DecompositionEngine().run_batch(specs, journal=journal)
        assert final.resumed == len(specs)

    def test_journal_lines_are_valid_json(self, tmp_path, triangle):
        journal = tmp_path / "sweep.jsonl"
        DecompositionEngine().run_batch([JobSpec.check(triangle, 2)], journal=journal)
        lines = journal.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["result"]["verdict"] == YES
        assert Journal(journal).load() != {}


# ------------------------------------------------------- rewired entry points


class TestRewiredLayers:
    def test_parallel_benchmark_build_is_deterministic(self):
        sequential = build_default_benchmark(scale=0.03, seed=7)
        parallel = build_default_benchmark(
            scale=0.03, seed=7, engine=DecompositionEngine(jobs=4)
        )
        assert len(sequential) == len(parallel)
        for a, b in zip(sequential, parallel):
            assert a.name == b.name
            assert a.hypergraph == b.hypergraph
            assert a.benchmark_class == b.benchmark_class

    def test_ghw_analysis_skips_race_cancelled_outcomes(self, triangle):
        from repro.analysis.ghw_analysis import run_ghw_analysis
        from repro.benchmark.classes import BenchmarkClass
        from repro.benchmark.repository import HyperBenchRepository

        class StubEngine:
            def portfolio(self, hypergraph, k, timeout=None):
                per = {
                    "GlobalBIP": CheckOutcome(YES, 0.1),
                    "LocalBIP": CheckOutcome(TIMEOUT, 0.1, cancelled=True),
                    "BalSep": CheckOutcome(NO, 0.05),
                }
                return per["GlobalBIP"], per

        repository = HyperBenchRepository()
        entry = repository.add(triangle, BenchmarkClass.CQ_APPLICATION)
        entry.hw_high = 3
        analysis = run_ghw_analysis(repository, ks=(3,), engine=StubEngine())
        # genuine outcomes are recorded, the cancelled loser is not
        assert analysis.algorithm_cell("GlobalBIP", 3).yes == 1
        assert analysis.algorithm_cell("BalSep", 3).no == 1
        cell = analysis.algorithm_cell("LocalBIP", 3)
        assert (cell.yes, cell.no, cell.timeout) == (0, 0, 0)

    def test_hw_analysis_with_engine_matches_plain(self):
        from repro.analysis.hw_analysis import run_hw_analysis

        plain_repo = build_default_benchmark(scale=0.03, seed=3)
        engine_repo = build_default_benchmark(scale=0.03, seed=3)
        plain = run_hw_analysis(plain_repo, max_k=3, timeout=None)
        engine = DecompositionEngine(store=ResultStore())
        backed = run_hw_analysis(engine_repo, max_k=3, timeout=None, engine=engine)
        assert {
            (str(cls), k): (c.yes, c.no) for (cls, k), c in plain.cells.items()
        } == {(str(cls), k): (c.yes, c.no) for (cls, k), c in backed.cells.items()}
        for a, b in zip(plain_repo, engine_repo):
            assert (a.hw_low, a.hw_high) == (b.hw_low, b.hw_high)
        # a second sweep over the same repository is served from cache
        before = engine.stats.executed
        run_hw_analysis(engine_repo, max_k=3, timeout=None, engine=engine)
        assert engine.stats.executed == before


class TestCliEngineFlags:
    @pytest.fixture
    def triangle_file(self, tmp_path):
        path = tmp_path / "tri.hg"
        path.write_text("r(x,y),\ns(y,z),\nt(z,x).\n", encoding="utf-8")
        return path

    def test_width_with_cache_and_jobs(self, triangle_file, tmp_path, capsys):
        cache = tmp_path / "cache.db"
        args = ["width", str(triangle_file), "--cache", str(cache), "--jobs", "2",
                "--timeout", "30"]
        assert main(args) == 0
        assert "hw(tri) = 2" in capsys.readouterr().out
        assert main(args) == 0  # second run: served from the store
        assert "hw(tri) = 2" in capsys.readouterr().out
        # the bounds index lets the warm run answer with a single lookup
        # (binary search inside the stored [lo, hi] interval)
        with ResultStore(cache) as store:
            assert store.stats.hits >= 1

    def test_decompose_with_cache_replays_decomposition(self, triangle_file, tmp_path, capsys):
        cache = tmp_path / "cache.db"
        args = ["decompose", str(triangle_file), "-k", "2", "--cache", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "width 2" in first and "width 2" in second

    def test_cache_stats_and_clear(self, triangle_file, tmp_path, capsys):
        cache = tmp_path / "cache.db"
        main(["width", str(triangle_file), "--cache", str(cache)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "hd" in out
        assert main(["cache", "clear", "--cache", str(cache)]) == 0
        assert "cleared" in capsys.readouterr().out
        with ResultStore(cache) as store:
            assert len(store) == 0

    def test_cache_stats_missing_file(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache", str(tmp_path / "nope.db")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_clear_missing_file_does_not_create_one(self, tmp_path, capsys):
        target = tmp_path / "typo.db"
        assert main(["cache", "clear", "--cache", str(target)]) == 2
        assert "error:" in capsys.readouterr().err
        assert not target.exists()

    def test_cache_stats_rejects_non_sqlite_file(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.db"
        garbage.write_text("not a database", encoding="utf-8")
        assert main(["cache", "stats", "--cache", str(garbage)]) == 2
        assert "not a result store" in capsys.readouterr().err

    def test_benchmark_with_jobs(self, tmp_path, capsys):
        out_dir = tmp_path / "bench"
        assert main(["benchmark", str(out_dir), "--scale", "0.03", "--jobs", "4"]) == 0
        assert (out_dir / "hyperbench.csv").exists()
        assert len(list((out_dir / "hypergraphs").glob("*.hg"))) == 10
