"""Tests for the ``repro.obs`` telemetry layer.

Covers the span model (nesting, error status, detached worker spans,
grafting, ring bounds, the JSONL journal), the metrics registry (counter /
gauge / histogram semantics, bucket edges, Prometheus text exposition),
trace-context propagation across ``run_batch`` worker processes with the
kernel-counter deltas they ship back, the HTTP surfaces (``/metrics``,
``/debug/traces``, the extended ``/healthz``), and the ``repro trace`` /
``repro metrics`` CLI commands.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.core.hypergraph import Hypergraph
from repro.engine import DecompositionEngine, JobSpec, ResultStore
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import TRACER, NULL_SPAN, Tracer, load_journal, make_span
from repro.perf import counters
from repro.service import ServiceClient, ServiceThread
from repro.service.client import ServiceError
from tests.conftest import clique_hypergraph


def _triangle() -> Hypergraph:
    return Hypergraph(
        {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="triangle"
    )


# ------------------------------------------------------------- span model


class TestSpans:
    def test_nested_spans_share_a_trace(self):
        tracer = Tracer(capacity=16)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        names = [r["name"] for r in tracer.spans()]
        assert names == ["inner", "outer"]  # children finish first

    def test_sibling_traces_are_distinct(self):
        tracer = Tracer(capacity=16)
        with tracer.span("first") as a:
            pass
        with tracer.span("second") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_exception_marks_error_status_and_reraises(self):
        tracer = Tracer(capacity=16)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record["status"] == "error"
        assert "ValueError" in record["attrs"]["error"]

    def test_attach_makes_remote_context_ambient(self):
        tracer = Tracer(capacity=16)
        with tracer.span("root") as root:
            remote = root.context
        with tracer.attach(remote):
            with tracer.span("adopted") as child:
                assert child.trace_id == remote.trace_id
                assert child.parent_id == remote.span_id

    def test_make_span_is_detached_and_graftable(self):
        tracer = Tracer(capacity=16)
        worker = make_span("worker.exec", parent=("t" * 16, "s" * 16), pid=1)
        worker.end(verdict="yes")
        assert tracer.spans() == []  # detached: nothing recorded yet
        tracer.graft([worker.to_dict(), {"not": "a span"}, None])
        (record,) = tracer.spans()
        assert record["trace_id"] == "t" * 16
        assert record["parent_id"] == "s" * 16
        assert record["attrs"]["verdict"] == "yes"

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.start_span(f"s{i}").end()
        assert [r["name"] for r in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_end_is_idempotent(self):
        tracer = Tracer(capacity=4)
        span = tracer.start_span("once")
        first = span.end().duration
        assert span.end().duration == first
        assert len(tracer.spans()) == 1

    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(capacity=4, enabled=False)
        with tracer.span("ignored") as span:
            assert span is NULL_SPAN
            span.set(anything="goes")
        assert tracer.spans() == []
        assert tracer.current_context() is None

    def test_traces_group_by_trace_id_most_recent_first(self):
        tracer = Tracer(capacity=16)
        with tracer.span("alpha"):
            with tracer.span("alpha.child"):
                pass
        with tracer.span("beta"):
            pass
        newest, oldest = tracer.traces()
        assert [s["name"] for s in newest["spans"]] == ["beta"]
        assert [s["name"] for s in oldest["spans"]] == ["alpha", "alpha.child"]
        assert len(tracer.traces(limit=1)) == 1

    def test_journal_roundtrip_drops_corrupt_lines(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        tracer = Tracer(capacity=4, journal=journal)
        with tracer.span("kept", k=2):
            pass
        tracer.set_journal(None)
        with journal.open("a", encoding="utf-8") as fh:
            fh.write('{"truncated": \n')  # a crash mid-write
        records = load_journal(journal)
        assert [r["name"] for r in records] == ["kept"]
        assert records[0]["attrs"] == {"k": 2}
        assert load_journal(tmp_path / "missing.jsonl") == []


# ---------------------------------------------------------------- metrics


class TestMetrics:
    def test_counter_requires_total_suffix(self):
        with pytest.raises(ValueError, match="_total"):
            Counter("repro_bad_name")

    def test_counter_rejects_negative_increments(self):
        counter = Counter("repro_t_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_counter_labels_key_independently(self):
        counter = Counter("repro_req_total")
        counter.inc(kind="check")
        counter.inc(2, kind="width")
        counter.inc(kind="check")
        assert counter.value(kind="check") == 2
        assert counter.value(kind="width") == 2
        assert counter.value(kind="portfolio") == 0

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("repro_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_histogram_bucket_edges_are_le_inclusive(self):
        histogram = Histogram("repro_lat_seconds", buckets=(0.1, 0.2, 0.4))
        histogram.observe(0.1)    # exactly on an edge: counts into it
        histogram.observe(0.15)
        histogram.observe(0.4)
        histogram.observe(99.0)   # overflow: only the +Inf bucket
        assert histogram.bucket_counts() == {0.1: 1, 0.2: 2, 0.4: 3, math.inf: 4}
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(99.65)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("repro_bad_seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_bad_seconds", buckets=(0.0, 1.0))

    def test_default_buckets_are_log_spaced_from_1ms(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        ratios = {
            round(b / a, 6)
            for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        }
        assert ratios == {2.0}

    def test_registry_get_or_create_is_idempotent_and_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_once_total", "help text")
        assert registry.counter("repro_once_total") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_once_total")

    def test_disabled_registry_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_off_total")
        histogram = registry.histogram("repro_off_seconds", buckets=(1.0,))
        counter.inc(5)
        histogram.observe(0.5)
        assert counter.value() == 0
        assert histogram.count == 0

    def test_render_is_prometheus_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_req_total", "requests").inc(3, kind="check")
        registry.gauge("repro_depth", "queue depth").set(2)
        registry.histogram("repro_lat_seconds", buckets=(0.5,)).observe(0.25)
        text = registry.render()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# HELP repro_req_total requests" in lines
        assert "# TYPE repro_req_total counter" in lines
        assert 'repro_req_total{kind="check"} 3' in lines
        assert "# TYPE repro_depth gauge" in lines
        assert "repro_depth 2" in lines
        assert "# TYPE repro_lat_seconds histogram" in lines
        assert 'repro_lat_seconds_bucket{le="0.5"} 1' in lines
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_lat_seconds_sum 0.25" in lines
        assert "repro_lat_seconds_count 1" in lines

    def test_untouched_counter_renders_a_zero_sample(self):
        registry = MetricsRegistry()
        registry.counter("repro_idle_total")
        assert "repro_idle_total 0" in registry.render().splitlines()

    def test_render_extra_metrics_do_not_join_the_registry(self):
        registry = MetricsRegistry()
        live = Gauge("repro_live_entries")
        live.set(7)
        text = registry.render(extra=[live])
        assert "repro_live_entries 7" in text.splitlines()
        assert registry.metrics() == []

    def test_label_values_are_escaped(self):
        counter = Counter("repro_esc_total")
        counter.inc(path='a"b\\c')
        (sample,) = counter.samples()
        rendered = counter.render()
        assert r'path="a\"b\\c"' in rendered

    def test_snapshot_matches_samples(self):
        registry = MetricsRegistry()
        registry.counter("repro_snap_total").inc(4, kind="check")
        snap = registry.snapshot()["repro_snap_total"]
        assert snap["type"] == "counter"
        assert snap["samples"] == [
            {"labels": {"kind": "check"}, "value": 4.0}
        ]


# --------------------------------------------- cross-process propagation


class TestWorkerPropagation:
    def test_trace_context_crosses_run_batch_workers(self):
        """A span context set on the JobSpec parents the worker-side
        ``worker.exec`` record grafted back into this process's tracer."""
        TRACER.clear()
        engine = DecompositionEngine(store=ResultStore(), jobs=2)
        try:
            with TRACER.span("test.root") as root:
                spec = JobSpec.check(
                    clique_hypergraph(6), 2, method="hd", timeout=30.0,
                    trace=root.context,
                )
                report = engine.run_batch([spec])
        finally:
            engine.close()
        (result,) = report.results
        assert result.verdict == "no"  # hw(K6) = 3

        records = [r for r in TRACER.spans() if r["trace_id"] == root.trace_id]
        by_name = {r["name"]: r for r in records}
        assert {"engine.wave", "worker.exec", "test.root"} <= set(by_name)
        worker = by_name["worker.exec"]
        assert worker["attrs"]["mode"] == "worker"
        assert worker["attrs"]["pid"] != by_name["test.root"].get("pid")
        # the worker record parents into this trace, not a fresh one
        assert worker["parent_id"] in {r["span_id"] for r in records}

    def test_worker_kernel_counters_ship_back_and_merge(self):
        counters.reset()
        engine = DecompositionEngine(store=ResultStore(), jobs=2)
        try:
            spec = JobSpec.check(clique_hypergraph(6), 2, method="hd", timeout=30.0)
            report = engine.run_batch([spec])
        finally:
            engine.close()
        (result,) = report.results
        assert result.counters, "worker kernel-counter delta was lost"
        assert result.counters.get("components_calls", 0) > 0
        # satellite fix: the delta merged into the parent-process singleton
        merged = counters.snapshot()
        for name, value in result.counters.items():
            assert merged[name] >= value

    def test_inproc_execution_records_spans_and_counters(self):
        TRACER.clear()
        engine = DecompositionEngine(store=ResultStore(), jobs=1)
        try:
            with TRACER.span("test.inproc") as root:
                outcome = engine.check(
                    clique_hypergraph(6), 2, method="hd", timeout=30.0,
                    trace=root.context,
                )
        finally:
            engine.close()
        assert outcome.verdict == "no"
        assert outcome.counters and outcome.counters["components_calls"] > 0
        records = [r for r in TRACER.spans() if r["trace_id"] == root.trace_id]
        by_name = {r["name"]: r for r in records}
        assert {"engine.check", "worker.exec"} <= set(by_name)
        assert by_name["worker.exec"]["attrs"]["mode"] == "inproc"
        assert by_name["worker.exec"]["attrs"]["kernel_components_calls"] > 0


# ----------------------------------------------------------- HTTP surfaces


@pytest.fixture(scope="class")
def service():
    engine = DecompositionEngine(store=ResultStore(), jobs=1)
    with ServiceThread(engine) as thread:
        with ServiceClient(port=thread.port) as client:
            yield client


class TestServiceSurfaces:
    def test_metrics_exposition_after_a_request(self, service):
        TRACER.clear()
        assert service.check(_triangle(), 2)["verdict"] == "yes"
        text = service.metrics()
        assert text.endswith("\n")
        for family in (
            "repro_engine_requests_total",
            "repro_service_requests_total",
            "repro_store_entries",
            "repro_service_in_flight",
            "repro_service_uptime_seconds",
            "repro_http_requests_total",
            "repro_http_request_seconds_bucket",
        ):
            assert family in text, f"missing {family}"
        assert '# TYPE repro_http_request_seconds histogram' in text
        assert 'repro_service_requests_total{kind="check"}' in text

    def test_debug_traces_returns_the_request_span_tree(self, service):
        TRACER.clear()
        # a fresh instance: a store answer would skip the wave entirely
        service.check(clique_hypergraph(5), 2)["verdict"]
        payload = service.traces(limit=5)
        spans = {
            s["name"] for t in payload["traces"] for s in t["spans"]
        }
        assert "http.request" in spans
        assert "scheduler.wait" in spans or "engine.wave" in spans

    def test_debug_traces_bad_limit_is_a_400(self, service):
        with pytest.raises(ServiceError) as err:
            service._request("GET", "/debug/traces?limit=nope")
        assert err.value.status == 400

    def test_healthz_carries_uptime_version_pid_cache(self, service):
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        from repro import __version__

        assert health["version"] == __version__
        assert isinstance(health["pid"], int)
        assert "cache" in health
        assert health["in_flight"] >= 0


# -------------------------------------------------------------------- CLI


class TestCli:
    def _journal(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        tracer = Tracer(capacity=16, journal=journal)
        with tracer.span("http.request", path="/check"):
            with tracer.span("engine.wave", jobs=1):
                pass
        tracer.set_journal(None)
        return journal

    def test_trace_show_from_journal(self, tmp_path, capsys):
        journal = self._journal(tmp_path)
        assert main(["trace", "show", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "http.request" in out
        assert "engine.wave" in out
        assert "trace " in out

    def test_trace_summary_aggregates_by_span_name(self, tmp_path, capsys):
        journal = self._journal(tmp_path)
        assert main(["trace", "summary", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "count" in out
        assert "http.request" in out

    def test_trace_without_a_source_fails(self, capsys):
        assert main(["trace", "show"]) == 2
        assert "pass --journal" in capsys.readouterr().err

    def test_trace_show_empty_journal(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["trace", "show", "--journal", str(empty)]) == 0
        assert "no spans recorded" in capsys.readouterr().out
