"""Tests for deadlines and table rendering."""

import time

import pytest

from repro.errors import DeadlineExceeded
from repro.utils.deadline import Deadline
from repro.utils.tables import render_table


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline.unlimited()
        assert not d.expired
        assert d.remaining is None
        d.check()  # no raise

    def test_zero_budget_expires_immediately(self):
        d = Deadline(0.0)
        assert d.expired
        with pytest.raises(DeadlineExceeded):
            d.check()

    def test_positive_budget(self):
        d = Deadline(60.0)
        assert not d.expired
        assert 0 < d.remaining <= 60.0

    def test_expiry_after_sleep(self):
        d = Deadline(0.01)
        time.sleep(0.02)
        assert d.expired


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| a " in lines[1]
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_right_aligned(self):
        text = render_table(["n"], [[1], [100]])
        row_one = [l for l in text.splitlines() if "| " in l and "1 |" in l][0]
        assert row_one.endswith("  1 |")

    def test_mixed_column_left_aligned(self):
        text = render_table(["n"], [["a"], [100]])
        assert "| a   |" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
