"""White-box tests for algorithm internals: enumeration, tree surgery,
failure injection via deadlines."""

import itertools

import pytest

from repro.core.decomposition import DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.decomp.balsep import BalSep, _find_covering_node, _find_special_leaf, _reroot
from repro.decomp.detkdecomp import covering_combinations
from repro.decomp.driver import GHD_ALGORITHMS, check_hd
from repro.decomp.hybrid import check_ghd_hybrid
from repro.errors import DeadlineExceeded
from repro.utils.deadline import Deadline
from tests.conftest import clique_hypergraph, cycle_hypergraph


class TestCoveringCombinations:
    FAMILY = {
        "a": frozenset({"x", "y"}),
        "b": frozenset({"y", "z"}),
        "c": frozenset({"z", "w"}),
    }

    def _all(self, primary, secondary, conn, k, require_primary=True):
        return set(
            covering_combinations(
                self.FAMILY,
                primary,
                secondary,
                frozenset(conn),
                k,
                Deadline.unlimited(),
                require_primary=require_primary,
            )
        )

    def test_covers_connector(self):
        combos = self._all(["a", "b", "c"], [], {"x", "z"}, 2, require_primary=False)
        for combo in combos:
            union = frozenset().union(*(self.FAMILY[n] for n in combo))
            assert {"x", "z"} <= union

    def test_matches_brute_force(self):
        conn = frozenset({"y"})
        combos = self._all(["a", "b", "c"], [], conn, 2, require_primary=False)
        brute = set()
        for size in (1, 2):
            for combo in itertools.combinations(("a", "b", "c"), size):
                union = frozenset().union(*(self.FAMILY[n] for n in combo))
                if conn <= union:
                    brute.add(combo)
        assert {frozenset(c) for c in combos} == {frozenset(c) for c in brute}

    def test_require_primary(self):
        combos = self._all(["a"], ["b", "c"], set(), 2, require_primary=True)
        assert all("a" in combo for combo in combos)

    def test_empty_when_no_primary(self):
        assert self._all([], ["b"], set(), 2, require_primary=True) == set()

    def test_never_yields_empty_combo(self):
        combos = self._all(["a", "b"], [], set(), 2, require_primary=False)
        assert () not in combos

    def test_respects_k(self):
        combos = self._all(["a", "b", "c"], [], set(), 1, require_primary=False)
        assert all(len(c) == 1 for c in combos)


def _chain(*bags):
    """Build a chain of nodes (root first) with trivial covers."""
    nodes = [DecompositionNode(frozenset(bag), {f"e{i}": 1.0}) for i, bag in enumerate(bags)]
    for parent, child in zip(nodes, nodes[1:]):
        parent.children.append(child)
    return nodes


class TestTreeSurgery:
    def test_reroot_at_root_is_identity(self):
        root, _mid, _leaf = _chain({"a"}, {"b"}, {"c"})
        assert _reroot(root, root) is root

    def test_reroot_at_leaf_reverses_chain(self):
        root, mid, leaf = _chain({"a"}, {"b"}, {"c"})
        new_root = _reroot(root, leaf)
        assert new_root is leaf
        assert new_root.children == [mid]
        assert mid.children == [root]
        assert root.children == []

    def test_reroot_preserves_node_set(self):
        root, mid, leaf = _chain({"a"}, {"b"}, {"c"})
        side = DecompositionNode(frozenset({"d"}), {})
        mid.children.append(side)
        new_root = _reroot(root, side)
        collected = []
        stack = [new_root]
        while stack:
            node = stack.pop()
            collected.append(node)
            stack.extend(node.children)
        assert {id(n) for n in collected} == {id(root), id(mid), id(leaf), id(side)}

    def test_find_special_leaf(self):
        root, _mid, leaf = _chain({"a"}, {"b"}, {"c"})
        leaf.cover = {"__sp0": 1.0}
        assert _find_special_leaf(root, "__sp0") is leaf
        assert _find_special_leaf(root, "__sp1") is None

    def test_find_covering_node(self):
        root, mid, _leaf = _chain({"a", "q"}, {"b", "q"}, {"c"})
        assert _find_covering_node(root, frozenset({"q", "b"})) is mid
        assert _find_covering_node(root, frozenset({"zz"})) is None


class TestDeadlineInjection:
    """Failure injection: expiring deadlines abort cleanly, reruns succeed."""

    @pytest.mark.parametrize("name", sorted(GHD_ALGORITHMS))
    def test_tiny_deadline_raises_cleanly(self, name, k5):
        check = GHD_ALGORITHMS[name]
        with pytest.raises(DeadlineExceeded):
            check(k5, 2, Deadline(0.0))
        # A fresh run without deadline still produces the right answer.
        assert check(k5, 2, Deadline.unlimited()) is None

    def test_hybrid_tiny_deadline(self, k5):
        with pytest.raises(DeadlineExceeded):
            check_ghd_hybrid(k5, 2, Deadline(0.0))

    def test_detkdecomp_mid_search_deadline(self):
        # A deadline that expires after a few polls: the search must raise
        # rather than return a wrong answer.
        h = clique_hypergraph(6)
        with pytest.raises(DeadlineExceeded):
            check_hd(h, 2, Deadline(1e-9))

    def test_balsep_failure_memo_not_poisoned_by_deadline(self, cycle6):
        solver = BalSep(cycle6, 2, deadline=Deadline(0.0))
        with pytest.raises(DeadlineExceeded):
            solver.decompose()
        # A fresh solver over the same hypergraph succeeds.
        assert BalSep(cycle6, 2).decompose() is not None


class TestBalSepInternals:
    def test_special_names_canonical_per_vertex_set(self, cycle6):
        solver = BalSep(cycle6, 2)
        name1 = solver._special_name(frozenset({"x0", "x1"}))
        name2 = solver._special_name(frozenset({"x1", "x0"}))
        name3 = solver._special_name(frozenset({"x2"}))
        assert name1 == name2 != name3

    def test_final_ghd_covers_use_real_edges_only(self, cycle6):
        ghd = BalSep(cycle6, 2).decompose()
        for node in ghd.nodes():
            for name in node.cover:
                assert name in cycle6.edges

    def test_subedge_pool_generated_once(self, cycle6):
        solver = BalSep(cycle6, 2)
        first = solver._subedges()
        second = solver._subedges()
        assert first is second
