"""Tests for the benchmark generators (determinism + class characteristics)."""

import pytest

from repro.benchmark.generators import (
    circuit_hypergraph,
    generate_application_cqs,
    generate_application_csps,
    generate_other_csps,
    generate_random_cqs,
    generate_random_csps,
    pebbling_grid,
    random_query_hypergraph,
)
from repro.core.properties import degree, intersection_size

GENERATORS = [
    generate_application_cqs,
    generate_random_cqs,
    generate_application_csps,
    generate_random_csps,
    generate_other_csps,
]


@pytest.mark.parametrize("generator", GENERATORS)
class TestCommonContract:
    def test_count_respected(self, generator):
        assert len(generator(7, seed=1)) == 7

    def test_deterministic(self, generator):
        first = generator(5, seed=3)
        second = generator(5, seed=3)
        assert [h.edges for h in first] == [h.edges for h in second]

    def test_different_seeds_differ(self, generator):
        a = generator(6, seed=1)
        b = generator(6, seed=2)
        assert [h.edges for h in a] != [h.edges for h in b]

    def test_unique_names(self, generator):
        names = [h.name for h in generator(9, seed=0)]
        assert len(names) == len(set(names))

    def test_nonempty(self, generator):
        assert all(h.num_edges >= 1 for h in generator(6, seed=4))


class TestClassCharacteristics:
    def test_application_cqs_are_small(self):
        for h in generate_application_cqs(30, seed=1):
            assert h.num_edges <= 30
            assert h.arity <= 6

    def test_application_cqs_have_low_intersection(self):
        values = [intersection_size(h) for h in generate_application_cqs(30, seed=1)]
        assert max(values) <= 2

    def test_random_csps_have_high_degree(self):
        degrees = [degree(h) for h in generate_random_csps(15, seed=1)]
        assert sum(1 for d in degrees if d > 5) >= len(degrees) // 2

    def test_application_csps_have_low_intersection(self):
        values = [intersection_size(h) for h in generate_application_csps(20, seed=1)]
        assert max(values) <= 2

    def test_random_cq_ranges(self):
        for h in generate_random_cqs(10, seed=2, vertex_range=(5, 8), edge_range=(3, 5)):
            assert h.num_edges <= 5
            assert h.num_vertices <= 8


class TestSpecificGenerators:
    def test_pebbling_grid_structure(self):
        grid = pebbling_grid(3, 3)
        # every non-bottom-right cell contributes an edge
        assert grid.num_edges == 8
        assert grid.edge("g0_0") == {"p0_0", "p0_1", "p1_0"}

    def test_pebbling_grid_is_cyclic(self):
        from repro.decomp.detkdecomp import check_hd

        assert check_hd(pebbling_grid(3, 3), 1) is None

    def test_circuit_layering(self):
        circuit = circuit_hypergraph(4, 10, seed=5)
        assert circuit.num_edges == 10
        # every gate's output is a fresh signal
        for i in range(10):
            assert f"n{i}" in circuit.edge(f"gate{i}")

    def test_random_query_min_arity_validation(self):
        import random

        with pytest.raises(ValueError):
            random_query_hypergraph(2, 3, 5, random.Random(0), min_arity=3)
