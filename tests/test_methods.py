"""Tests for the MethodSpec registry and its backward-compatible views."""

from __future__ import annotations

import pytest

from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import GHD_ALGORITHMS
from repro.engine import CHECK_METHODS, MONOTONE_METHODS, MethodSpec, register_method
from repro.engine import methods
from repro.errors import ReproError


class TestRegistryDefaults:
    def test_default_methods_present(self):
        # other test modules may have registered ad-hoc methods in the
        # shared registry, so assert containment, not exact equality
        listed = methods.method_names()
        assert listed == sorted(listed)
        names = set(listed)
        assert {"hd", "globalbip", "localbip", "balsep", "hybrid",
                "fracimprove"} <= names
        assert "portfolio" not in names  # virtual keys are not dispatchable

    def test_portfolio_methods_in_table_order(self):
        assert methods.portfolio_methods() == {
            "GlobalBIP": "globalbip",
            "LocalBIP": "localbip",
            "BalSep": "balsep",
        }

    def test_ghd_algorithms_derive_from_the_registry(self):
        assert list(GHD_ALGORITHMS) == ["GlobalBIP", "LocalBIP", "BalSep"]
        assert GHD_ALGORITHMS["BalSep"] is check_ghd_balsep

    def test_decision_kinds(self):
        assert methods.decision_kind_of("hd") == methods.HW
        for name in ("globalbip", "localbip", "balsep", "hybrid", "portfolio"):
            assert methods.decision_kind_of(name) == methods.GHW
        # fracimprove reports fhw but decides hw <= k (it improves an HD)
        spec = methods.get("fracimprove")
        assert spec.kind == methods.FHW
        assert spec.decision_kind == methods.HW
        assert spec.witness_required

    def test_portfolio_is_virtual(self):
        spec = methods.get("portfolio")
        assert not spec.dispatchable
        with pytest.raises(ReproError):
            methods.resolve("portfolio")

    def test_unknown_method_raises(self):
        with pytest.raises(ReproError):
            methods.get("nope")
        assert methods.get_optional("nope") is None
        assert methods.decision_kind_of("nope") is None

    def test_resolve_passes_callables_through(self):
        assert methods.resolve(check_hd) is check_hd
        assert methods.resolve("hd") is check_hd


class TestSpecValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ReproError):
            MethodSpec("x", "X", "treewidth", check_hd)
        with pytest.raises(ReproError):
            MethodSpec("x", "X", None, check_hd, decision_kind="bogus")

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            MethodSpec("", "X", None, check_hd)


class TestCompatibilityViews:
    def test_check_methods_view_excludes_virtual_keys(self):
        assert "portfolio" not in CHECK_METHODS
        assert CHECK_METHODS["hd"] is check_hd
        assert len(CHECK_METHODS) == len(list(CHECK_METHODS))
        with pytest.raises(KeyError):
            CHECK_METHODS["portfolio"]

    def test_monotone_view_follows_the_registry(self):
        assert "hd" in MONOTONE_METHODS
        assert "portfolio" in MONOTONE_METHODS
        assert "definitely-not-registered" not in MONOTONE_METHODS
        assert set(MONOTONE_METHODS) == set(methods.monotone_names())

    def test_register_method_is_custom_and_non_monotone(self):
        register_method("tmp-compat", check_hd)
        try:
            assert "tmp-compat" in CHECK_METHODS
            assert "tmp-compat" not in MONOTONE_METHODS
            spec = methods.get("tmp-compat")
            assert spec.kind is None and spec.decision_kind is None
        finally:
            methods._REGISTRY.pop("tmp-compat", None)

    def test_register_method_on_a_builtin_keeps_its_metadata(self):
        original = methods.get("balsep")

        def instrumented(h, k, deadline=None):  # pragma: no cover - stub
            return original.check(h, k, deadline)

        register_method("balsep", instrumented)
        try:
            spec = methods.get("balsep")
            # only the dispatch target changed: BalSep stays monotone,
            # portfolio-eligible and ghw-kinded (the historical semantics of
            # replacing CHECK_METHODS["balsep"])
            assert spec.check is instrumented
            assert spec.monotone and spec.portfolio
            assert spec.decision_kind == methods.GHW
            assert "balsep" in MONOTONE_METHODS
            assert methods.portfolio_methods()["BalSep"] == "balsep"
        finally:
            methods.register(original)

    def test_registering_a_monotone_spec_feeds_the_store_view(self):
        methods.register(
            MethodSpec(
                "tmp-mono", "TmpMono", methods.GHW, check_ghd_balsep,
                monotone=True, decision_kind=methods.GHW, witness_kind="GHD",
            )
        )
        try:
            assert "tmp-mono" in MONOTONE_METHODS
        finally:
            methods._REGISTRY.pop("tmp-mono", None)
