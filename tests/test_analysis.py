"""Tests for the analysis drivers (Figure 4, Tables 3-6, Figure 5)."""

import pytest

from repro.analysis.correlation import METRICS, correlation_matrix
from repro.analysis.fractional_analysis import bucket, run_fractional_analysis
from repro.analysis.ghw_analysis import run_ghw_analysis
from repro.analysis.hw_analysis import run_hw_analysis
from repro.benchmark.classes import BenchmarkClass
from repro.benchmark.repository import HyperBenchRepository
from repro.core.hypergraph import Hypergraph
from tests.conftest import clique_hypergraph, cycle_hypergraph


@pytest.fixture
def small_repo():
    repo = HyperBenchRepository("small")
    repo.add(
        Hypergraph({"a": ["1", "2"], "b": ["2", "3"]}, name="acyclic"),
        BenchmarkClass.CQ_APPLICATION,
    )
    repo.add(cycle_hypergraph(4), BenchmarkClass.CQ_APPLICATION)
    repo.add(clique_hypergraph(5), BenchmarkClass.CSP_RANDOM)  # hw = 3
    repo.add(clique_hypergraph(6), BenchmarkClass.CSP_RANDOM)  # hw = 3
    return repo


class TestHwAnalysis:
    def test_bounds_updated(self, small_repo):
        run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        assert small_repo.get("acyclic").hw_exact == 1
        assert small_repo.get("cycle4").hw_exact == 2
        assert small_repo.get("K5").hw_exact == 3
        assert small_repo.get("K6").hw_exact == 3

    def test_cells_track_counts(self, small_repo):
        analysis = run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        cq1 = analysis.cell(BenchmarkClass.CQ_APPLICATION, 1)
        assert cq1.yes == 1 and cq1.no == 1
        csp1 = analysis.cell(BenchmarkClass.CSP_RANDOM, 1)
        assert csp1.no == 2

    def test_hds_stored_for_fractional_study(self, small_repo):
        run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        assert small_repo.get("cycle4").extra["hd"] is not None

    def test_no_unresolved_with_generous_budget(self, small_repo):
        analysis = run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        assert analysis.unresolved == []

    def test_timeouts_recorded(self, small_repo):
        analysis = run_hw_analysis(small_repo, max_k=2, timeout=0.0)
        total_timeouts = sum(c.timeout for c in analysis.cells.values())
        assert total_timeouts > 0


class TestGhwAnalysis:
    def test_k5_ghw_equals_hw(self, small_repo):
        run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        analysis = run_ghw_analysis(small_repo, ks=(3,), timeout=10.0)
        assert analysis.totals[3] == 2
        entry = small_repo.get("K5")
        # ghw(K5) = 3 = hw: Check(GHD, 2) answers no, closing the gap.
        assert entry.ghw_exact == 3
        cell = analysis.portfolio_cell(3)
        assert cell.no == 2

    def test_algorithm_cells_populated(self, small_repo):
        run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        analysis = run_ghw_analysis(small_repo, ks=(3,), timeout=10.0)
        for name in ("GlobalBIP", "LocalBIP", "BalSep"):
            cell = analysis.algorithm_cell(name, 3)
            assert cell.yes + cell.no + cell.timeout == 2


class TestFractionalAnalysis:
    def test_buckets(self):
        assert bucket(1.2) == ">=1"
        assert bucket(0.7) == "[0.5,1)"
        assert bucket(0.3) == "[0.1,0.5)"
        assert bucket(0.01) == "no"

    def test_triangle_improves(self):
        repo = HyperBenchRepository()
        repo.add(
            Hypergraph(
                {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="tri"
            ),
            BenchmarkClass.CQ_APPLICATION,
        )
        run_hw_analysis(repo, max_k=3, timeout=10.0)
        analysis = run_fractional_analysis(repo, timeout=10.0)
        # Triangle: hw 2 -> fhw 1.5, improvement 0.5.
        assert analysis.improve_hd[2].counts["[0.5,1)"] == 1
        assert analysis.frac_improve[2].counts["[0.5,1)"] == 1
        assert repo.get("tri").fhw_high == pytest.approx(1.5, abs=0.01)

    def test_acyclic_no_improvement(self, small_repo):
        run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        analysis = run_fractional_analysis(small_repo, hw_values=(1,), timeout=10.0)
        # Acyclic instances have fhw = hw = 1: no fractional improvement.
        assert analysis.improve_hd[1].counts["no"] == 1
        assert analysis.frac_improve[1].counts["no"] == 1


class TestCorrelation:
    def test_matrix_shape_and_diagonal(self, small_repo):
        small_repo.compute_all_statistics()
        run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        matrix = correlation_matrix(small_repo)
        assert matrix.shape == (len(METRICS), len(METRICS))
        assert all(matrix[i, i] == 1.0 for i in range(len(METRICS)))

    def test_symmetric_and_bounded(self, small_repo):
        small_repo.compute_all_statistics()
        run_hw_analysis(small_repo, max_k=4, timeout=10.0)
        matrix = correlation_matrix(small_repo)
        assert (abs(matrix - matrix.T) < 1e-12).all()
        assert (matrix <= 1.0 + 1e-9).all() and (matrix >= -1.0 - 1e-9).all()

    def test_constant_column_gives_zero(self):
        repo = HyperBenchRepository()
        repo.add(cycle_hypergraph(4), BenchmarkClass.CQ_RANDOM)
        repo.add(cycle_hypergraph(5), BenchmarkClass.CQ_RANDOM)
        repo.compute_all_statistics()
        run_hw_analysis(repo, max_k=3, timeout=10.0)
        matrix = correlation_matrix(repo)
        hw_index = METRICS.index("HW")  # hw constant = 2 across entries
        vertices_index = METRICS.index("vertices")
        assert matrix[hw_index, vertices_index] == 0.0
