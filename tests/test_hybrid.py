"""Tests for the hybrid BalSep -> LocalBIP algorithm (paper future work)."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.hybrid import check_ghd_hybrid
from repro.errors import DeadlineExceeded
from repro.utils.deadline import Deadline
from tests.conftest import clique_hypergraph, cycle_hypergraph, random_hypergraph


class TestHybridBasics:
    def test_acyclic(self, path3):
        ghd = check_ghd_hybrid(path3, 1)
        assert ghd is not None
        ghd.validate("GHD")

    def test_triangle(self, triangle):
        assert check_ghd_hybrid(triangle, 1) is None
        ghd = check_ghd_hybrid(triangle, 2)
        assert ghd is not None
        ghd.validate("GHD")

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_cycles(self, n):
        h = cycle_hypergraph(n)
        assert check_ghd_hybrid(h, 1) is None
        ghd = check_ghd_hybrid(h, 2)
        assert ghd is not None
        ghd.validate("GHD")

    @pytest.mark.parametrize("n,width", [(4, 2), (5, 3), (6, 3)])
    def test_cliques(self, n, width):
        h = clique_hypergraph(n)
        assert check_ghd_hybrid(h, width - 1) is None
        ghd = check_ghd_hybrid(h, width)
        assert ghd is not None
        ghd.validate("GHD")

    def test_empty(self):
        assert check_ghd_hybrid(Hypergraph({}), 1) is not None

    def test_deadline(self, k5):
        with pytest.raises(DeadlineExceeded):
            check_ghd_hybrid(k5, 2, Deadline(0.0))

    @pytest.mark.parametrize("depth", [0, 1, 3])
    def test_switch_depth_variants(self, depth, cycle6):
        ghd = check_ghd_hybrid(cycle6, 2, switch_depth=depth)
        assert ghd is not None
        ghd.validate("GHD")

    def test_depth_zero_is_pure_inner_search(self, triangle):
        # With switch_depth=0 the balanced-separator phase is skipped
        # entirely; the result must still be a valid width-2 GHD.
        ghd = check_ghd_hybrid(triangle, 2, switch_depth=0)
        assert ghd is not None and ghd.integral_width <= 2


class TestHybridDifferential:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_agrees_with_balsep(self, seed, k):
        h = random_hypergraph(seed)
        a = check_ghd_hybrid(h, k)
        b = check_ghd_balsep(h, k)
        assert (a is None) == (b is None), f"hybrid disagrees on {h!r} k={k}"
        if a is not None:
            a.validate("GHD")
            assert a.integral_width <= k

    @pytest.mark.parametrize("seed", range(25, 33))
    def test_agrees_on_denser_instances(self, seed):
        h = random_hypergraph(seed, max_vertices=8, max_edges=9, max_arity=5)
        assert (check_ghd_hybrid(h, 2) is None) == (check_ghd_balsep(h, 2) is None)
