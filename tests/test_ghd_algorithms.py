"""Unit + differential tests for the three Check(GHD, k) algorithms."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import check_hd
from repro.decomp.globalbip import check_ghd_global_bip
from repro.decomp.localbip import check_ghd_local_bip
from repro.errors import DeadlineExceeded
from repro.utils.deadline import Deadline
from tests.conftest import clique_hypergraph, cycle_hypergraph, random_hypergraph

ALGORITHMS = [check_ghd_global_bip, check_ghd_local_bip, check_ghd_balsep]
ALGORITHM_IDS = ["GlobalBIP", "LocalBIP", "BalSep"]


@pytest.mark.parametrize("check", ALGORITHMS, ids=ALGORITHM_IDS)
class TestEachAlgorithm:
    def test_acyclic_width_1(self, check, path3):
        ghd = check(path3, 1)
        assert ghd is not None
        ghd.validate("GHD")

    def test_triangle_no_at_1_yes_at_2(self, check, triangle):
        assert check(triangle, 1) is None
        ghd = check(triangle, 2)
        assert ghd is not None and ghd.integral_width <= 2
        ghd.validate("GHD")

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_cycles(self, check, n):
        h = cycle_hypergraph(n)
        assert check(h, 1) is None
        ghd = check(h, 2)
        assert ghd is not None
        ghd.validate("GHD")

    def test_k4(self, check, k4):
        assert check(k4, 1) is None
        ghd = check(k4, 2)
        assert ghd is not None
        ghd.validate("GHD")

    def test_empty_hypergraph(self, check):
        ghd = check(Hypergraph({}), 1)
        assert ghd is not None

    def test_disconnected(self, check):
        h = Hypergraph({"a": ["1", "2"], "b": ["3", "4"]})
        ghd = check(h, 1)
        assert ghd is not None
        ghd.validate("GHD")

    def test_expired_deadline(self, check, k5):
        with pytest.raises(DeadlineExceeded):
            check(k5, 2, Deadline(0.0))

    def test_wide_edges(self, check):
        h = Hypergraph(
            {
                "a": ["1", "2", "3"],
                "b": ["3", "4", "5"],
                "c": ["5", "6", "1"],
            }
        )
        assert check(h, 1) is None
        ghd = check(h, 2)
        assert ghd is not None
        ghd.validate("GHD")


class TestGhwBelowHw:
    """A hypergraph family where subedges genuinely matter.

    ghw can be smaller than hw; the classic witnesses need the GHD bags to
    use proper subedges.  We at least verify ghw <= hw everywhere and that
    the three algorithms agree with each other (see differential tests).
    """

    @pytest.mark.parametrize("seed", range(12))
    def test_ghw_never_exceeds_hw(self, seed):
        h = random_hypergraph(seed)
        for k in (1, 2, 3):
            if check_hd(h, k) is not None:
                ghd = check_ghd_balsep(h, k)
                assert ghd is not None
                ghd.validate("GHD")
                break


class TestDifferential:
    """The three independent implementations must agree on yes/no."""

    @pytest.mark.parametrize("seed", range(30))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_agreement_on_random_hypergraphs(self, seed, k):
        h = random_hypergraph(seed)
        answers = {}
        for name, check in zip(ALGORITHM_IDS, ALGORITHMS):
            result = check(h, k)
            if result is not None:
                result.validate("GHD")
                assert result.integral_width <= k
            answers[name] = result is not None
        assert len(set(answers.values())) == 1, (
            f"disagreement on {h!r} at k={k}: {answers}"
        )

    @pytest.mark.parametrize("seed", range(30, 42))
    def test_agreement_on_denser_hypergraphs(self, seed):
        h = random_hypergraph(seed, max_vertices=8, max_edges=9, max_arity=5)
        answers = {
            name: check(h, 2) is not None
            for name, check in zip(ALGORITHM_IDS, ALGORITHMS)
        }
        assert len(set(answers.values())) == 1, f"disagreement on {h!r}: {answers}"
