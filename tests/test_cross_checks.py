"""Cross-implementation checks against networkx (an independent oracle)."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.core.components import connected_components
from repro.core.hypergraph import Hypergraph
from repro.core.treewidth import primal_graph
from tests.conftest import random_hypergraph

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

vertex_names = st.integers(min_value=0, max_value=6).map(lambda i: f"v{i}")
edges_strategy = st.lists(
    st.frozensets(vertex_names, min_size=1, max_size=4),
    min_size=1,
    max_size=6,
    unique=True,
)


@given(edge_sets=edges_strategy)
@SETTINGS
def test_connected_components_match_networkx(edge_sets):
    h = Hypergraph({f"e{i}": sorted(e) for i, e in enumerate(edge_sets)})
    ours = connected_components(h.edges)
    # networkx oracle: components of the bipartite incidence graph.
    graph = nx.Graph()
    for name, edge in h.edges.items():
        graph.add_node(("edge", name))
        for v in edge:
            graph.add_edge(("edge", name), ("vertex", v))
    nx_components = []
    for component in nx.connected_components(graph):
        edge_names = frozenset(n for kind, n in component if kind == "edge")
        if edge_names:
            nx_components.append(edge_names)
    assert sorted(map(sorted, ours)) == sorted(map(sorted, nx_components))


@pytest.mark.parametrize("seed", range(10))
def test_primal_graph_adjacency_oracle(seed):
    h = random_hypergraph(seed)
    graph = primal_graph(h)
    for u in h.vertices:
        for v in h.vertices:
            if u >= v:
                continue
            together = any(u in e and v in e for e in h.edges.values())
            assert graph.has_edge(u, v) == together


@pytest.mark.parametrize("seed", range(10))
def test_min_fill_width_at_least_clique_number(seed):
    """tw >= ω - 1: every clique (in particular every hyperedge) sits in a bag."""
    h = random_hypergraph(seed)
    if not h.num_edges:
        return
    from repro.core.treewidth import treewidth_exact

    tw = treewidth_exact(h)
    assert tw >= h.arity - 1
