"""Cross-method bound propagation: the store's knowledge layer.

Covers the :data:`repro.engine.store.WIDTH_RELATIONS` transforms
(fhw ≤ ghw ≤ hw ≤ 3·ghw + 1), witness borrowing across methods, the
witness-required suppression for ``fracimprove``, schema migration of
PR 2-era cache files, eviction consistency of the ``kind_bounds`` table,
the ``cache bounds --kind`` CLI filter, and the acceptance scenario: a warm
sweep interleaving hw and ghw jobs on the same instances answers from the
other method's rows (``EngineStats.implied`` hits) with verdicts identical
to the frozen reference kernel.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.cli import main
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import NO, YES, CheckOutcome
from repro.decomp.reference import check_ghd_balsep_reference, check_hd_reference
from repro.engine import (
    DecompositionEngine,
    JobSpec,
    ResultStore,
    fingerprint,
)
from repro.engine import methods
from repro.io.hg_format import format_hypergraph
from repro.io.json_io import decomposition_to_json
from tests.conftest import random_hypergraph

FP = "f" * 64  # synthetic fingerprint for rule-level tests


# ------------------------------------------------------------ relation rules


class TestWidthRelationRules:
    def test_hw_yes_caps_ghw_and_fhw(self):
        with ResultStore() as store:
            store.put(FP, "hd", 3, None, CheckOutcome(YES, 0.1))
            assert store.kind_bounds(FP, methods.HW) == (1, 3)
            assert store.kind_bounds(FP, methods.GHW) == (1, 3)
            assert store.kind_bounds(FP, methods.FHW) == (1, 3)
            # every ghw method is implied-yes at k >= 3
            for name in ("balsep", "localbip", "globalbip", "hybrid", "portfolio"):
                derived = store.get(FP, name, 3, None, record=False)
                assert derived is not None and derived.verdict == YES
                assert derived.implied

    def test_ghw_no_lifts_hw(self):
        with ResultStore() as store:
            store.put(FP, "balsep", 2, None, CheckOutcome(NO, 0.1))
            assert store.kind_bounds(FP, methods.GHW) == (3, None)
            assert store.kind_bounds(FP, methods.HW) == (3, None)
            derived = store.get(FP, "hd", 2, None, record=False)
            assert derived is not None and derived.verdict == NO and derived.implied
            # nothing implied at or above the open end
            assert store.get(FP, "hd", 3, None, record=False) is None

    def test_ghw_yes_caps_hw_at_three_k_plus_one(self):
        with ResultStore() as store:
            store.put(FP, "balsep", 2, None, CheckOutcome(YES, 0.1))
            assert store.kind_bounds(FP, methods.HW) == (1, 7)  # 3*2 + 1
            derived = store.get(FP, "hd", 7, None, record=False)
            assert derived is not None and derived.verdict == YES and derived.implied
            # purely arithmetic: no HD witness exists for the derived yes
            assert derived.decomposition_json is None
            assert store.get(FP, "hd", 6, None, record=False) is None

    def test_hw_no_lifts_ghw_by_the_adler_bound(self):
        with ResultStore() as store:
            store.put(FP, "hd", 6, None, CheckOutcome(NO, 0.1))
            # hw >= 7 and hw <= 3*ghw + 1  =>  ghw >= 2
            assert store.kind_bounds(FP, methods.GHW) == (2, None)
            derived = store.get(FP, "balsep", 1, None, record=False)
            assert derived is not None and derived.verdict == NO and derived.implied

    def test_fhw_lower_bounds_lift_the_chain(self):
        with ResultStore() as store:
            # direct fhw-kind facts can only come from relations today, so
            # check the transform directly through a ghw refutation
            store.put(FP, "localbip", 1, None, CheckOutcome(NO, 0.1))
            assert store.kind_bounds(FP, methods.GHW)[0] == 2
            assert store.kind_bounds(FP, methods.HW)[0] == 2
            # fhw keeps only upper bounds from the chain (none here)
            assert store.kind_bounds(FP, methods.FHW) == (1, None)

    def test_custom_methods_stay_outside_the_knowledge_layer(self):
        with ResultStore() as store:
            store.put(FP, "mystery", 2, None, CheckOutcome(YES, 0.1))
            assert store.kind_bounds_rows() == []
            assert store.get(FP, "hd", 2, None, record=False) is None


# --------------------------------------------------------- witness borrowing


class TestWitnessBorrowing:
    def test_ghw_yes_borrows_the_hd_witness(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.1, check_hd(triangle, 2)))
            derived = store.get(fp, "balsep", 2, None, record=False)
            assert derived is not None and derived.verdict == YES and derived.implied
            outcome = derived.outcome(triangle)
            assert outcome.decomposition is not None
            outcome.decomposition.validate()  # an HD is a valid GHD
            assert outcome.decomposition.integral_width <= 2

    def test_fracimprove_never_replays_a_cross_yes(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.1, check_hd(triangle, 2)))
            # the verdict is certain (hw <= 2) but the Table 6 deliverable
            # is the FHD itself — fracimprove must execute, not replay
            assert store.get(fp, "fracimprove", 2, None, record=False) is None
            # implied "no" is still fine: hd refutations close fracimprove keys
            store.put(fp, "hd", 1, None, CheckOutcome(NO, 0.1))
            derived = store.get(fp, "fracimprove", 1, None, record=False)
            assert derived is not None and derived.verdict == NO and derived.implied

    def test_effective_bounds_fold_in_the_kind_interval(self, triangle):
        fp = fingerprint(triangle)
        with ResultStore() as store:
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.1, check_hd(triangle, 2)))
            store.put(fp, "balsep", 1, None, CheckOutcome(NO, 0.1))
            assert store.bounds(fp, "balsep") == (2, None)
            assert store.effective_bounds(fp, "balsep") == (2, 2)
            assert store.effective_bounds(fp, "hd") == (2, 2)
            # witness-required methods never borrow a cross upper bound
            assert store.effective_bounds(fp, "fracimprove") == (2, None)


# ------------------------------------------------------------ schema upkeep


OLD_SCHEMA = """
CREATE TABLE results (
    fingerprint TEXT NOT NULL, method TEXT NOT NULL, k INTEGER NOT NULL,
    timeout TEXT NOT NULL, verdict TEXT NOT NULL, seconds REAL NOT NULL,
    decomposition TEXT, extra TEXT, created_at REAL NOT NULL,
    last_used REAL NOT NULL, use_count INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (fingerprint, method, k, timeout)
);
CREATE TABLE bounds (
    fingerprint TEXT NOT NULL, method TEXT NOT NULL,
    lo INTEGER NOT NULL, hi INTEGER,
    PRIMARY KEY (fingerprint, method)
);
CREATE TABLE meta (key TEXT PRIMARY KEY, value INTEGER NOT NULL);
"""


def write_pr2_era_store(path, triangle) -> str:
    """A cache file exactly as the pre-knowledge-layer schema wrote it."""
    fp = fingerprint(triangle)
    decomposition = decomposition_to_json(check_hd(triangle, 2))
    conn = sqlite3.connect(path)
    conn.executescript(OLD_SCHEMA)
    conn.executemany(
        "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?, ?, ?, 1.0, 1.0, 0)",
        [
            (fp, "hd", 1, "none", NO, 0.2, None, None),
            (fp, "hd", 2, "none", YES, 0.3, decomposition, None),
            (fp, "balsep", 1, "none", NO, 0.1, None, None),
        ],
    )
    conn.executemany(
        "INSERT INTO bounds VALUES (?, ?, ?, ?)",
        [(fp, "hd", 2, 2), (fp, "balsep", 2, None)],
    )
    conn.execute("INSERT INTO meta VALUES ('hits', 5)")
    conn.commit()
    conn.close()
    return fp


class TestSchemaMigration:
    def test_pr2_era_store_migrates_in_place(self, tmp_path, triangle):
        path = tmp_path / "old.db"
        fp = write_pr2_era_store(path, triangle)
        with ResultStore(path) as store:
            # every pre-migration fact survives
            assert store.bounds(fp, "hd") == (2, 2)
            assert store.bounds(fp, "balsep") == (2, None)
            assert store.stats.hits == 5
            got = store.get(fp, "hd", 2, None)
            assert got is not None and got.verdict == YES
            # and the cross-method rows are derived from them
            assert store.kind_bounds(fp, methods.HW) == (2, 2)
            assert store.kind_bounds(fp, methods.GHW) == (2, 2)
            derived = store.get(fp, "localbip", 2, None, record=False)
            assert derived is not None and derived.verdict == YES and derived.implied

    def test_migration_runs_once(self, tmp_path, triangle):
        path = tmp_path / "old.db"
        fp = write_pr2_era_store(path, triangle)
        with ResultStore(path):
            pass
        # second open must not re-derive (version stamp present)
        with ResultStore(path) as store:
            assert store._meta("schema_version") >= 2
            assert store.kind_bounds(fp, methods.GHW) == (2, 2)

    def test_eviction_recomputes_kind_rows(self, triangle):
        fp = fingerprint(triangle)
        other = fingerprint(random_hypergraph(1))
        with ResultStore(max_entries=1) as store:
            store.put(fp, "hd", 2, None, CheckOutcome(YES, 0.1))
            assert store.kind_bounds(fp, methods.GHW) == (1, 2)
            store.put(other, "balsep", 1, None, CheckOutcome(NO, 0.1))  # evicts fp
            assert store.kind_bounds(fp, methods.GHW) == (1, None)
            assert store.kind_bounds(other, methods.HW) == (2, None)

    def test_clear_drops_kind_rows(self):
        with ResultStore() as store:
            store.put(FP, "hd", 2, None, CheckOutcome(YES, 0.1))
            assert store.kind_bounds_rows()
            store.clear()
            assert store.kind_bounds_rows() == []


# ------------------------------------------------------------- CLI surface


class TestCacheBoundsKindFilter:
    def seeded_store(self, tmp_path):
        cache = tmp_path / "cache.db"
        with ResultStore(cache) as store:
            store.put(FP, "hd", 1, None, CheckOutcome(NO, 0.1))
            store.put(FP, "balsep", 2, None, CheckOutcome(YES, 0.1))
        return cache

    def test_bounds_lists_cross_method_rows(self, tmp_path, capsys):
        cache = self.seeded_store(tmp_path)
        assert main(["cache", "bounds", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "hd" in out and "balsep" in out
        assert "kind" in out and "ghw" in out and "fhw" in out

    def test_kind_filter_restricts_both_tables(self, tmp_path, capsys):
        cache = self.seeded_store(tmp_path)
        assert main(["cache", "bounds", "--cache", str(cache), "--kind", "ghw"]) == 0
        out = capsys.readouterr().out
        assert "balsep" in out and "ghw" in out
        assert "hd " not in out and "fhw" not in out

    def test_decompose_reports_witnessless_implied_yes(self, tmp_path, capsys):
        # a ghw yes at 2 implies hw <= 7; no HD witness exists to print
        h = random_hypergraph(2)
        path = tmp_path / "h.hg"
        path.write_text(format_hypergraph(h), encoding="utf-8")
        cache = tmp_path / "cache.db"
        fp = fingerprint(h)
        with ResultStore(cache) as store:
            store.put(fp, "balsep", 2, None, CheckOutcome(YES, 0.1))
        code = main(
            ["decompose", str(path), "-k", "7", "--algorithm", "hd",
             "--cache", str(cache)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "confirmed from cached bounds" in out
        # with --json the witnessless verdict must still be machine-readable
        import json

        code = main(
            ["decompose", str(path), "-k", "7", "--algorithm", "hd",
             "--cache", str(cache), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload == {
            "verdict": "yes", "k": 7, "implied": True, "decomposition": None,
        }


# ------------------------------------------------- acceptance: warm sweeps


class TestInterleavedWarmSweep:
    """hw rows answer ghw jobs (and vice versa) with reference-true verdicts."""

    MAX_K = 4

    def graphs(self):
        return [random_hypergraph(seed) for seed in range(5)]

    def test_hw_sweep_closes_ghw_checks(self):
        store = ResultStore()
        cold = DecompositionEngine(store=store)
        widths = {}
        for h in self.graphs():
            result = cold.exact_width(h, self.MAX_K, method="hd")
            if result.exact:
                widths[h.name] = result.value

        warm = DecompositionEngine(store=store)
        checked = 0
        for h in self.graphs():
            width = widths.get(h.name)
            if width is None:
                continue
            outcome = warm.check(h, width, method="balsep")
            # ghw <= hw: the hd yes-row answers the ghw key instantly
            assert outcome.verdict == YES
            reference = check_ghd_balsep_reference(h, width)
            assert reference is not None, h.name  # zero verdict mismatches
            if outcome.decomposition is not None:
                outcome.decomposition.validate()
            checked += 1
        assert checked > 0
        assert warm.stats.executed == 0
        assert warm.stats.implied == checked

    def test_ghw_refutations_close_hw_checks(self):
        from tests.conftest import clique_hypergraph, cycle_hypergraph

        # cyclic instances: ghw = 2, so Check(GHD, 1) is a definite no
        cyclic = [cycle_hypergraph(4), cycle_hypergraph(5), clique_hypergraph(4)]
        store = ResultStore()
        cold = DecompositionEngine(store=store)
        refuted = []
        for h in cyclic:
            outcome = cold.check(h, 1, method="balsep")
            if outcome.verdict == NO:
                refuted.append(h)
        assert refuted

        warm = DecompositionEngine(store=store)
        for h in refuted:
            outcome = warm.check(h, 1, method="hd")
            assert outcome.verdict == NO
            assert check_hd_reference(h, 1) is None, h.name
        assert warm.stats.executed == 0
        assert warm.stats.implied == len(refuted)

    def test_interleaved_batch_prunes_and_matches_reference(self):
        graphs = self.graphs()

        def interleaved_specs():
            specs = []
            for h in graphs:
                for k in (1, 2, 3):
                    specs.append(JobSpec.check(h, k, method="hd"))
                    specs.append(JobSpec.check(h, k, method="balsep"))
            return specs

        # cold run on a *method-disjoint* warm-up: hd width sweeps only
        store = ResultStore()
        seeder = DecompositionEngine(store=store)
        seeder.run_batch([JobSpec.width(h, self.MAX_K, method="hd") for h in graphs])

        warm = DecompositionEngine(store=store)
        report = warm.run_batch(interleaved_specs())
        # ghw jobs were never executed before, yet some are served from the
        # hw rows via the knowledge layer
        assert report.pruned > 0
        assert warm.stats.implied > 0
        for result in report.results:
            h = result.spec.hypergraph
            k = result.spec.k
            if result.verdict not in (YES, NO):
                continue
            if result.spec.method == "hd":
                expected = YES if check_hd_reference(h, k) is not None else NO
            else:
                expected = (
                    YES if check_ghd_balsep_reference(h, k) is not None else NO
                )
            assert result.verdict == expected, (h.name, result.spec.method, k)
