"""Unit tests for the hypergraph file formats (detkdecomp text + JSON)."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.errors import ParseError
from repro.io.hg_format import (
    format_hypergraph,
    parse_hypergraph,
    read_hypergraph,
    write_hypergraph,
)
from repro.io.json_io import (
    decomposition_to_json,
    hypergraph_from_json,
    hypergraph_to_json,
)


class TestHgParse:
    def test_basic(self):
        h = parse_hypergraph("r(x,y),\ns(y,z),\nt(z,x).")
        assert h.num_edges == 3
        assert h.edge("r") == {"x", "y"}

    def test_comments_ignored(self):
        h = parse_hypergraph("% a comment\nr(x,y). % trailing")
        assert h.num_edges == 1

    def test_whitespace_tolerated(self):
        h = parse_hypergraph("  r( x , y )  ,\n  s(y,z)  .  ")
        assert h.num_edges == 2

    def test_names_with_specials(self):
        h = parse_hypergraph("edge:1-a(v.1,v_2).")
        assert "edge:1-a" in h

    def test_missing_dot_ok(self):
        assert parse_hypergraph("r(x,y)").num_edges == 1

    def test_empty_file_rejected(self):
        with pytest.raises(ParseError):
            parse_hypergraph("% nothing here")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_hypergraph("r(x,y), ???")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParseError):
            parse_hypergraph("r(x,y), r(y,z).")

    def test_missing_separator_rejected(self):
        with pytest.raises(ParseError):
            parse_hypergraph("r(x,y) s(y,z).")


class TestHgRoundTrip:
    def test_format_then_parse(self, triangle):
        text = format_hypergraph(triangle)
        again = parse_hypergraph(text)
        assert again.edge_sets() == triangle.edge_sets()

    def test_file_round_trip(self, tmp_path, star):
        path = tmp_path / "star.hg"
        write_hypergraph(star, path)
        again = read_hypergraph(path)
        assert again.name == "star"
        assert again.edge_sets() == star.edge_sets()


class TestJson:
    def test_hypergraph_round_trip(self, triangle):
        text = hypergraph_to_json(triangle)
        again = hypergraph_from_json(text)
        assert again == triangle
        assert again.name == "triangle"

    def test_bad_json_rejected(self):
        with pytest.raises(ParseError):
            hypergraph_from_json("{not json")

    def test_wrong_shape_rejected(self):
        with pytest.raises(ParseError):
            hypergraph_from_json('{"name": "x"}')
        with pytest.raises(ParseError):
            hypergraph_from_json('{"edges": [1, 2]}')

    def test_decomposition_json(self, triangle):
        from repro.decomp.detkdecomp import check_hd

        hd = check_hd(triangle, 2)
        text = decomposition_to_json(hd, indent=2)
        assert '"kind": "HD"' in text
        assert '"width": 2.0' in text
