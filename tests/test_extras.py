"""Tests for the related-work extras (edge clique cover candidates)."""

from repro.analysis.experiments import edge_clique_cover_candidates
from repro.benchmark import BenchmarkClass, build_default_benchmark
from repro.benchmark.repository import HyperBenchRepository
from repro.core.hypergraph import Hypergraph


class TestEdgeCliqueCover:
    def test_counts_n_greater_than_m(self):
        repo = HyperBenchRepository()
        # n=3 > m=2
        repo.add(Hypergraph({"a": ["x", "y"], "b": ["y", "z"]}, name="wide"),
                 BenchmarkClass.CSP_APPLICATION)
        # n=3 = m=3
        repo.add(Hypergraph({"a": ["x", "y"], "b": ["y", "z"], "c": ["z", "x"]},
                            name="tri"), BenchmarkClass.CSP_APPLICATION)
        result = edge_clique_cover_candidates(repo)
        class_row = result.rows[0]
        assert class_row[1] == 2 and class_row[2] == 1 and class_row[3] == 50.0
        assert result.rows[-1][0] == "Total"

    def test_percentages_bounded(self):
        repo = build_default_benchmark(scale=0.1)
        result = edge_clique_cover_candidates(repo)
        for row in result.rows:
            assert 0.0 <= row[3] <= 100.0

    def test_renders(self):
        repo = build_default_benchmark(scale=0.05)
        text = edge_clique_cover_candidates(repo).rendered
        assert "n > m" in text
