"""Unit tests for ImproveHD / FracImproveHD (Section 6.5)."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.decomp.detkdecomp import check_hd
from repro.decomp.fractional import (
    best_fractional_improvement,
    check_frac_improved,
    improve_hd,
)
from tests.conftest import clique_hypergraph, cycle_hypergraph


class TestImproveHD:
    def test_triangle_improves_to_1_5(self, triangle):
        hd = check_hd(triangle, 2)
        fhd = improve_hd(hd)
        fhd.validate("FHD")
        assert fhd.width == pytest.approx(1.5, abs=1e-6)

    def test_never_worse_than_input(self, cycle6):
        hd = check_hd(cycle6, 2)
        fhd = improve_hd(hd)
        assert fhd.width <= hd.width + 1e-9

    def test_tree_and_bags_preserved(self, triangle):
        hd = check_hd(triangle, 2)
        fhd = improve_hd(hd)
        assert sorted(map(sorted, fhd.bags())) == sorted(map(sorted, hd.bags()))
        assert len(fhd) == len(hd)

    def test_acyclic_stays_1(self, path3):
        hd = check_hd(path3, 1)
        fhd = improve_hd(hd)
        assert fhd.width == pytest.approx(1.0, abs=1e-6)

    def test_k5_improves(self, k5):
        # hw(K5) = 3 but each bag of 5 vertices has ρ* = 2.5.
        hd = check_hd(k5, 3)
        fhd = improve_hd(hd)
        assert fhd.width < 3.0


class TestFracImproveHD:
    def test_triangle_check_at_1_5(self, triangle):
        fhd = check_frac_improved(triangle, 2, 1.5)
        assert fhd is not None
        fhd.validate("FHD")
        assert fhd.width <= 1.5 + 1e-6

    def test_triangle_check_below_1_5_fails(self, triangle):
        assert check_frac_improved(triangle, 2, 1.4) is None

    def test_invalid_k_prime(self, triangle):
        with pytest.raises(ValueError):
            check_frac_improved(triangle, 2, 0.0)

    def test_best_improvement_triangle(self, triangle):
        best = best_fractional_improvement(triangle, 2, precision=0.05)
        assert best is not None
        assert best.width == pytest.approx(1.5, abs=0.06)

    def test_best_improvement_never_above_k(self, k4):
        best = best_fractional_improvement(k4, 2)
        assert best is not None
        assert best.width <= 2.0 + 1e-6

    def test_best_none_when_no_hd(self, triangle):
        assert best_fractional_improvement(triangle, 1) is None

    def test_beats_or_matches_improve_hd(self):
        # FracImproveHD optimises over all HDs, so it can only be better.
        h = cycle_hypergraph(5)
        hd = check_hd(h, 2)
        naive = improve_hd(hd).width
        best = best_fractional_improvement(h, 2, precision=0.05)
        assert best.width <= naive + 1e-6

    def test_result_is_valid_fhd(self, k5):
        best = best_fractional_improvement(k5, 3, precision=0.1)
        assert best is not None
        best.validate("FHD")
