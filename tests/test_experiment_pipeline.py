"""The experiment pipeline: corpus → runner → results → report.

The two load-bearing proofs live here:

* **Equivalence**: the pipeline's Tables 1–6 / Figures 3–5 must match
  ``run_full_study`` exactly at the same seed/scale — checked by running
  the study warm against the experiment's own store (both then replay the
  identical verdicts, timings included).
* **Resume**: an experiment interrupted at an arbitrary point — engine
  crash mid-wave, torn journal tails, SIGKILLed subprocess — and resumed
  must produce a byte-identical report to an uninterrupted run.  The
  hypothesis test draws the crash point and the torn-byte counts; the
  subprocess test delivers a real SIGKILL through the CLI.

Golden files under ``tests/golden/`` pin the rendered bytes of a fixed
tiny experiment, so report rendering cannot drift silently.
"""

from __future__ import annotations

import json
import signal
import os
from pathlib import Path

import pytest
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis.experiments import run_full_study
from repro.benchmark.build import build_default_benchmark
from repro.engine import DecompositionEngine
from repro.engine.shards import open_result_store
from repro.errors import ReproError
from repro.experiment import (
    CorpusSection,
    ExperimentError,
    ExperimentPaths,
    ExperimentResults,
    ExperimentRunner,
    Manifest,
    build_corpus,
    default_manifest,
    experiment_status,
    render_csv,
    render_html,
    render_json,
    render_markdown,
    write_report,
)

from tests.conftest import spawn_cli, wait_for_lines

GOLDEN = Path(__file__).parent / "golden"

#: Fast without timeouts (every check terminates in milliseconds), covering
#: the structured, model-layer (repro.cq / repro.csp) and random families.
TINY_MANIFEST = Manifest(
    name="tiny",
    seed=5,
    deterministic=True,
    timeout=None,
    max_k=4,
    sections=[
        CorpusSection("cycle", 3, params={"size": [3, 8]}),
        CorpusSection("grid", 2, params={"size": [2, 3]}),
        CorpusSection("clique", 2, params={"size": [4, 6]}),
        CorpusSection("csp", 2, params={"variables": 6, "constraints": 7}),
        CorpusSection(
            "cq",
            params={
                "queries": [
                    "ans(X,Z) :- r(X,Y), s(Y,Z), t(Z,X).",
                    "ans(A) :- p(A,B), q(B,C).",
                ]
            },
        ),
    ],
)


def run_experiment(root: Path, manifest: Manifest, engine=None) -> None:
    paths = ExperimentPaths.at(root)
    root.mkdir(parents=True, exist_ok=True)
    owned = engine is None
    if engine is None:
        engine = DecompositionEngine(store=open_result_store(paths.store))
    try:
        ExperimentRunner(paths, engine, manifest=manifest).run()
    finally:
        if owned:
            engine.close()


@pytest.fixture(scope="module")
def tiny_experiment(tmp_path_factory) -> Path:
    """One clean, complete run of the tiny manifest (shared, read-only)."""
    root = tmp_path_factory.mktemp("exp") / "tiny"
    run_experiment(root, TINY_MANIFEST)
    return root


@pytest.fixture(scope="module")
def tiny_report(tiny_experiment) -> dict[str, str]:
    with ExperimentResults(tiny_experiment) as results:
        return {
            "md": render_markdown(results),
            "html": render_html(results),
            "csv": render_csv(results),
            "json": render_json(results),
        }


# ------------------------------------------------------------------- corpus


class TestCorpus:
    def test_default_corpus_equals_default_benchmark(self):
        manifest = default_manifest(scale=0.05, seed=7)
        corpus = build_corpus(manifest)
        benchmark = build_default_benchmark(scale=0.05, seed=7)
        assert len(corpus) == len(benchmark)
        for mine, theirs in zip(corpus, benchmark):
            assert mine.name == theirs.name
            assert mine.benchmark_class == theirs.benchmark_class
            assert mine.hypergraph.edges == theirs.hypergraph.edges

    def test_corpus_is_deterministic(self):
        a = build_corpus(TINY_MANIFEST)
        b = build_corpus(TINY_MANIFEST)
        assert [e.name for e in a] == [e.name for e in b]
        for x, y in zip(a, b):
            assert x.hypergraph.edges == y.hypergraph.edges

    def test_generator_families_honor_count(self):
        manifest = Manifest(
            sections=[
                CorpusSection("cycle", 4),
                CorpusSection("grid", 3),
                CorpusSection("sql", 2),
            ]
        )
        corpus = build_corpus(manifest)
        assert len(corpus) == 9

    def test_family_tag_rides_into_exports(self):
        corpus = build_corpus(TINY_MANIFEST)
        entry = next(iter(corpus))
        assert entry.extra["family"] == "cycle"
        assert entry.as_record()["family"] == "cycle"
        header = corpus.to_csv().splitlines()[0]
        assert "family" in header.split(",")

    def test_unknown_family_rejected(self):
        with pytest.raises(ReproError, match="unknown corpus family"):
            CorpusSection.from_dict({"family": "nope", "count": 1})

    def test_inline_cq_family_needs_queries(self):
        with pytest.raises(ReproError, match="queries"):
            build_corpus(Manifest(sections=[CorpusSection("cq", 1)]))

    def test_manifest_roundtrip(self, tmp_path):
        manifest = TINY_MANIFEST
        path = tmp_path / "m.json"
        manifest.save(path)
        assert Manifest.from_file(path) == manifest
        assert Manifest.from_dict(json.loads(path.read_text())) == manifest


# ------------------------------------------------------------------- runner


class TestRunner:
    def test_run_is_idempotent(self, tiny_experiment, tiny_report):
        # a second run over a complete directory executes nothing
        paths = ExperimentPaths.at(tiny_experiment)
        engine = DecompositionEngine(store=open_result_store(paths.store))
        try:
            summary = ExperimentRunner(
                paths, engine, manifest=TINY_MANIFEST
            ).run()
        finally:
            engine.close()
        assert summary.executed == 0
        assert summary.resumed == summary.total_jobs
        with ExperimentResults(tiny_experiment) as results:
            assert render_markdown(results) == tiny_report["md"]

    def test_status_reports_phases_and_jobs(self, tiny_experiment):
        status = experiment_status(tiny_experiment)
        assert status.complete
        assert status.instances == 11
        assert all(status.phases.values())
        assert status.jobs["check"] > 0
        assert status.jobs["portfolio"] > 0

    def test_status_of_missing_directory(self, tmp_path):
        status = experiment_status(tmp_path / "nope")
        assert not status.exists and not status.complete

    def test_drifted_corpus_fails_loudly(self, tiny_experiment, tmp_path):
        import shutil

        root = tmp_path / "drift"
        shutil.copytree(tiny_experiment, root)
        drifted = Manifest.from_dict(TINY_MANIFEST.to_dict())
        # the csp family's names don't encode its params: same names, new graphs
        drifted.sections[3].params = {"variables": 9, "constraints": 11}
        engine = DecompositionEngine(store=open_result_store(ExperimentPaths.at(root).store))
        try:
            with pytest.raises(ExperimentError, match="drifted"):
                ExperimentRunner(root, engine, manifest=drifted).run()
        finally:
            engine.close()

    def test_incomplete_experiment_refuses_strict_results(self, tmp_path):
        root = tmp_path / "partial"
        root.mkdir()
        TINY_MANIFEST.save(ExperimentPaths.at(root).manifest)
        with pytest.raises(ExperimentError, match="incomplete"):
            ExperimentResults(root)

    def test_partial_results_compute_missing_checks_live(self, tmp_path):
        root = tmp_path / "partial"
        root.mkdir()
        TINY_MANIFEST.save(ExperimentPaths.at(root).manifest)
        with ExperimentResults(root, partial=True) as results:
            table1 = results.study.results["table1"]
        assert table1.rows[-1][1] == 11  # total instances


# -------------------------------------------------------------- equivalence


class TestEquivalence:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory) -> Path:
        root = tmp_path_factory.mktemp("equiv") / "exp"
        run_experiment(root, default_manifest(scale=0.05, seed=7, timeout=1.0))
        return root

    def test_pipeline_matches_run_full_study(self, store_path):
        """Both replay the same store rows, so every artefact matches."""
        with ExperimentResults(store_path, deterministic=False) as results:
            pipeline = results.study
        engine = DecompositionEngine(
            store=open_result_store(ExperimentPaths.at(store_path).store)
        )
        try:
            study = run_full_study(scale=0.05, seed=7, timeout=1.0, engine=engine)
        finally:
            engine.close()
        assert set(study.results) <= set(pipeline.results)
        for key, artefact in study.results.items():
            assert pipeline.results[key].rendered == artefact.rendered, key
        assert pipeline.render_all() == study.render_all()


# ------------------------------------------------------------------- resume


class _Interrupt(RuntimeError):
    pass


class _CrashingEngine(DecompositionEngine):
    """Raise after ``fuel`` executed checks — a deterministic mid-run crash."""

    def __init__(self, store, fuel: int):
        super().__init__(store=store)
        self.fuel = fuel

    def _execute(self, *args, **kwargs):
        if self.fuel <= 0:
            raise _Interrupt()
        self.fuel -= 1
        return super()._execute(*args, **kwargs)


class TestResume:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        fuel=st.integers(min_value=0, max_value=40),
        torn_jobs=st.integers(min_value=0, max_value=40),
        torn_meta=st.integers(min_value=0, max_value=40),
    )
    def test_interrupted_run_resumes_byte_identically(
        self, tiny_report, tmp_path_factory, fuel, torn_jobs, torn_meta
    ):
        """Crash after an arbitrary number of checks, tear both journal
        tails by arbitrary amounts, resume: the report must not differ by
        one byte from an uninterrupted run's."""
        root = tmp_path_factory.mktemp("resume") / "exp"
        paths = ExperimentPaths.at(root)
        root.mkdir(parents=True)
        engine = _CrashingEngine(open_result_store(paths.store), fuel)
        finished = True
        try:
            ExperimentRunner(paths, engine, manifest=TINY_MANIFEST).run()
        except _Interrupt:
            finished = False
        finally:
            engine.close()
        for path, torn in ((paths.jobs, torn_jobs), (paths.meta, torn_meta)):
            if path.exists() and torn:
                data = path.read_bytes()
                path.write_bytes(data[: max(0, len(data) - torn)])
        run_experiment(root, TINY_MANIFEST)  # resume
        assert experiment_status(root).complete
        with ExperimentResults(root) as results:
            assert render_markdown(results) == tiny_report["md"]
            assert render_csv(results) == tiny_report["csv"]
        if finished and not (torn_jobs or torn_meta):
            return  # nothing was interrupted — still a valid identity check

    def test_sigkilled_cli_run_resumes_byte_identically(
        self, tiny_report, tmp_path
    ):
        """A real ``repro experiment run`` subprocess SIGKILLed mid-journal,
        resumed through the CLI: report equals the clean run's."""
        from repro.cli import main

        root = tmp_path / "killed"
        manifest_path = tmp_path / "tiny.json"
        TINY_MANIFEST.save(manifest_path)
        proc = spawn_cli(
            "experiment", "run", "--dir", str(root), "--manifest", str(manifest_path)
        )
        try:
            wait_for_lines(ExperimentPaths.at(root).jobs, minimum=3)
        except TimeoutError:
            # so fast it finished — the resume below still must be a no-op
            pass
        finally:
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        assert main(["experiment", "resume", "--dir", str(root)]) == 0
        with ExperimentResults(root) as results:
            assert render_markdown(results) == tiny_report["md"]
            assert render_csv(results) == tiny_report["csv"]

    def test_independent_runs_render_identical_reports(
        self, tiny_report, tmp_path
    ):
        """Deterministic mode: two unrelated runs agree byte-for-byte."""
        root = tmp_path / "again"
        run_experiment(root, TINY_MANIFEST)
        with ExperimentResults(root) as results:
            for fmt, render in (
                ("md", render_markdown),
                ("html", render_html),
                ("csv", render_csv),
                ("json", render_json),
            ):
                assert render(results) == tiny_report[fmt], fmt


# ------------------------------------------------------------------- report


class TestReport:
    def test_golden_markdown(self, tiny_report):
        assert tiny_report["md"] == (GOLDEN / "experiment_report.md").read_text()

    def test_golden_csv(self, tiny_report):
        assert tiny_report["csv"] == (GOLDEN / "experiment_report.csv").read_text()

    def test_markdown_has_all_artefacts(self, tiny_report):
        for title_bit in ("Table 1", "Table 6", "Figure 3", "Figure 5"):
            assert title_bit in tiny_report["md"]

    def test_html_is_escaped_and_complete(self, tiny_report):
        html = tiny_report["html"]
        assert html.startswith("<!doctype html>")
        assert "<table>" in html and "</html>" in html
        assert "hw &gt;= 2" in html  # header cells are escaped

    def test_csv_long_format(self, tiny_report):
        lines = tiny_report["csv"].splitlines()
        assert lines[0] == "artefact,row,column,value"
        assert any(line.startswith("table1,0,") for line in lines)

    def test_json_parses_with_ordered_artefacts(self, tiny_report):
        payload = json.loads(tiny_report["json"])
        ids = [a["id"] for a in payload["artefacts"]]
        assert ids[:5] == ["table1", "table2", "figure3", "figure4", "figure5"]
        assert payload["instances"] == 11

    def test_write_report_emits_requested_formats(self, tiny_experiment, tmp_path):
        with ExperimentResults(tiny_experiment) as results:
            written = write_report(results, tmp_path / "out", ("md", "json"))
        assert sorted(written) == ["json", "md"]
        assert all(path.exists() for path in written.values())

    def test_timed_reports_carry_seconds(self, tiny_experiment):
        # not byte-stable, but the verdict-derived cells must match the
        # deterministic report's (only timing columns may differ)
        with ExperimentResults(tiny_experiment, deterministic=False) as results:
            table1 = results.study.results["table1"].rendered
        with ExperimentResults(tiny_experiment) as results:
            assert results.study.results["table1"].rendered == table1


# ---------------------------------------------------------------------- cli


class TestExperimentCli:
    def test_run_status_report(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "exp"
        manifest_path = tmp_path / "tiny.json"
        TINY_MANIFEST.save(manifest_path)
        assert main([
            "experiment", "run", "--dir", str(root), "--manifest", str(manifest_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "instances    11" in out

        assert main(["experiment", "status", "--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "complete     True" in out

        assert main(["experiment", "report", "--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

        dest = tmp_path / "report"
        assert main([
            "experiment", "report", "--dir", str(root),
            "--format", "all", "--dest", str(dest),
        ]) == 0
        assert sorted(p.name for p in dest.iterdir()) == [
            "report.csv", "report.html", "report.json", "report.md",
        ]

    def test_run_refuses_started_directory(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "exp"
        manifest_path = tmp_path / "tiny.json"
        TINY_MANIFEST.save(manifest_path)
        assert main([
            "experiment", "run", "--dir", str(root), "--manifest", str(manifest_path)
        ]) == 0
        capsys.readouterr()
        assert main([
            "experiment", "run", "--dir", str(root), "--manifest", str(manifest_path)
        ]) == 2
        assert "resume" in capsys.readouterr().err

    def test_status_of_nothing(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["experiment", "status", "--dir", str(tmp_path / "no")]) == 1


# -------------------------------------------------- satellite regressions


class TestRenderAllSubset:
    def test_render_all_with_subset(self, tiny_experiment):
        with ExperimentResults(tiny_experiment) as results:
            study = results.study
        study.results = {
            "table4": study.results["table4"],
            "table1": study.results["table1"],
            "ecc": study.results["table2"],  # an extra, non-canonical key
        }
        rendered = study.render_all()
        # canonical order first, extras after — and no KeyError
        assert rendered.index("Table 1") < rendered.index("Table 4")
        assert rendered.index("Table 4") < rendered.index("Table 2")

    def test_render_all_empty_study(self, tiny_experiment):
        with ExperimentResults(tiny_experiment) as results:
            study = results.study
        study.results = {}
        assert study.render_all() == ""


class TestCsvUnionFields:
    def test_heterogeneous_records_export(self):
        from repro.benchmark.classes import BenchmarkClass
        from repro.benchmark.repository import HyperBenchRepository
        from repro.core.hypergraph import Hypergraph
        from repro.core.properties import compute_statistics

        repo = HyperBenchRepository()
        plain = repo.add(
            Hypergraph({"e": ["a", "b"]}, name="plain"), BenchmarkClass.CQ_APPLICATION
        )
        tagged = repo.add(
            Hypergraph({"e": ["a", "b"]}, name="tagged"), BenchmarkClass.CQ_APPLICATION
        )
        # mixed: one entry with computed statistics and extras, one bare
        tagged.statistics = compute_statistics(tagged.hypergraph)
        tagged.extra["family"] = "cycle"
        tagged.extra["hd"] = object()  # structured extras must not export
        csv_text = repo.to_csv()
        header, row_plain, row_tagged = csv_text.splitlines()
        columns = header.split(",")
        assert columns.count("family") == 1
        assert "hd" not in columns
        assert len(row_plain.split(",")) == len(columns)
        assert row_tagged.split(",")[columns.index("family")] == "cycle"
        # the bare entry's missing column is empty, not an error
        assert row_plain.split(",")[columns.index("family")] == ""
