"""Tests for the CSP solvers, including backtracking/decomposition agreement."""

import pytest

from repro.benchmark.generators.random_csp import random_csp_instance
from repro.csp.model import Constraint, CSPInstance
from repro.csp.solver import solve_backtracking, solve_with_decomposition
from repro.errors import SolverError


def neq(name, scope, size):
    return Constraint(
        name, scope, frozenset((i, i) for i in range(size)), positive=False
    )


def coloring_instance(colors: int) -> CSPInstance:
    """Triangle graph coloring: satisfiable iff colors >= 3."""
    return CSPInstance(
        f"tri{colors}",
        {v: tuple(range(colors)) for v in "abc"},
        [neq("ab", ("a", "b"), colors), neq("bc", ("b", "c"), colors),
         neq("ac", ("a", "c"), colors)],
    )


class TestBacktracking:
    def test_satisfiable_coloring(self):
        inst = coloring_instance(3)
        solution = solve_backtracking(inst)
        assert solution is not None and inst.check(solution)

    def test_unsatisfiable_coloring(self):
        assert solve_backtracking(coloring_instance(2)) is None

    def test_no_constraints(self):
        inst = CSPInstance("free", {"x": (5, 6)}, [])
        assert solve_backtracking(inst) == {"x": 5}

    def test_empty_domain_unsat(self):
        inst = CSPInstance("dead", {"x": ()}, [])
        assert solve_backtracking(inst) is None

    def test_positive_chain(self):
        inst = CSPInstance(
            "chain",
            {"x": (0, 1), "y": (0, 1), "z": (0, 1)},
            [
                Constraint("xy", ("x", "y"), frozenset({(0, 1)})),
                Constraint("yz", ("y", "z"), frozenset({(1, 0)})),
            ],
        )
        assert solve_backtracking(inst) == {"x": 0, "y": 1, "z": 0}


class TestDecompositionSolver:
    def test_satisfiable_coloring(self):
        inst = coloring_instance(3)
        solution = solve_with_decomposition(inst)
        assert solution is not None and inst.check(solution)

    def test_unsatisfiable_coloring(self):
        assert solve_with_decomposition(coloring_instance(2)) is None

    def test_free_variables_assigned(self):
        inst = CSPInstance(
            "mixed",
            {"x": (0, 1), "y": (0, 1), "free": (7, 8)},
            [Constraint("c", ("x", "y"), frozenset({(0, 0)}))],
        )
        solution = solve_with_decomposition(inst)
        assert solution is not None and solution["free"] == 7

    def test_no_constraints(self):
        inst = CSPInstance("free", {"x": (3,)}, [])
        assert solve_with_decomposition(inst) == {"x": 3}

    def test_empty_domain(self):
        inst = CSPInstance("dead", {"x": ()}, [])
        assert solve_with_decomposition(inst) is None

    def test_width_limit_raises(self):
        # A K5 constraint network has hw 3 > max_width 2.
        variables = [f"v{i}" for i in range(5)]
        constraints = [
            neq(f"c{i}{j}", (variables[i], variables[j]), 4)
            for i in range(5)
            for j in range(i + 1, 5)
        ]
        inst = CSPInstance("k5", {v: tuple(range(4)) for v in variables}, constraints)
        with pytest.raises(SolverError):
            solve_with_decomposition(inst, max_width=2)

    def test_explicit_decomposition_must_match(self):
        from repro.core.decomposition import Decomposition, DecompositionNode
        from repro.core.hypergraph import Hypergraph

        inst = coloring_instance(3)
        wrong = Decomposition(
            Hypergraph({"zzz": ["q"]}), DecompositionNode({"q"}, {"zzz": 1.0})
        )
        with pytest.raises(SolverError):
            solve_with_decomposition(inst, decomposition=wrong)


class TestAgreement:
    """Differential testing: both solvers agree on satisfiability."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances(self, seed):
        inst = random_csp_instance(
            num_variables=5,
            num_constraints=6,
            domain_size=3,
            tightness=0.55,
            seed=seed,
        )
        bt = solve_backtracking(inst)
        dec = solve_with_decomposition(inst, max_width=4)
        assert (bt is None) == (dec is None), f"solvers disagree on seed {seed}"
        if dec is not None:
            assert inst.check(dec)

    @pytest.mark.parametrize("seed", range(8))
    def test_planted_solution_found(self, seed):
        inst = random_csp_instance(
            num_variables=6,
            num_constraints=7,
            domain_size=3,
            tightness=0.7,
            seed=seed,
            force_satisfiable=True,
        )
        dec = solve_with_decomposition(inst, max_width=4)
        assert dec is not None and inst.check(dec)
