"""Shared fixtures: hypergraphs with known widths, small databases, helpers,
and the fault-injection harness for the distributed-dispatch tests (a
controllable clock for lease expiry, worker subprocesses, and a
``crashing_worker`` that SIGKILLs one mid-lease)."""

from __future__ import annotations

import os
import random
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.hypergraph import Hypergraph

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def triangle() -> Hypergraph:
    """The triangle query: hw = ghw = 2, fhw = 1.5."""
    return Hypergraph(
        {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="triangle"
    )


@pytest.fixture
def path3() -> Hypergraph:
    """A 3-edge path: acyclic, hw = 1."""
    return Hypergraph(
        {"a": ["1", "2"], "b": ["2", "3"], "c": ["3", "4"]}, name="path3"
    )


@pytest.fixture
def star() -> Hypergraph:
    """A star join: acyclic, hw = 1."""
    return Hypergraph(
        {
            "fact": ["k1", "k2", "k3"],
            "d1": ["k1", "a"],
            "d2": ["k2", "b"],
            "d3": ["k3", "c"],
        },
        name="star",
    )


def cycle_hypergraph(n: int) -> Hypergraph:
    """The n-cycle of binary edges: hw = ghw = 2 for n >= 3."""
    return Hypergraph(
        {f"c{i}": [f"x{i}", f"x{(i + 1) % n}"] for i in range(n)},
        name=f"cycle{n}",
    )


def clique_hypergraph(n: int) -> Hypergraph:
    """K_n with binary edges: hw = ghw = ceil(n / 2)."""
    edges = {}
    for i in range(n):
        for j in range(i + 1, n):
            edges[f"e{i}_{j}"] = [f"v{i}", f"v{j}"]
    return Hypergraph(edges, name=f"K{n}")


@pytest.fixture
def cycle4() -> Hypergraph:
    return cycle_hypergraph(4)


@pytest.fixture
def cycle6() -> Hypergraph:
    return cycle_hypergraph(6)


@pytest.fixture
def k4() -> Hypergraph:
    return clique_hypergraph(4)


@pytest.fixture
def k5() -> Hypergraph:
    return clique_hypergraph(5)


def random_hypergraph(
    seed: int,
    max_vertices: int = 7,
    max_edges: int = 7,
    max_arity: int = 4,
) -> Hypergraph:
    """Small random hypergraph for differential tests (deterministic)."""
    rng = random.Random(seed)
    num_vertices = rng.randint(2, max_vertices)
    num_edges = rng.randint(1, max_edges)
    pool = [f"v{i}" for i in range(num_vertices)]
    edges = {}
    for j in range(num_edges):
        arity = rng.randint(1, min(max_arity, num_vertices))
        edges[f"e{j}"] = rng.sample(pool, arity)
    return Hypergraph(edges, name=f"rand{seed}").dedupe()


# --------------------------------------------------- fault-injection harness


class FakeClock:
    """A controllable time source for deterministic lease-expiry tests.

    Inject as ``JobQueue(clock=fake_clock)``; :meth:`advance` is the clock
    skew — jump past a lease deadline without sleeping and the next
    ``requeue_expired()`` sweep sees the lease as expired.
    """

    def __init__(self, start: float = 1_000_000.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += float(seconds)
        return self.now


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


def spawn_worker(
    queue_path: Path,
    cache_path: Path | None = None,
    *extra_args: str,
) -> subprocess.Popen:
    """Start a real ``repro worker`` process against the given queue.

    Used both directly (the two-worker end-to-end test) and by the
    ``crashing_worker`` fixture.  The caller owns the process; SIGKILLing it
    is an intended use.
    """
    cmd = [sys.executable, "-m", "repro", "worker", "--queue", str(queue_path)]
    if cache_path is not None:
        cmd += ["--cache", str(cache_path)]
    cmd += list(extra_args)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


def wait_for_leased(queue_path: Path, minimum: int = 1, timeout: float = 30.0) -> int:
    """Block until ≥ ``minimum`` jobs are under lease in the queue file.

    Reads the SQLite file directly (read-only is enough under WAL) so the
    observation does not perturb the queue under test.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with sqlite3.connect(queue_path, timeout=1.0) as conn:
                leased = conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state = 'leased'"
                ).fetchone()[0]
        except sqlite3.DatabaseError:
            leased = 0
        if leased >= minimum:
            return leased
        time.sleep(0.02)
    raise TimeoutError(f"never saw {minimum} leased job(s) in {queue_path}")


def spawn_cli(*args: str) -> subprocess.Popen:
    """Start a ``python -m repro ...`` subprocess with the repo on the path.

    Like :func:`spawn_worker` but for arbitrary CLI commands (the experiment
    SIGKILL tests).  The caller owns the process.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_lines(path: Path, minimum: int = 1, timeout: float = 60.0) -> int:
    """Block until a journal file holds ≥ ``minimum`` lines (crash timing)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            lines = len(path.read_text().splitlines())
        except OSError:
            lines = 0
        if lines >= minimum:
            return lines
        time.sleep(0.02)
    raise TimeoutError(f"never saw {minimum} line(s) in {path}")


@pytest.fixture
def crashing_worker():
    """A worker launcher whose processes get SIGKILLed mid-lease.

    Yields ``crash(queue_path, cache_path, **kw)``: starts a real worker
    subprocess, waits until it holds at least one lease, then SIGKILLs it —
    no atexit hooks, no cleanup, exactly like an OOM-kill or a powered-off
    host.  Returns the killed process (already reaped).  Any stragglers are
    killed at teardown.
    """
    procs: list[subprocess.Popen] = []

    def crash(
        queue_path: Path,
        cache_path: Path | None = None,
        *extra_args: str,
        min_leased: int = 1,
    ) -> subprocess.Popen:
        proc = spawn_worker(queue_path, cache_path, *extra_args)
        procs.append(proc)
        try:
            wait_for_leased(queue_path, minimum=min_leased)
        except TimeoutError:
            proc.kill()
            proc.wait(timeout=10)
            raise
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        return proc

    yield crash

    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
