"""Shared fixtures: hypergraphs with known widths, small databases, helpers."""

from __future__ import annotations

import random

import pytest

from repro.core.hypergraph import Hypergraph


@pytest.fixture
def triangle() -> Hypergraph:
    """The triangle query: hw = ghw = 2, fhw = 1.5."""
    return Hypergraph(
        {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="triangle"
    )


@pytest.fixture
def path3() -> Hypergraph:
    """A 3-edge path: acyclic, hw = 1."""
    return Hypergraph(
        {"a": ["1", "2"], "b": ["2", "3"], "c": ["3", "4"]}, name="path3"
    )


@pytest.fixture
def star() -> Hypergraph:
    """A star join: acyclic, hw = 1."""
    return Hypergraph(
        {
            "fact": ["k1", "k2", "k3"],
            "d1": ["k1", "a"],
            "d2": ["k2", "b"],
            "d3": ["k3", "c"],
        },
        name="star",
    )


def cycle_hypergraph(n: int) -> Hypergraph:
    """The n-cycle of binary edges: hw = ghw = 2 for n >= 3."""
    return Hypergraph(
        {f"c{i}": [f"x{i}", f"x{(i + 1) % n}"] for i in range(n)},
        name=f"cycle{n}",
    )


def clique_hypergraph(n: int) -> Hypergraph:
    """K_n with binary edges: hw = ghw = ceil(n / 2)."""
    edges = {}
    for i in range(n):
        for j in range(i + 1, n):
            edges[f"e{i}_{j}"] = [f"v{i}", f"v{j}"]
    return Hypergraph(edges, name=f"K{n}")


@pytest.fixture
def cycle4() -> Hypergraph:
    return cycle_hypergraph(4)


@pytest.fixture
def cycle6() -> Hypergraph:
    return cycle_hypergraph(6)


@pytest.fixture
def k4() -> Hypergraph:
    return clique_hypergraph(4)


@pytest.fixture
def k5() -> Hypergraph:
    return clique_hypergraph(5)


def random_hypergraph(
    seed: int,
    max_vertices: int = 7,
    max_edges: int = 7,
    max_arity: int = 4,
) -> Hypergraph:
    """Small random hypergraph for differential tests (deterministic)."""
    rng = random.Random(seed)
    num_vertices = rng.randint(2, max_vertices)
    num_edges = rng.randint(1, max_edges)
    pool = [f"v{i}" for i in range(num_vertices)]
    edges = {}
    for j in range(num_edges):
        arity = rng.randint(1, min(max_arity, num_vertices))
        edges[f"e{j}"] = rng.sample(pool, arity)
    return Hypergraph(edges, name=f"rand{seed}").dedupe()
