"""Tests for the ``repro.service`` layer.

Covers the scheduler's three dedup layers (store fast path, duplicate
coalescing, batch waves), per-request deadline expiry, the HTTP transport
(end-to-end client sessions, error statuses, concurrent clients sharing one
warm engine), warm-cache restarts, and the concurrent-reader hardening of
the store itself.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.hypergraph import Hypergraph
from repro.decomp.driver import CheckOutcome
from repro.engine import DecompositionEngine, JobSpec, ResultStore, fingerprint, register_method
from repro.io.json_io import decomposition_from_json
from repro.service import BatchScheduler, ServiceClient, ServiceThread
from repro.service.client import ServiceError
from repro.service.scheduler import EXPIRED
from tests.conftest import cycle_hypergraph, random_hypergraph


def _triangle() -> Hypergraph:
    return Hypergraph(
        {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="triangle"
    )


def _sleepy(hypergraph, k, deadline):
    """A registered check that takes long enough for deadlines to expire."""
    time.sleep(0.4)
    return None


register_method("svc_sleepy", _sleepy)


# ------------------------------------------------------------- the scheduler


class TestScheduler:
    def test_concurrent_identical_checks_cost_one_dispatch(self):
        """The acceptance property: N identical in-flight /check requests
        produce exactly one engine dispatch, counted via EngineStats."""

        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.05)
            results = await asyncio.gather(
                *(scheduler.check(_triangle(), 2) for _ in range(10))
            )
            await scheduler.close(close_engine=True)
            return engine.stats, scheduler.stats, results

        engine_stats, service_stats, results = asyncio.run(main())
        assert engine_stats.executed == 1
        assert {r["verdict"] for r in results} == {"yes"}
        assert service_stats.coalesced == 9
        assert service_stats.dispatched == 1
        assert sum(r["coalesced"] for r in results) == 9

    def test_store_fast_path_answers_implied_without_wave(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.01)
            h = _triangle()
            first = await scheduler.check(h, 2)
            implied = await scheduler.check(h, 5)  # yes at 2 ⇒ yes at 5
            await scheduler.close(close_engine=True)
            return engine.stats, scheduler.stats, first, implied

        engine_stats, service_stats, first, implied = asyncio.run(main())
        assert first["verdict"] == "yes" and not first["cached"]
        assert implied["verdict"] == "yes"
        assert implied["source"] == "store" and implied["implied"]
        assert engine_stats.executed == 1
        assert service_stats.store_answers == 1
        assert service_stats.waves == 1  # the implied answer joined no wave

    def test_mixed_kinds_share_one_wave(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.1)
            h, cycle = _triangle(), cycle_hypergraph(5)
            results = await asyncio.gather(
                scheduler.check(h, 1),
                scheduler.width(cycle, 3),
                scheduler.portfolio(h, 2),
            )
            await scheduler.close(close_engine=True)
            return scheduler.stats, results

        service_stats, (check, width, portfolio) = asyncio.run(main())
        assert service_stats.waves == 1 and service_stats.wave_jobs == 3
        assert check["verdict"] == "no"
        assert width["verdict"] == "exact" and width["width"] == 2
        assert portfolio["verdict"] == "yes"
        assert service_stats.by_kind == {"check": 1, "width": 1, "portfolio": 1}

    def test_deadline_expiry_keeps_flight_alive(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.0)
            h = _triangle()
            expired = await scheduler.check(h, 2, method="svc_sleepy", deadline=0.05)
            # The flight survives its impatient waiter: once the wave lands,
            # the verdict is in the store for the next asker.
            patient = await scheduler.check(h, 2, method="svc_sleepy")
            await scheduler.close(close_engine=True)
            return scheduler.stats, expired, patient

        service_stats, expired, patient = asyncio.run(main())
        assert expired["verdict"] == EXPIRED and expired["source"] == "deadline"
        assert service_stats.expired == 1
        assert patient["verdict"] == "no"
        # The patient request coalesced onto (or replayed) the same flight.
        assert patient["coalesced"] or patient["source"] == "store"

    def test_decomposition_rides_along_and_validates(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.0)
            payload = await scheduler.check(_triangle(), 2)
            await scheduler.close(close_engine=True)
            return payload

        payload = asyncio.run(main())
        tree = payload["decomposition"]
        assert tree is not None
        rebuilt = decomposition_from_json(json.dumps(tree), _triangle())
        rebuilt.validate()
        assert rebuilt.integral_width <= 2

    def test_wave_failure_reports_error_not_hang(self):
        async def main():
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.0)
            payload = await scheduler.check(_triangle(), 2, method="no-such-method")
            await scheduler.close(close_engine=True)
            return payload, scheduler.stats

        payload, service_stats = asyncio.run(main())
        assert payload["verdict"] == "error"
        assert "no-such-method" in payload["error"]
        assert service_stats.errors == 1

    def test_coalescing_disabled_dispatches_every_request(self):
        """The benchmark's naive baseline: no store, no coalescing."""

        async def main():
            engine = DecompositionEngine(store=None)
            scheduler = BatchScheduler(engine, window=0.05, coalesce=False)
            await asyncio.gather(*(scheduler.check(_triangle(), 2) for _ in range(4)))
            await scheduler.close(close_engine=True)
            return engine.stats, scheduler.stats

        engine_stats, service_stats = asyncio.run(main())
        assert engine_stats.executed == 4
        assert service_stats.coalesced == 0


# ------------------------------------------------------------ HTTP transport


class TestServer:
    def test_client_session_end_to_end(self, tmp_path):
        engine = DecompositionEngine(store=ResultStore(tmp_path / "svc.db"))
        with ServiceThread(engine) as service:
            with ServiceClient(port=service.port) as client:
                assert client.healthz()["status"] == "ok"

                h = _triangle()
                check = client.check(h, 2)
                assert check["verdict"] == "yes"
                assert "decomposition" not in check  # /check strips the tree

                decomposed = client.decompose(h, 2)
                tree = decomposed["decomposition"]
                rebuilt = decomposition_from_json(json.dumps(tree), h)
                rebuilt.validate()

                width = client.width(h, max_k=5)
                assert width["width"] == 2

                race = client.portfolio(h, 2)
                assert race["verdict"] == "yes"

                stats = client.stats()
                assert stats["service"]["requests"] == 4
                assert stats["engine"]["executed"] >= 1
                assert stats["store"]["entries"] >= 1

    def test_hypergraph_as_edge_dict(self):
        engine = DecompositionEngine(store=ResultStore())
        with ServiceThread(engine) as service:
            with ServiceClient(port=service.port) as client:
                payload = client._request(
                    "POST",
                    "/check",
                    {"hypergraph": {"edges": {"a": ["1", "2"], "b": ["2", "3"]}},
                     "k": 1},
                )
                assert payload["verdict"] == "yes"

    def test_error_statuses(self):
        engine = DecompositionEngine(store=ResultStore())
        with ServiceThread(engine) as service:
            with ServiceClient(port=service.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client._request("GET", "/no-such-path")
                assert excinfo.value.status == 404

                with pytest.raises(ServiceError) as excinfo:
                    client._request("POST", "/check", {"hypergraph": "r(x,y).", "k": 0})
                assert excinfo.value.status == 400

                with pytest.raises(ServiceError) as excinfo:
                    client._request("POST", "/check", {"hypergraph": ")(", "k": 1})
                assert excinfo.value.status == 400

                with pytest.raises(ServiceError) as excinfo:
                    client._request("GET", "/check")
                assert excinfo.value.status == 405

                # The connection survives error responses.
                assert client.healthz()["status"] == "ok"

    def test_unframeable_requests_get_400_not_a_dropped_connection(self):
        """Garbage at the HTTP layer answers 400 and closes — it must not
        surface as an unhandled task exception with an empty response."""
        import socket

        engine = DecompositionEngine(store=ResultStore())
        with ServiceThread(engine) as service:
            for raw in (
                b"GARBAGE\r\n\r\n",
                b"POST /check HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
                b"POST /check HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            ):
                with socket.create_connection(("127.0.0.1", service.port), 5) as s:
                    s.sendall(raw)
                    response = b""
                    s.settimeout(5)
                    while b"\r\n\r\n" not in response:
                        chunk = s.recv(4096)
                        if not chunk:
                            break
                        response += chunk
                assert response.startswith(b"HTTP/1.1 400"), (raw, response[:80])

            # A non-UTF-8 body is a client error, not a 500.
            with socket.create_connection(("127.0.0.1", service.port), 5) as s:
                body = b"\xff\xfe{"
                s.sendall(
                    b"POST /check HTTP/1.1\r\nContent-Length: "
                    + str(len(body)).encode() + b"\r\n\r\n" + body
                )
                s.settimeout(5)
                response = s.recv(4096)
            assert response.startswith(b"HTTP/1.1 400"), response[:80]

            # ... and the server is still healthy afterwards.
            with ServiceClient(port=service.port) as client:
                assert client.healthz()["status"] == "ok"

    def test_concurrent_clients_coalesce_on_one_engine(self):
        """Eight clients on eight threads ask the same question inside one
        batching window; the shared engine dispatches exactly once."""
        engine = DecompositionEngine(store=ResultStore())
        h = cycle_hypergraph(6)
        with ServiceThread(engine, window=0.25) as service:

            def ask(_):
                with ServiceClient(port=service.port) as client:
                    return client.check(h, 2)

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(ask, range(8)))

            assert {r["verdict"] for r in results} == {"yes"}
            assert engine.stats.executed == 1
            with ServiceClient(port=service.port) as client:
                stats = client.stats()["service"]
            # Every duplicate was either coalesced onto the in-flight job or
            # (if it arrived after the wave landed) answered from the store.
            assert stats["coalesced"] + stats["store_answers"] == 7

    def test_warm_cache_restart_executes_nothing(self, tmp_path):
        """A second service session on the same cache answers entirely from
        the store: no worker dispatch, cache-hit accounting visible."""
        cache = tmp_path / "warm.db"
        h = cycle_hypergraph(7)

        first_engine = DecompositionEngine(store=ResultStore(cache))
        with ServiceThread(first_engine) as service:
            with ServiceClient(port=service.port) as client:
                cold = client.width(h, max_k=4)
        assert cold["width"] == 2
        assert first_engine.stats.executed > 0

        second_engine = DecompositionEngine(store=ResultStore(cache))
        with ServiceThread(second_engine) as service:
            with ServiceClient(port=service.port) as client:
                warm = client.width(h, max_k=4)
                warm_check = client.check(h, 2)
                stats = client.stats()
        assert warm["width"] == 2 and warm["source"] == "store"
        assert warm_check["verdict"] == "yes" and warm_check["source"] == "store"
        assert second_engine.stats.executed == 0
        assert stats["service"]["store_answers"] == 2
        assert stats["service"]["dispatched"] == 0

    def test_parallel_engine_behind_service(self):
        """A jobs>1 engine fans a wave of distinct requests across workers."""
        engine = DecompositionEngine(store=ResultStore(), jobs=2)
        graphs = [random_hypergraph(seed) for seed in range(4)]
        with ServiceThread(engine, window=0.2) as service:

            def ask(h):
                with ServiceClient(port=service.port) as client:
                    return client.check(h, 2, timeout=30.0)

            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(ask, graphs))
        assert all(r["verdict"] in ("yes", "no") for r in results)
        # One dispatch per distinct fingerprint at most (coalescing and the
        # store may dedupe further if any two random graphs coincide).
        assert 1 <= engine.stats.executed <= len({fingerprint(h) for h in graphs})


# ---------------------------------------------------- store concurrency bits


class TestStoreConcurrency:
    def test_two_connections_share_a_file(self, tmp_path):
        """WAL + busy timeout: a second process-style connection reads rows
        the first one wrote, without 'database is locked' failures."""
        path = tmp_path / "shared.db"
        writer = ResultStore(path)
        reader = ResultStore(path)
        try:
            writer.put("fp", "hd", 2, None, CheckOutcome("yes", 0.1))
            stored = reader.get("fp", "hd", 2, None)
            assert stored is not None and stored.verdict == "yes"
            assert reader.bounds("fp", "hd") == (1, 2)
        finally:
            writer.close()
            reader.close()

    def test_cross_thread_store_access(self):
        """check_same_thread=False + internal lock: many threads hammering
        one store neither crash nor corrupt the counters."""
        store = ResultStore()

        def work(i: int) -> None:
            store.put(f"fp{i % 4}", "hd", 2 + (i % 3), None, CheckOutcome("yes", 0.01))
            store.get(f"fp{i % 4}", "hd", 2, None)
            store.bounds(f"fp{i % 4}", "hd")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(64)))
        stats = store.stats
        assert stats.session_hits + stats.session_misses == 64
        store.close()

    def test_engine_reentrant_batch_submission(self):
        """Two threads submitting batches against one engine serialise on
        the dispatch lock; counters stay exact."""
        engine = DecompositionEngine(store=ResultStore())
        graphs = [random_hypergraph(seed) for seed in range(6)]

        def batch(offset: int):
            specs = [JobSpec.check(h, 2) for h in graphs[offset : offset + 3]]
            return engine.run_batch(specs)

        with ThreadPoolExecutor(max_workers=2) as pool:
            reports = list(pool.map(batch, (0, 3)))
        assert all(r.total == 3 for r in reports)
        assert engine.stats.requests == 6
        engine.close()
