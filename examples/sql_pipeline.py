"""The Section 5 SQL pipeline on the paper's own examples plus a workload.

Reproduces Listings 1–3 and Figures 1–2: conjunctive-core extraction, the
subquery dependency graph with cycle elimination, and view expansion — then
runs a TPC-H-shaped workload end-to-end and reports the width of every
extracted hypergraph.

Run with::

    python examples/sql_pipeline.py
"""

from repro.decomp import check_hd, exact_width
from repro.sql import Schema, extract_simple_queries, sql_to_hypergraphs
from repro.sql.dependency import build_dependency_graph
from repro.sql.parser import parse_sql
from repro.sql.workloads import TPCH_LIKE_QUERIES, TPCH_LIKE_SCHEMA

SCHEMA = Schema({"tab": ["a", "b", "c"], "differenttable": ["a", "b"]})

LISTING_2 = """
SELECT * FROM tab t1, tab t2
WHERE t1.a = t2.a
AND t1.b IN (SELECT tab.b FROM tab WHERE tab.c = 'ok')
AND EXISTS (SELECT * FROM differentTable dt WHERE dt.a = t1.a);
"""

LISTING_3 = """
WITH crossView AS (
  SELECT t1.a a1, t1.c c1, t2.a a2, t2.c c2
  FROM tab t1, tab t2 WHERE t1.b = t2.b
)
SELECT * FROM tab t1, tab t2, crossView cr
WHERE t1.a = cr.a1 AND t1.c = cr.a2 AND t2.a = cr.c1 AND t2.c = cr.c2;
"""


def main() -> None:
    # --- Listing 2 / Figure 1: the dependency graph -----------------------
    print("== Listing 2: subquery dependency graph (Figure 1)")
    graph = build_dependency_graph(parse_sql(LISTING_2))
    for node in graph.nodes:
        arrow = f" -> correlated with {sorted(node.correlated_with)}" if node.correlated_with else ""
        print(f"  node {node.node_id} ({node.label}) parent={node.parent}{arrow}")
    surviving = [n.label for n in graph.surviving_queries()]
    print(f"  surviving after cycle elimination: {surviving}")

    for simple in extract_simple_queries(LISTING_2, SCHEMA):
        print(f"  extracted: {simple}")

    # --- Listing 3 / Figure 2: view expansion ------------------------------
    print("\n== Listing 3: view expansion (Figure 2)")
    (h,) = sql_to_hypergraphs(LISTING_3, SCHEMA)
    for name, edge in sorted(h.edges.items()):
        print(f"  edge {name}: {sorted(edge)}")
    print(f"  cyclic: {check_hd(h, 1) is None};  hw <= 2: {check_hd(h, 2) is not None}")

    # --- A TPC-H-shaped workload -------------------------------------------
    print("\n== TPC-H-like workload")
    for i, sql in enumerate(TPCH_LIKE_QUERIES):
        for h in sql_to_hypergraphs(sql, TPCH_LIKE_SCHEMA, name=f"tpch{i}"):
            width = exact_width(check_hd, h, max_k=3).value
            print(
                f"  {h.name}: {h.num_edges} atoms, {h.num_vertices} variables, "
                f"hw = {width}"
            )


if __name__ == "__main__":
    main()
