"""Quickstart: hypergraphs, widths, and decompositions in five minutes.

Builds a few hypergraphs, computes hw / ghw / fractionally improved widths
with all the algorithms of the paper, validates every result, and prints the
decomposition trees.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Hypergraph,
    best_fractional_improvement,
    check_ghd_balsep,
    check_hd,
    compute_statistics,
    exact_width,
    improve_hd,
)


def print_tree(node, indent: int = 0) -> None:
    label = ", ".join(sorted(node.lambda_label()))
    bag = ", ".join(sorted(node.bag))
    print(f"{'  ' * indent}- bag {{{bag}}}  λ {{{label}}}")
    for child in node.children:
        print_tree(child, indent + 1)


def main() -> None:
    # 1. The triangle query R(x,y) ⋈ S(y,z) ⋈ T(z,x): the smallest cyclic CQ.
    triangle = Hypergraph(
        {"R": ["x", "y"], "S": ["y", "z"], "T": ["z", "x"]}, name="triangle"
    )
    print(f"== {triangle!r}")
    stats = compute_statistics(triangle)
    print(f"degree={stats.degree}  intersection size={stats.bip}  VC-dim={stats.vc_dim}")

    assert check_hd(triangle, 1) is None, "the triangle is cyclic"
    hd = check_hd(triangle, 2)
    hd.validate("HD")
    print("\nA hypertree decomposition of width 2:")
    print_tree(hd.root)

    # A GHD via balanced separators gives the same width here.
    ghd = check_ghd_balsep(triangle, 2)
    ghd.validate("GHD")
    print(f"\nBalSep agrees: ghw <= {ghd.integral_width}")

    # Fractional improvement: the triangle famously has fhw = 1.5.
    fhd = improve_hd(hd)
    print(f"ImproveHD: fractional width {fhd.width:.2f} (from integral 2)")
    best = best_fractional_improvement(triangle, 2, precision=0.05)
    print(f"FracImproveHD: best fractional width {best.width:.2f}")

    # 2. A larger example: exact width by iterating k (the Figure 4 protocol).
    grid = Hypergraph(
        {
            f"g{r}{c}": [f"p{r}{c}", f"p{r}{c + 1}", f"p{r + 1}{c}"]
            for r in range(3)
            for c in range(3)
        },
        name="grid",
    )
    result = exact_width(check_hd, grid, max_k=4)
    print(f"\n== {grid!r}")
    print(f"hw({grid.name}) = {result.value} "
          f"(refuted k < {result.value}, found an HD at k = {result.value})")
    result.decomposition.validate("HD")


if __name__ == "__main__":
    main()
