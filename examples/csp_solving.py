"""Decomposition-guided CSP solving vs plain backtracking.

Parses an XCSP-style instance, converts it to a hypergraph (Section 5.5),
computes a hypertree decomposition, and solves the instance both by plain
backtracking and by Yannakakis evaluation along the decomposition —
demonstrating why the paper's widths matter: the structured instance has a
huge search space but tiny width.

Run with::

    python examples/csp_solving.py
"""

import time

from repro.csp import (
    csp_to_hypergraph,
    parse_xcsp,
    solve_backtracking,
    solve_with_decomposition,
)
from repro.csp.model import Constraint, CSPInstance
from repro.decomp import check_hd, exact_width


def make_odd_cycle_instance(length: int) -> CSPInstance:
    """2-colouring an odd cycle: unsatisfiable, but of hypertree width 2.

    The variable *names* are chosen adversarially: every static ordering by
    degree/name assigns all even cycle positions first, which are mutually
    unconstrained — chronological backtracking only discovers the parity
    contradiction after enumerating exponentially many even-position
    assignments, while the decomposition solver's semi-join passes refute
    the instance in linear time.
    """
    assert length % 2 == 1
    names = {}
    for position in range(length):
        if position % 2 == 0:
            names[position] = f"a{position:03d}"  # sorted first
        else:
            names[position] = f"b{position:03d}"
    variables = {names[i]: (0, 1) for i in range(length)}
    constraints = [
        Constraint(
            f"neq{i}",
            (names[i], names[(i + 1) % length]),
            frozenset({(0, 1), (1, 0)}),
        )
        for i in range(length)
    ]
    return CSPInstance("odd-cycle", variables, constraints)


XCSP_EXAMPLE = """
<instance format="XCSP3" type="CSP">
  <variables>
    <var id="a"> 0..2 </var>
    <var id="b"> 0..2 </var>
    <var id="c"> 0..2 </var>
    <var id="d"> 0..2 </var>
  </variables>
  <constraints>
    <extension id="ab"><list>a b</list><conflicts>(0,0)(1,1)(2,2)</conflicts></extension>
    <extension id="bc"><list>b c</list><conflicts>(0,0)(1,1)(2,2)</conflicts></extension>
    <extension id="cd"><list>c d</list><conflicts>(0,0)(1,1)(2,2)</conflicts></extension>
    <extension id="da"><list>d a</list><conflicts>(0,0)(1,1)(2,2)</conflicts></extension>
  </constraints>
</instance>
"""


def main() -> None:
    # --- An XCSP instance end to end ---------------------------------------
    print("== XCSP: 3-colouring a 4-cycle")
    instance = parse_xcsp(XCSP_EXAMPLE, name="c4-colouring")
    h = csp_to_hypergraph(instance)
    width = exact_width(check_hd, h, max_k=3).value
    print(f"  hypergraph: {h.num_vertices} variables, {h.num_edges} constraints, hw = {width}")

    solution = solve_with_decomposition(instance)
    print(f"  decomposition solver: {solution}")
    assert instance.check(solution)
    assert solve_backtracking(instance) is not None

    # --- Structured instance: decomposition wins ---------------------------
    print("\n== Odd cycle: backtracking vs decomposition-guided refutation")
    instance = make_odd_cycle_instance(length=29)

    start = time.perf_counter()
    bt = solve_backtracking(instance)
    bt_time = time.perf_counter() - start

    start = time.perf_counter()
    dec = solve_with_decomposition(instance, max_width=2)
    dec_time = time.perf_counter() - start

    assert bt is None and dec is None, "an odd cycle is not 2-colourable"
    print(f"  backtracking:    {bt_time * 1000:8.1f} ms")
    print(f"  decomposition:   {dec_time * 1000:8.1f} ms")
    print(f"  speedup:         {bt_time / dec_time:8.1f}x")


if __name__ == "__main__":
    main()
