"""A tour of the HyperBench benchmark and its analysis pipeline.

Builds the synthetic benchmark (scaled down), computes the Table 2
properties, runs the Figure 4 hw analysis and a slice of the Table 3/4 GHD
comparison, prints the paper-style tables, and writes the web-tool artefacts
(CSV export + static HTML report).

Run with::

    python examples/benchmark_tour.py
"""

from pathlib import Path

from repro.analysis.experiments import (
    figure4_hw,
    table1_overview,
    table2_properties,
    table4_ghw_portfolio,
)
from repro.analysis.ghw_analysis import run_ghw_analysis
from repro.analysis.hw_analysis import run_hw_analysis
from repro.benchmark import build_default_benchmark
from repro.benchmark.report import write_html_report


def main() -> None:
    print("Building the synthetic HyperBench benchmark ...")
    repository = build_default_benchmark(scale=0.15, seed=7)
    print(f"  {len(repository)} hypergraphs in {len(repository.classes())} classes")

    print("Computing structural properties (Table 2 metrics) ...")
    repository.compute_all_statistics()

    print("Running the hw analysis (Figure 4 protocol) ...")
    hw = run_hw_analysis(repository, max_k=5, timeout=1.0)

    print("Running the GHD comparison (Tables 3/4 protocol) ...\n")
    ghw = run_ghw_analysis(repository, ks=(3, 4), timeout=1.0)

    print(table1_overview(repository).rendered, "\n")
    print(table2_properties(repository).rendered, "\n")
    print(figure4_hw(hw).rendered, "\n")
    print(table4_ghw_portfolio(ghw).rendered, "\n")

    out_dir = Path(__file__).resolve().parent / "output"
    out_dir.mkdir(exist_ok=True)
    report = write_html_report(repository, out_dir / "hyperbench.html")
    (out_dir / "hyperbench.csv").write_text(repository.to_csv(), encoding="utf-8")
    print(f"Web-tool artefacts written: {report} and {out_dir / 'hyperbench.csv'}")


if __name__ == "__main__":
    main()
