"""A gallery of hypergraphs and all their widths side by side.

For each instance the script reports treewidth (tw), hypertree width (hw),
generalized hypertree width (ghw) and the best fractionally improved width
(an upper bound on fhw), illustrating the paper's width hierarchy

    fhw(H) <= ghw(H) <= hw(H) <= tw(H) + 1

and where the inequalities are strict.

Run with::

    python examples/width_zoo.py
"""

from repro.core.hypergraph import Hypergraph
from repro.core.treewidth import treewidth_exact
from repro.decomp import (
    best_fractional_improvement,
    check_ghd_balsep,
    check_hd,
    exact_width,
)
from repro.utils.tables import render_table


def cycle(n: int) -> Hypergraph:
    return Hypergraph(
        {f"c{i}": [f"x{i}", f"x{(i + 1) % n}"] for i in range(n)}, name=f"C{n}"
    )


def clique(n: int) -> Hypergraph:
    return Hypergraph(
        {
            f"e{i}_{j}": [f"v{i}", f"v{j}"]
            for i in range(n)
            for j in range(i + 1, n)
        },
        name=f"K{n}",
    )


ZOO = [
    Hypergraph({"wide": ["a", "b", "c", "d", "e"]}, name="one-wide-edge"),
    Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="triangle"),
    cycle(6),
    clique(4),
    clique(5),
    Hypergraph(
        {
            "fact": ["k1", "k2", "k3"],
            "d1": ["k1", "a"],
            "d2": ["k2", "b"],
            "d3": ["k3", "c"],
        },
        name="star-join",
    ),
    Hypergraph(
        {f"g{r}{c}": [f"p{r}{c}", f"p{r}{c + 1}", f"p{r + 1}{c}"]
         for r in range(3) for c in range(3)},
        name="pebbling-grid",
    ),
]


def main() -> None:
    rows = []
    for h in ZOO:
        tw = treewidth_exact(h)
        hw_result = exact_width(check_hd, h, max_k=tw + 1)
        hw = hw_result.value
        # ghw: try to improve on hw by one (Table 3 protocol).
        ghw = hw
        if hw is not None and hw >= 2 and check_ghd_balsep(h, hw - 1) is not None:
            ghw = hw - 1
        best = best_fractional_improvement(h, hw, precision=0.05) if hw else None
        fhw_bound = round(best.width, 2) if best else None
        rows.append(
            [h.name, h.num_vertices, h.num_edges, tw, hw, ghw, fhw_bound]
        )
        # The hierarchy must hold everywhere.
        assert fhw_bound <= ghw <= hw <= tw + 1
    print(
        render_table(
            ["instance", "V", "E", "tw", "hw", "ghw", "fhw <="],
            rows,
            title="The width zoo: fhw <= ghw <= hw <= tw + 1",
        )
    )
    print("\nNote the wide single edge: tw = 4 but hw = 1 — hypergraph")
    print("decompositions beat graph decompositions on high-arity atoms.")


if __name__ == "__main__":
    main()
