"""A cached batch sweep with the decomposition engine.

Builds a small slice of the synthetic benchmark, then runs the same
exact-width + portfolio job list twice through a persistent
:class:`repro.engine.DecompositionEngine`:

* run 1 executes every job in worker processes (hard timeouts) and journals
  each finished job, so an interrupted sweep resumes where it stopped;
* run 2 is served entirely from the SQLite result store — zero checks run.

Run with::

    PYTHONPATH=src python examples/engine_batch.py
"""

import tempfile
from pathlib import Path

from repro.benchmark.build import build_default_benchmark
from repro.engine import DecompositionEngine, JobSpec, ResultStore


def run_sweep(engine: DecompositionEngine, specs, journal: Path, label: str) -> None:
    report = engine.run_batch(specs, journal=journal)
    print(f"== {label}")
    print(f"   jobs       {report.total}")
    print(f"   resumed    {report.resumed}  (already in the journal)")
    print(f"   cache hits {report.cache_hits}  (served by the result store)")
    print(f"   executed   {report.executed}")
    for result in report.results[:5]:
        bounds = (
            f" width in [{result.lower}, {result.upper}]"
            if result.spec.kind == "width"
            else ""
        )
        winner = f" winner={result.winner}" if result.winner else ""
        print(
            f"   {result.spec.kind:<9} {result.spec.name:<16} "
            f"{result.verdict:<7} {result.seconds:.3f}s{bounds}{winner}"
        )
    print(f"   ... ({len(report.results)} results total)")


def main() -> None:
    repository = build_default_benchmark(scale=0.05, seed=11)
    hypergraphs = [entry.hypergraph for entry in repository]

    specs = [JobSpec.width(h, max_k=4, timeout=10.0) for h in hypergraphs[:8]]
    specs += [JobSpec.portfolio(h, 2, timeout=10.0) for h in hypergraphs[:4]]

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "results.db"
        with DecompositionEngine(store=ResultStore(store_path), jobs=4) as engine:
            run_sweep(engine, specs, Path(tmp) / "run1.jsonl", "cold sweep (executes)")
            run_sweep(engine, specs, Path(tmp) / "run2.jsonl", "warm sweep (cached)")
            stats = engine.store.stats
            print(
                f"store: {stats.entries} entries, "
                f"{stats.hits} hits / {stats.misses} misses "
                f"({stats.hit_rate:.0%} lifetime hit rate)"
            )


if __name__ == "__main__":
    main()
