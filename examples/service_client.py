"""A client session against a running decomposition service.

Start a service first (any cache path works; the point is that every client
shares it)::

    PYTHONPATH=src python -m repro serve --port 8080 --cache results.db --jobs 2

then run this walkthrough against it::

    PYTHONPATH=src python examples/service_client.py --port 8080

The script demonstrates — and *asserts* — the service's three layers of
work-avoidance:

1. a cold ``/check`` executes on the engine;
2. an identical second request is answered from the shared result store
   (no dispatch — this is the warm-cache property CI gates on);
3. a burst of concurrent duplicate requests is coalesced onto in-flight
   work, so the whole burst costs at most one additional dispatch.

Exit status is non-zero if any of those properties fails, so the script
doubles as the CI service smoke test.

With ``--overload N`` the script instead becomes a burst driver for a
service running with tight admission budgets (``repro serve
--max-pending …``): it fires N *distinct* concurrent requests, tallies
the statuses, and asserts that every answer is a clean 200, 429 or 503 —
an overloaded service must refuse work, never fail it with a 500.  Used
by the CI chaos-smoke step (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import argparse
import collections
import sys
from concurrent.futures import ThreadPoolExecutor

from repro.core.hypergraph import Hypergraph
from repro.service import ServiceClient
from repro.service.client import ServiceError


def overload_burst(host: str, port: int, burst: int) -> int:
    """Fire ``burst`` distinct concurrent checks; assert no 5xx escapes."""

    def distinct(tag: int) -> Hypergraph:
        # A (tag+3)-cycle plus a pendant edge: every request has a unique
        # fingerprint, so coalescing cannot absorb the burst — admission
        # control has to do the refusing.
        n = 3 + tag
        edges = {f"c{i}": [f"x{i}", f"x{(i + 1) % n}"] for i in range(n)}
        edges["pendant"] = ["x0", f"p{tag}"]
        return Hypergraph(edges, name=f"burst{tag}")

    statuses: collections.Counter[int] = collections.Counter()

    def ask(tag: int) -> None:
        with ServiceClient(host=host, port=port, timeout=120.0) as client:
            try:
                result = client.check(distinct(tag), 2, tenant=f"t{tag % 4}")
            except ServiceError as exc:
                statuses[exc.status] += 1
                if exc.status in (429, 503):
                    assert exc.payload.get("verdict") == "rejected", exc.payload
            else:
                statuses[200] += 1
                assert result["verdict"] in ("yes", "no", "expired"), result

    with ThreadPoolExecutor(max_workers=burst) as pool:
        list(pool.map(ask, range(burst)))

    served = statuses[200]
    refused = statuses[429] + statuses[503]
    other = {s: n for s, n in statuses.items() if s not in (200, 429, 503)}
    print(f"overload burst of {burst}: {served} served, "
          f"{statuses[429]}x429, {statuses[503]}x503, other={other}")
    assert not other, f"overloaded service answered non-200/429/503: {other}"
    assert served + refused == burst, statuses
    assert served >= 1, "overloaded service served nothing at all"
    print("overload burst ok: every request was served or cleanly refused")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--overload", type=int, default=0, metavar="N",
        help="instead of the walkthrough, fire N distinct concurrent "
             "requests and assert the service only answers 200/429/503",
    )
    args = parser.parse_args(argv)

    if args.overload:
        return overload_burst(args.host, args.port, args.overload)

    # The paper's running example: the triangle query, hw = ghw = 2.
    triangle = Hypergraph(
        {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name="triangle"
    )
    # A 6-cycle for the burst (cyclic, hw = 2 — a slightly bigger search).
    cycle = Hypergraph(
        {f"c{i}": [f"x{i}", f"x{(i + 1) % 6}"] for i in range(6)}, name="cycle6"
    )

    with ServiceClient(host=args.host, port=args.port) as client:
        health = client.healthz()
        print(f"service up (uptime {health['uptime']}s)")

        # 1. Cold check: reaches the engine.
        cold = client.check(triangle, 2)
        print(f"check(triangle, 2) -> {cold['verdict']}  "
              f"(source={cold['source']}, {cold['seconds']}s)")
        assert cold["verdict"] == "yes", cold

        # 2. Identical request again: the store answers, nothing dispatches.
        warm = client.check(triangle, 2)
        print(f"check(triangle, 2) -> {warm['verdict']}  (source={warm['source']})")
        assert warm["source"] == "store" and warm["cached"], (
            f"second identical request was not served from the cache: {warm}"
        )

        # ... and the bounds index answers k we never asked about.
        implied = client.check(triangle, 5)
        print(f"check(triangle, 5) -> {implied['verdict']}  "
              f"(implied={implied['implied']})")
        assert implied["implied"], implied

        # 3. A concurrent duplicate burst coalesces onto one flight.
        before = client.stats()["engine"]["executed"]

        def ask(_: int) -> dict:
            with ServiceClient(host=args.host, port=args.port) as c:
                return c.check(cycle, 2)

        with ThreadPoolExecutor(max_workers=8) as pool:
            burst = list(pool.map(ask, range(8)))
        assert {r["verdict"] for r in burst} == {"yes"}, burst

        stats = client.stats()
        dispatched = stats["engine"]["executed"] - before
        print(f"burst of 8 duplicate checks -> {dispatched} dispatch(es), "
              f"{stats['service']['coalesced']} coalesced, "
              f"{stats['service']['store_answers']} store-answered so far")
        assert dispatched <= 1, stats

        # The full protocol surface, for completeness.
        width = client.width(cycle, max_k=4)
        print(f"width(cycle6) = {width.get('width')}")
        tree = client.decompose(triangle, 2)["decomposition"]
        print(f"decompose(triangle, 2): {tree['kind']} with "
              f"root bag {sorted(tree['root']['bag'])}")

    print("service walkthrough ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
