"""Packaging for the HyperBench reproduction library."""

from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent
_README = _HERE / "README.md"

setup(
    name="repro-hyperbench",
    version="1.2.0",
    description=(
        "Reproduction of 'HyperBench: A Benchmark and Tool for Hypergraphs "
        "and Empirical Findings' — hypergraph decompositions, benchmark "
        "generators, a parallel cache-backed decomposition engine, and a "
        "coalescing HTTP batch service over a shared result store"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Mathematics",
        "Topic :: Database",
    ],
)
