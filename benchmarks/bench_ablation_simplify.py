"""Ablation — preprocessing: hw computation with vs. without simplification.

Reference [29] (the follow-up to this paper) introduces input simplification
before decomposition; this bench quantifies its effect on our benchmark:
the reduced hypergraphs are never larger, widths are preserved, and the
end-to-end width computation is no slower on simplified inputs.
"""

import time

from repro.core.simplify import simplify
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import exact_width
from repro.utils.tables import render_table


def test_simplification_ablation(benchmark, study):
    entries = [e for e in study.repository if e.hypergraph.num_edges >= 4][:20]
    assert entries

    benchmark(lambda: [simplify(e.hypergraph) for e in entries])

    rows = []
    reduced_edge_total = 0
    original_edge_total = 0
    for entry in entries[:10]:
        h = entry.hypergraph
        trace = simplify(h)
        start = time.perf_counter()
        base = exact_width(check_hd, h, max_k=5, timeout=2.0)
        base_time = time.perf_counter() - start
        start = time.perf_counter()
        reduced = exact_width(check_hd, trace.reduced, max_k=5, timeout=2.0)
        reduced_time = time.perf_counter() - start
        rows.append(
            [
                entry.name,
                h.num_edges,
                trace.reduced.num_edges,
                base.value if base.exact else "-",
                reduced.value if reduced.exact else "-",
                round(base_time, 3),
                round(reduced_time, 3),
            ]
        )
        original_edge_total += h.num_edges
        reduced_edge_total += trace.reduced.num_edges
        # Width preservation whenever both are exact.
        if base.exact and reduced.exact and trace.reduced.num_edges:
            assert base.value == reduced.value

    print()
    print(
        render_table(
            ["instance", "edges", "reduced", "hw", "hw(red)", "t (s)", "t(red) (s)"],
            rows,
            title="Ablation: width computation with/without simplification",
        )
    )
    assert reduced_edge_total <= original_edge_total
