"""Table 3 — comparison of the three Check(GHD, k) algorithms.

Times each algorithm on a representative cyclic instance and prints the
regenerated per-algorithm table from the shared study.
"""

import pytest

from repro.analysis.experiments import table3_ghw_algorithms
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.globalbip import check_ghd_global_bip
from repro.decomp.localbip import check_ghd_local_bip
from tests.conftest import clique_hypergraph

#: A definite negative instance: K5 has ghw = 3, so Check(GHD, 2) forces
#: every algorithm to exhaust its search space — the regime Table 3 probes.
GRID = clique_hypergraph(5)

ALGORITHMS = {
    "GlobalBIP": check_ghd_global_bip,
    "LocalBIP": check_ghd_local_bip,
    "BalSep": check_ghd_balsep,
}


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_table3_algorithm_kernel(benchmark, name, study):
    check = ALGORITHMS[name]
    result = benchmark.pedantic(
        lambda: check(GRID, 2), rounds=1, iterations=1
    )
    assert result is None  # definite "no" for all three

    if name == "BalSep":  # print the table once
        table = table3_ghw_algorithms(study.ghw)
        print()
        print(table.rendered)

        # Shape (paper): BalSep answers the most "no"-instances of the three.
        no_counts = {}
        for algorithm in ALGORITHMS:
            no_counts[algorithm] = sum(
                cell.no
                for (alg, _k), cell in study.ghw.algorithm_cells.items()
                if alg == algorithm
            )
        assert no_counts["BalSep"] >= no_counts["GlobalBIP"]
        assert no_counts["BalSep"] >= no_counts["LocalBIP"]
