"""Table 1 — benchmark overview: instance counts and cyclic (hw >= 2) counts.

Times the cyclicity check (``Check(HD, 1)``) over the whole benchmark, the
operation behind Table 1's last column, and prints the regenerated table.
"""

from repro.analysis.experiments import table1_overview
from repro.decomp.detkdecomp import check_hd


def test_table1_cyclicity_scan(benchmark, study):
    repo = study.repository

    def scan():
        return sum(
            1 for entry in repo if check_hd(entry.hypergraph, 1) is None
        )

    cyclic = benchmark(scan)
    result = table1_overview(repo)
    print()
    print(result.rendered)

    # Shape: the scan agrees with the bounds recorded by the hw analysis.
    assert cyclic == result.rows[-1][2]
    # Shape: application CQs are mostly acyclic or mildly cyclic, while the
    # CSP classes are (nearly) all cyclic — as in the paper's Table 1.
    by_class = {row[0]: (row[1], row[2]) for row in result.rows}
    total, cyc = by_class["CSP Random"]
    assert cyc == total
    total, cyc = by_class["CQ Application"]
    assert cyc < total
