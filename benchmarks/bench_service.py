#!/usr/bin/env python
"""Service throughput: coalesced scheduler vs naive per-request dispatch.

Simulates the service's target workload — a duplicate-heavy burst of
concurrent requests, the shape "many users ask about the same popular
instances" produces — and measures what the scheduler's three dedup layers
buy over dispatching every request individually:

* **coalesced** — the production configuration: a fresh store, duplicate
  coalescing on, a batching window.  The burst costs one engine dispatch
  per *distinct* (hypergraph, k) plus scheduler overhead.
* **naive** — the pre-service baseline: no store, no coalescing, window 0.
  Every request reaches the engine and executes.

Both modes run the same burst (``--requests`` total, ``--unique`` distinct
instances, each duplicated ``requests / unique`` times) through the same
in-process asyncio path, so the delta is pure scheduling — no HTTP noise.
Results land in the ``"service"`` section of ``BENCH_kernel.json`` (merged
in place, next to the kernel and dispatch sections)::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --requests 64 --unique 8

Exit status is non-zero if any verdict disagrees between the two modes or
if the coalesced run dispatches more than one wave of work per distinct
instance.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.engine import DecompositionEngine, ResultStore
from repro.service import BatchScheduler


def _instances(unique: int) -> list[Hypergraph]:
    """Distinct copies of K7 — a ~20 ms refutation at k=3, so a burst costs
    genuine search work.  Vertex names differ per copy, so each instance has
    its own content fingerprint (renamed copies would share cache rows)."""
    graphs = []
    for i in range(unique):
        edges = {
            f"e{a}_{b}": [f"i{i}v{a}", f"i{i}v{b}"]
            for a in range(7)
            for b in range(a + 1, 7)
        }
        graphs.append(Hypergraph(edges, name=f"burst{i}"))
    return graphs


async def _run_burst(
    scheduler: BatchScheduler, graphs: list[Hypergraph], requests: int, k: int
) -> list[dict]:
    """Fire ``requests`` concurrent checks, round-robin over ``graphs``."""
    jobs = [
        scheduler.check(graphs[i % len(graphs)], k) for i in range(requests)
    ]
    return await asyncio.gather(*jobs)


def _measure(mode: str, graphs: list[Hypergraph], requests: int, k: int) -> dict:
    async def body() -> tuple[float, list[dict], dict, dict]:
        if mode == "coalesced":
            engine = DecompositionEngine(store=ResultStore())
            scheduler = BatchScheduler(engine, window=0.01, coalesce=True)
        else:
            engine = DecompositionEngine(store=None)
            scheduler = BatchScheduler(engine, window=0.0, coalesce=False)
        start = time.perf_counter()
        results = await _run_burst(scheduler, graphs, requests, k)
        elapsed = time.perf_counter() - start
        service_stats = scheduler.stats.snapshot()
        engine_stats = engine.stats.snapshot()
        await scheduler.close(close_engine=True)
        return elapsed, results, service_stats, engine_stats

    elapsed, results, service_stats, engine_stats = asyncio.run(body())
    return {
        "seconds": elapsed,
        "requests_per_second": requests / elapsed if elapsed else None,
        "executed": engine_stats["executed"],
        "coalesced": service_stats["coalesced"],
        "store_answers": service_stats["store_answers"],
        "waves": service_stats["waves"],
        "verdicts": [r["verdict"] for r in results],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--requests", type=int, default=64,
                        help="total concurrent requests in the burst")
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct instances the burst cycles over")
    parser.add_argument("-k", type=int, default=3)
    parser.add_argument("--out", type=Path, default=Path("BENCH_kernel.json"),
                        help="report file; the 'service' section is merged in place")
    args = parser.parse_args(argv)

    graphs = _instances(args.unique)
    naive = _measure("naive", graphs, args.requests, args.k)
    coalesced = _measure("coalesced", graphs, args.requests, args.k)

    failures = []
    if coalesced["verdicts"] != naive["verdicts"]:
        failures.append("verdicts disagree between coalesced and naive modes")
    if coalesced["executed"] > args.unique:
        failures.append(
            f"coalesced mode dispatched {coalesced['executed']} > "
            f"{args.unique} distinct instances"
        )
    if naive["executed"] != args.requests:
        failures.append(
            f"naive mode should execute every request "
            f"({naive['executed']} != {args.requests})"
        )

    section = {
        "requests": args.requests,
        "unique_instances": args.unique,
        "k": args.k,
        "coalesced": {key: value for key, value in coalesced.items() if key != "verdicts"},
        "naive": {key: value for key, value in naive.items() if key != "verdicts"},
        "speedup": naive["seconds"] / coalesced["seconds"],
        "dispatch_ratio": naive["executed"] / max(1, coalesced["executed"]),
    }

    report = {}
    if args.out.exists():
        report = json.loads(args.out.read_text(encoding="utf-8"))
    report["service"] = section
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    print(f"burst: {args.requests} requests over {args.unique} distinct instances")
    print(f"naive     : {naive['seconds']:.3f}s, {naive['executed']} dispatches")
    print(f"coalesced : {coalesced['seconds']:.3f}s, {coalesced['executed']} dispatches, "
          f"{coalesced['coalesced']} coalesced, {coalesced['store_answers']} store-answered")
    print(f"speedup   : {section['speedup']:.2f}x wall, "
          f"{section['dispatch_ratio']:.1f}x fewer dispatches -> {args.out}")
    if failures:
        print("FAILURES:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
