"""Ablation — separator-ordering heuristics in DetKDecomp.

The paper notes that NewDetKDecomp "added heuristics to speed up the basic
algorithm".  This bench times the same Check(HD, k) queries under the three
candidate orderings (coverage-first, degree-weighted, plain name order) and
verifies the verdicts are ordering-independent.
"""

import time

import pytest

from repro.decomp.detkdecomp import DetKDecomp
from repro.utils.tables import render_table


def _instances(study):
    picked = [e for e in study.repository if 8 <= e.hypergraph.num_edges <= 30][:8]
    assert picked
    return picked


@pytest.mark.parametrize("heuristic", DetKDecomp.HEURISTICS)
def test_heuristic_kernel(benchmark, study, heuristic):
    entries = _instances(study)

    def sweep():
        return [
            DetKDecomp(e.hypergraph, 2, heuristic=heuristic).decompose() is not None
            for e in entries
        ]

    verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)

    if heuristic == DetKDecomp.HEURISTICS[-1]:
        rows = []
        for entry in entries:
            cells = [entry.name, entry.hypergraph.num_edges]
            answers = set()
            for h_name in DetKDecomp.HEURISTICS:
                start = time.perf_counter()
                result = DetKDecomp(entry.hypergraph, 2, heuristic=h_name).decompose()
                cells.append(round(time.perf_counter() - start, 4))
                answers.add(result is not None)
            assert len(answers) == 1  # verdict never depends on the ordering
            rows.append(cells)
        print()
        print(
            render_table(
                ["instance", "edges"] + [f"{h} (s)" for h in DetKDecomp.HEURISTICS],
                rows,
                title="Ablation: DetKDecomp separator-ordering heuristics (k = 2)",
            )
        )
    assert isinstance(verdicts, list)
