#!/usr/bin/env python
"""Overload behaviour: goodput and tail latency with admission control on vs off.

Offers the scheduler a burst of **4x its pending capacity** — every request
distinct, so coalescing and the store cannot absorb any of it — and measures
what admission control buys under that overload:

* **admission on** — ``AdmissionController(max_pending = burst / 4)``: the
  scheduler keeps at most a quarter of the burst queued and refuses the
  rest instantly with ``rejected/capacity``.  Served requests see a short
  queue; refused requests get a sub-millisecond answer and a
  ``retry_after`` hint instead of a long stall.
* **admission off** — the pre-robustness baseline: everything queues,
  everything is eventually served, and the tail of the queue pays the
  full serialized wait.

Both modes run the same burst through the same in-process asyncio path (no
HTTP noise).  Results land in the ``"overload"`` section of
``BENCH_kernel.json`` (merged in place, next to the kernel / dispatch /
service sections)::

    PYTHONPATH=src python benchmarks/bench_overload.py
    PYTHONPATH=src python benchmarks/bench_overload.py --requests 64

Exit status is non-zero if either mode produces an ``error`` verdict, if
admission-on fails to refuse anything (the burst was not an overload), or
if admission-off fails to serve the whole burst.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.engine import DecompositionEngine, ResultStore
from repro.service import AdmissionController, BatchScheduler, Rejected


def _instances(count: int) -> list[Hypergraph]:
    """``count`` distinct copies of K7 — a ~20 ms refutation at k=3, so the
    burst costs genuine search work and the pending queue genuinely backs
    up.  Distinct vertex names give every copy its own fingerprint."""
    graphs = []
    for i in range(count):
        edges = {
            f"e{a}_{b}": [f"i{i}v{a}", f"i{i}v{b}"]
            for a in range(7)
            for b in range(a + 1, 7)
        }
        graphs.append(Hypergraph(edges, name=f"overload{i}"))
    return graphs


def _percentile(samples: list[float], q: float) -> float | None:
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _measure(graphs: list[Hypergraph], k: int, max_pending: int | None) -> dict:
    async def body() -> tuple[float, list[tuple[str, float]], dict]:
        engine = DecompositionEngine(store=ResultStore())
        admission = (
            AdmissionController(max_pending=max_pending)
            if max_pending is not None
            else None
        )
        scheduler = BatchScheduler(
            engine, window=0.005, max_wave=4, admission=admission
        )

        async def one(graph: Hypergraph) -> tuple[str, float]:
            start = time.perf_counter()
            try:
                result = await scheduler.check(graph, k)
            except Rejected:
                return "rejected", time.perf_counter() - start
            return result["verdict"], time.perf_counter() - start

        start = time.perf_counter()
        outcomes = await asyncio.gather(*(one(g) for g in graphs))
        elapsed = time.perf_counter() - start
        stats = scheduler.stats.snapshot()
        await scheduler.close(close_engine=True)
        return elapsed, list(outcomes), stats

    elapsed, outcomes, stats = asyncio.run(body())
    served = [lat for verdict, lat in outcomes if verdict in ("yes", "no")]
    rejected = [lat for verdict, lat in outcomes if verdict == "rejected"]
    errors = sum(1 for verdict, _ in outcomes if verdict == "error")
    return {
        "seconds": elapsed,
        "served": len(served),
        "rejected": len(rejected),
        "errors": errors,
        "goodput_rps": len(served) / elapsed if elapsed else None,
        "served_p50_seconds": _percentile(served, 0.50),
        "served_p99_seconds": _percentile(served, 0.99),
        "rejected_p99_seconds": _percentile(rejected, 0.99),
        "waves": stats["waves"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--requests", type=int, default=48,
                        help="burst size; admission capacity is a quarter of it")
    parser.add_argument("-k", type=int, default=3)
    parser.add_argument("--out", type=Path, default=Path("BENCH_kernel.json"),
                        help="report file; the 'overload' section is merged in place")
    args = parser.parse_args(argv)

    capacity = max(1, args.requests // 4)
    graphs = _instances(args.requests)
    off = _measure(graphs, args.k, max_pending=None)
    on = _measure(graphs, args.k, max_pending=capacity)

    failures = []
    if on["errors"] or off["errors"]:
        failures.append(
            f"overload produced error verdicts (on={on['errors']}, "
            f"off={off['errors']}) — refusals must be clean"
        )
    if not on["rejected"]:
        failures.append("admission-on refused nothing: the burst was not an overload")
    if on["served"] + on["rejected"] != args.requests:
        failures.append(
            f"admission-on lost requests "
            f"({on['served']} served + {on['rejected']} rejected != {args.requests})"
        )
    if off["served"] != args.requests:
        failures.append(
            f"admission-off should serve the whole burst "
            f"({off['served']} != {args.requests})"
        )

    section = {
        "requests": args.requests,
        "max_pending": capacity,
        "k": args.k,
        "admission_on": on,
        "admission_off": off,
        "p99_ratio": (
            off["served_p99_seconds"] / on["served_p99_seconds"]
            if on["served_p99_seconds"] and off["served_p99_seconds"]
            else None
        ),
    }

    report = {}
    if args.out.exists():
        report = json.loads(args.out.read_text(encoding="utf-8"))
    report["overload"] = section
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    print(f"burst: {args.requests} distinct requests, capacity {capacity} "
          f"(4x overload), k={args.k}")
    print(f"admission off: {off['served']} served in {off['seconds']:.3f}s, "
          f"goodput {off['goodput_rps']:.1f} rps, "
          f"p99 {off['served_p99_seconds']:.3f}s")
    print(f"admission on : {on['served']} served + {on['rejected']} refused in "
          f"{on['seconds']:.3f}s, goodput {on['goodput_rps']:.1f} rps, "
          f"served p99 {on['served_p99_seconds']:.3f}s, "
          f"refusal p99 {on['rejected_p99_seconds'] * 1000:.1f}ms")
    if section["p99_ratio"]:
        print(f"tail relief  : {section['p99_ratio']:.1f}x lower served p99 "
              f"under admission control -> {args.out}")
    if failures:
        print("FAILURES:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
