"""Figure 5 — pairwise correlation of the nine hypergraph metrics.

Times the correlation computation and prints the regenerated matrix.
"""

from repro.analysis.correlation import METRICS, correlation_matrix
from repro.analysis.experiments import figure5_correlation


def test_figure5_correlations(benchmark, study):
    matrix = benchmark(correlation_matrix, study.repository)

    result = figure5_correlation(study.repository)
    print()
    print(result.rendered)

    # Shape: the multi-intersection metrics are highly correlated with each
    # other (the paper: "of course, the different intersection sizes ... are
    # highly correlated").
    bip = METRICS.index("bip")
    bmip3 = METRICS.index("3-BMIP")
    assert matrix[bip, bmip3] >= 0.5

    # The matrix is a valid correlation matrix.
    assert (abs(matrix) <= 1.0 + 1e-9).all()
    assert all(matrix[i, i] == 1.0 for i in range(len(METRICS)))
