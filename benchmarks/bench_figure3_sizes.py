"""Figure 3 — hypergraph size distributions (vertices / edges / arity).

Times the bucketing pass and prints the regenerated distribution table.
"""

from repro.analysis.experiments import figure3_sizes


def test_figure3_size_distributions(benchmark, study):
    result = benchmark(figure3_sizes, study.repository)
    print()
    print(result.rendered)

    rows = result.rows
    # Shape: CQ Application instances are the smallest (most have <= 10
    # edges), and arity > 20 appears nowhere at benchmark scale.
    cq_app_edges = [
        r for r in rows if r[0] == "CQ Application" and r[1] == "edges"
    ]
    small = sum(r[3] for r in cq_app_edges if r[2] == "1-10")
    total = sum(r[3] for r in cq_app_edges)
    assert small >= total * 0.5

    # Shape: more than 50% of all hypergraphs have arity < 5 (paper, §5.6).
    arity_rows = [r for r in rows if r[1] == "arity"]
    low = sum(r[3] for r in arity_rows if r[2] == "1-5")
    assert low >= sum(r[3] for r in arity_rows) * 0.5
