"""Table 4 — the parallel portfolio over the three GHD algorithms.

Times a portfolio invocation on a representative instance and prints the
regenerated Table 4.
"""

from repro.analysis.experiments import table4_ghw_portfolio
from repro.decomp.driver import NO, ghd_portfolio
from tests.conftest import clique_hypergraph


def test_table4_portfolio(benchmark, study):
    k5 = clique_hypergraph(5)  # hw = ghw = 3

    def portfolio():
        best, _ = ghd_portfolio(k5, 2, timeout=5.0)
        return best

    best = benchmark.pedantic(portfolio, rounds=1, iterations=1)
    assert best.verdict == NO

    table = table4_ghw_portfolio(study.ghw)
    print()
    print(table.rendered)

    # Shape (paper, Section 6.4): in the vast majority of *solved* cases no
    # width improvement is possible — "no" dominates "yes".
    total_yes = sum(c.yes for c in study.ghw.portfolio_cells.values())
    total_no = sum(c.no for c in study.ghw.portfolio_cells.values())
    if total_yes + total_no:
        assert total_no >= total_yes

    # Shape: the portfolio solves at least as many instances as any single
    # algorithm (it answers whenever anyone answers).
    for algorithm in ("GlobalBIP", "LocalBIP", "BalSep"):
        solo = sum(
            cell.yes + cell.no
            for (alg, _k), cell in study.ghw.algorithm_cells.items()
            if alg == algorithm
        )
        combined = total_yes + total_no
        assert combined >= solo
