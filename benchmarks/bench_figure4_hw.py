"""Figure 4 — the hw analysis: yes/no/timeout counts per class and k.

Times one full Figure 4 sweep on a freshly built benchmark (single round —
this is the expensive experiment) and prints the table from the shared study.
"""

from repro.analysis.experiments import figure4_hw
from repro.analysis.hw_analysis import run_hw_analysis
from repro.benchmark.build import build_default_benchmark


def test_figure4_hw_analysis(benchmark, study):
    def sweep():
        fresh = build_default_benchmark(scale=0.08, seed=123)
        return run_hw_analysis(fresh, max_k=5, timeout=0.5)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    result = figure4_hw(study.hw)
    print()
    print(result.rendered)

    rows = result.rows
    # Shape: every CQ Application instance resolves by k = 3 (paper: all
    # non-random CQs have hw <= 3).
    cq_app = [r for r in rows if r[0] == "CQ Application"]
    assert max(r[1] for r in cq_app) <= 3

    # Shape: CSP classes need larger k than the CQ classes.
    csp_ks = [r[1] for r in rows if r[0].startswith("CSP")]
    assert max(csp_ks) >= 3

    # Shape: CSP Random gets no yes-answer at k = 1 (all cyclic).
    csp_random_k1 = [r for r in rows if r[0] == "CSP Random" and r[1] == 1]
    assert csp_random_k1 and csp_random_k1[0][2] == 0
