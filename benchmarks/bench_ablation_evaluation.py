"""Ablation — do decompositions actually speed up evaluation?

The paper's motivation (and its Ghionna-et-al. related work) is that
bounded-width decompositions make CQ/CSP evaluation tractable.  This bench
measures it directly on the classic Yannakakis win: a chain query

    ans(A) :- r(A, B), s(B, C), t(C)

over skewed data where the naive left-to-right plan materialises the full
``r ⋈ s`` cross-section (Θ(n²) tuples) before the selective ``t`` filter,
while the decomposition-guided plan semi-joins ``t`` backwards first and
stays linear.
"""

import time

from repro.cq.convert import cq_to_hypergraph
from repro.cq.parser import parse_cq
from repro.decomp.detkdecomp import check_hd
from repro.relational.relation import Relation
from repro.relational.yannakakis import atom_relation, evaluate_cq
from repro.utils.tables import render_table

QUERY = parse_cq("ans(A) :- r(A, B), s(B, C), t(C).")


def make_database(n: int) -> dict[str, Relation]:
    """Heavy skew: every r-tuple and s-tuple meet on B = 0."""
    return {
        "r": Relation(("1", "2"), {(a, 0) for a in range(n)}),
        "s": Relation(("1", "2"), {(0, c) for c in range(n)}),
        "t": Relation(("1",), {(n - 1,)}),  # selective tail filter
    }


def naive_evaluate(query, database) -> Relation:
    """Left-to-right join of all atoms, projecting at the very end."""
    result: Relation | None = None
    for atom in query.atoms:
        bound = atom_relation(atom.terms, database[atom.relation])
        result = bound if result is None else result.join(bound)
    return result.project(tuple(query.head))


def test_evaluation_speedup(benchmark):
    h = cq_to_hypergraph(QUERY, dedupe=False)
    hd = check_hd(h, 1)  # the chain is acyclic
    assert hd is not None

    database = make_database(400)
    benchmark.pedantic(
        lambda: evaluate_cq(QUERY, database, hd), rounds=1, iterations=1
    )

    rows = []
    for n in (100, 200, 400):
        db = make_database(n)
        start = time.perf_counter()
        naive = naive_evaluate(QUERY, db)
        naive_time = time.perf_counter() - start
        start = time.perf_counter()
        yann = evaluate_cq(QUERY, db, hd)
        yann_time = time.perf_counter() - start
        assert naive.rows == yann.rows  # same answers, always
        assert len(yann) == n
        rows.append(
            [
                n,
                len(naive),
                round(naive_time * 1000, 1),
                round(yann_time * 1000, 1),
                round(naive_time / max(yann_time, 1e-9), 1),
            ]
        )
    print()
    print(
        render_table(
            ["n", "answers", "naive (ms)", "yannakakis (ms)", "speedup"],
            rows,
            title="Ablation: naive join vs decomposition-guided evaluation",
        )
    )
    # Shape: the decomposition-guided plan wins, and its advantage grows.
    speedups = [row[4] for row in rows]
    assert speedups[-1] > 1.0
    assert speedups[-1] >= speedups[0]
