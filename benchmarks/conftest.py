"""Shared fixtures for the benchmark harness.

The paper's evaluation (Section 6) is one pipeline feeding many tables; we
run it once per pytest session at a reduced scale (the paper used a
10-machine cluster and 3600 s timeouts; see DESIGN.md for the substitution)
and let every table/figure bench consume the shared result, so each bench
file both *times* its core computation with pytest-benchmark and *prints*
the regenerated artefact.

Scale and timeout can be tuned via environment variables
``HYPERBENCH_SCALE`` (default 0.2) and ``HYPERBENCH_TIMEOUT`` (default 1.0 s).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import StudyResult, run_full_study

SCALE = float(os.environ.get("HYPERBENCH_SCALE", "0.2"))
TIMEOUT = float(os.environ.get("HYPERBENCH_TIMEOUT", "1.0"))
SEED = int(os.environ.get("HYPERBENCH_SEED", "42"))


@pytest.fixture(scope="session")
def study() -> StudyResult:
    """The full Section 6 evaluation, computed once per session."""
    return run_full_study(scale=SCALE, seed=SEED, timeout=TIMEOUT)


@pytest.fixture(scope="session")
def repository(study):
    return study.repository
