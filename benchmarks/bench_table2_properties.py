"""Table 2 — hypergraph properties (Deg, BIP, 3/4-BMIP, VC-dim) per class.

Times the full property computation over the benchmark and prints the
regenerated histogram table.
"""

from repro.analysis.experiments import table2_properties
from repro.benchmark.build import build_default_benchmark
from repro.core.properties import compute_statistics


def test_table2_property_computation(benchmark, study):
    # Time the metric pipeline on a fresh copy (the shared study has cached
    # statistics, which would make the timing meaningless).
    fresh = build_default_benchmark(scale=0.1, seed=99)

    def compute_all():
        return [compute_statistics(e.hypergraph) for e in fresh]

    benchmark(compute_all)

    result = table2_properties(study.repository)
    print()
    print(result.rendered)

    # Shape (Table 2): application classes have intersection size <= 2 for
    # (nearly) all instances, i.e. the BIP rows concentrate on i <= 2.
    app_rows = [r for r in result.rows if r[0] == "CSP Application"]
    low_bip = sum(r[3] for r in app_rows if r[1] in ("0", "1", "2"))
    total_bip = sum(r[3] for r in app_rows)
    assert low_bip == total_bip

    # Shape: random CSPs have high degree (> 5 dominates).
    rand_rows = {r[1]: r[2] for r in result.rows if r[0] == "CSP Random"}
    assert rand_rows[">5"] >= sum(rand_rows.values()) / 2
