"""Table 6 — the FracImproveHD study: best fractional width over all HDs.

Times one full bisection search on the triangle family and prints the
regenerated bucket table.
"""

import pytest

from repro.analysis.experiments import table6_frac_improve
from repro.analysis.fractional_analysis import BUCKETS
from repro.decomp.fractional import best_fractional_improvement
from tests.conftest import clique_hypergraph


def test_table6_frac_improve(benchmark, study):
    k5 = clique_hypergraph(5)  # hw = 3, fhw = 2.5

    best = benchmark.pedantic(
        lambda: best_fractional_improvement(k5, 3, precision=0.1),
        rounds=1,
        iterations=1,
    )
    assert best is not None
    assert best.width == pytest.approx(2.5, abs=0.11)

    table = table6_frac_improve(study.fractional)
    print()
    print(table.rendered)

    # Shape (paper): FracImproveHD finds at least as many improvements of
    # >= 0.5 as ImproveHD does, at the price of timeouts.
    def improved_count(cells):
        return sum(
            cell.counts[">=1"] + cell.counts["[0.5,1)"] for cell in cells.values()
        )

    assert improved_count(study.fractional.frac_improve) + sum(
        cell.counts["timeout"] for cell in study.fractional.frac_improve.values()
    ) >= improved_count(study.fractional.improve_hd)

    # All buckets accounted for: every analysed instance lands in a column.
    for cell in study.fractional.frac_improve.values():
        assert sum(cell.counts[b] for b in BUCKETS) >= 1
