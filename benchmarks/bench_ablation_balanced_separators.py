"""Ablation — why BalSep refutes fast: balanced vs. arbitrary separators.

The paper conjectures (Section 7) that "the number of balanced separators is
often drastically smaller than the number of arbitrary separators"; this
bench measures the census on benchmark instances and asserts the conjecture's
shape, then times one census as the benchmark kernel.
"""

from repro.analysis.separators import count_balanced_separators
from repro.benchmark.classes import BenchmarkClass
from repro.utils.tables import render_table


def test_balanced_separator_census(benchmark, study):
    entries = [
        e
        for e in study.repository.entries(BenchmarkClass.CSP_RANDOM)
        if e.hypergraph.num_edges <= 25
    ][:6]
    assert entries

    benchmark(count_balanced_separators, entries[0].hypergraph, 2)

    rows = []
    ratios = []
    for entry in entries:
        census = count_balanced_separators(entry.hypergraph, 2)
        rows.append(
            [
                entry.name,
                entry.hypergraph.num_edges,
                census.total,
                census.balanced,
                round(census.ratio, 3),
            ]
        )
        ratios.append(census.ratio)
    print()
    print(
        render_table(
            ["instance", "edges", "<=2-subsets", "balanced", "ratio"],
            rows,
            title="Ablation: balanced vs. arbitrary separators (k = 2)",
        )
    )

    # Shape: balanced separators are a small fraction of all candidates.
    assert sum(ratios) / len(ratios) < 0.5
