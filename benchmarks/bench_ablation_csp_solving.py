"""Ablation — CSP solving: backtracking vs. decomposition-guided.

The paper's closing future-work item is "to assess the usefulness of
decompositions in solving related problems".  This bench does so on the CSP
side: unsatisfiable odd-cycle colouring instances (hypertree width 2) under
an adversarial variable order, where chronological backtracking thrashes
exponentially while the Yannakakis-style solver refutes in linear time.
"""

import time

from repro.csp.model import Constraint, CSPInstance
from repro.csp.solver import solve_backtracking, solve_with_decomposition
from repro.utils.tables import render_table


def odd_cycle_instance(length: int) -> CSPInstance:
    """2-colouring an odd cycle, with names that trap static orderings."""
    assert length % 2 == 1
    names = {
        i: (f"a{i:03d}" if i % 2 == 0 else f"b{i:03d}") for i in range(length)
    }
    return CSPInstance(
        f"odd{length}",
        {names[i]: (0, 1) for i in range(length)},
        [
            Constraint(
                f"neq{i}",
                (names[i], names[(i + 1) % length]),
                frozenset({(0, 1), (1, 0)}),
            )
            for i in range(length)
        ],
    )


def test_csp_solving_ablation(benchmark):
    instance = odd_cycle_instance(21)
    result = benchmark.pedantic(
        lambda: solve_with_decomposition(instance, max_width=2),
        rounds=1,
        iterations=1,
    )
    assert result is None  # odd cycles are not 2-colourable

    rows = []
    for length in (15, 19, 23):
        inst = odd_cycle_instance(length)
        # Precompute the HD so the timing isolates the solving itself (the
        # decomposition is reusable across queries in practice).
        from repro.csp.convert import csp_to_hypergraph
        from repro.decomp.detkdecomp import check_hd

        hd = check_hd(csp_to_hypergraph(inst, dedupe=False), 2)
        start = time.perf_counter()
        bt = solve_backtracking(inst)
        bt_time = time.perf_counter() - start
        start = time.perf_counter()
        dec = solve_with_decomposition(inst, decomposition=hd)
        dec_time = time.perf_counter() - start
        assert bt is None and dec is None
        rows.append(
            [
                length,
                round(bt_time * 1000, 1),
                round(dec_time * 1000, 1),
                round(bt_time / max(dec_time, 1e-9), 1),
            ]
        )
    print()
    print(
        render_table(
            ["cycle length", "backtracking (ms)", "decomposition (ms)", "speedup"],
            rows,
            title="Ablation: CSP refutation, backtracking vs decomposition",
        )
    )
    # Shape: the decomposition solver wins clearly on the largest instance
    # (backtracking is exponential here, the semi-join passes are linear).
    assert rows[-1][3] > 2.0
