#!/usr/bin/env python
"""Cold ``Check(H, k)`` microbench: bitset kernel vs frozenset reference.

Runs the fixed workload of :mod:`repro.perf.harness` (repository-style
instances across the hw / ghw / balsep methods), writes ``BENCH_kernel.json``
(per-case wall time, components/covers call counts, per-case speedup), and
optionally gates against a committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_kernel.py             # full
    PYTHONPATH=src python benchmarks/bench_micro_kernel.py --quick \
        --baseline benchmarks/BENCH_kernel.baseline.json               # CI

Exit status is non-zero on any verdict mismatch between the kernels or any
baseline regression (> 2x plus a 50 ms floor).
"""

import sys

from repro.perf.harness import main

if __name__ == "__main__":
    sys.exit(main())
