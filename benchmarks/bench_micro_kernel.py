#!/usr/bin/env python
"""Cold ``Check(H, k)`` microbench: bitset kernel vs frozenset reference.

Runs the fixed workload of :mod:`repro.perf.harness` (repository-style
instances across the hw / ghw / balsep methods), writes ``BENCH_kernel.json``
(per-case wall time, components/covers call counts, per-case speedup), and
optionally gates against a committed baseline.  Unless ``--no-dispatch`` is
given, the report also carries a ``"dispatch"`` section: an engine
``run_batch`` of ≥ 50 small instances through ≥ 2 worker processes, timed
once over the packed :class:`repro.core.bitset.PackedHypergraph` wire
format and once over the legacy pickle path, with every verdict
cross-checked against the frozen reference kernel.

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_kernel.py             # full
    PYTHONPATH=src python benchmarks/bench_micro_kernel.py --quick \
        --baseline benchmarks/BENCH_kernel.baseline.json               # CI

Exit status is non-zero on any verdict mismatch between the kernels, any
packed-dispatch verdict mismatch vs the reference kernel, or any baseline
regression (> 2x plus a 50 ms floor).
"""

import sys

from repro.perf.harness import main

if __name__ == "__main__":
    sys.exit(main())
