#!/usr/bin/env python
"""Distributed dispatch equivalence: queue + workers vs the in-process engine.

The acceptance check for the distributed layer: the same batch of jobs is
run twice —

* **single** — one ``DecompositionEngine.run_batch`` over a fresh
  in-memory store, the reference execution;
* **queue** — a :class:`~repro.engine.remote.Dispatcher` feeding a durable
  :class:`~repro.engine.queue.JobQueue`, drained by two concurrent
  :class:`~repro.engine.remote.QueueWorker` threads writing through a
  shared fingerprint-sharded store.

Exit status is non-zero if any verdict differs, if any job is lost or
duplicated (completions must equal distinct jobs), or if either worker sat
out entirely.  Results land in the ``"queue"`` section of
``BENCH_kernel.json`` (merged in place, next to the kernel, dispatch and
service sections)::

    PYTHONPATH=src python benchmarks/bench_queue.py
    PYTHONPATH=src python benchmarks/bench_queue.py --jobs 96 --shards 8
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.engine import (
    DecompositionEngine,
    Dispatcher,
    JobQueue,
    JobSpec,
    QueueWorker,
    ResultStore,
    ShardedResultStore,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.conftest import random_hypergraph  # noqa: E402


def _specs(count: int, k: int) -> list[JobSpec]:
    return [JobSpec.check(random_hypergraph(seed), k) for seed in range(count)]


def _run_single(specs: list[JobSpec]) -> tuple[float, list[str]]:
    engine = DecompositionEngine(store=ResultStore())
    start = time.perf_counter()
    report = engine.run_batch(specs)
    return time.perf_counter() - start, [r.verdict for r in report.results]


def _run_queue(
    specs: list[JobSpec], workdir: Path, n_workers: int, shards: int
) -> tuple[float, list[str], dict, list[QueueWorker]]:
    queue = JobQueue(workdir / "jobs.db")
    store = ShardedResultStore(workdir / "cache.d", shards=shards)
    workers = [
        QueueWorker(
            queue,
            DecompositionEngine(store=store),
            worker_id=f"bench-{i}",
            lease_n=4,
            poll=0.005,
        )
        for i in range(n_workers)
    ]
    threads = [
        threading.Thread(target=w.run, kwargs={"max_idle": 60}, daemon=True)
        for w in workers
    ]
    dispatcher = Dispatcher(queue, DecompositionEngine(store=store), wait_timeout=300)
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    report = dispatcher.run_batch(specs)
    elapsed = time.perf_counter() - start
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=30)
    stats = dispatcher.stats()
    store.close()
    queue.close()
    return elapsed, [r.verdict for r in report.results], stats, workers


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--jobs", type=int, default=48,
                        help="batch size (the acceptance floor is 48)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("-k", type=int, default=2)
    parser.add_argument("--out", type=Path, default=Path("BENCH_kernel.json"),
                        help="report file; the 'queue' section is merged in place")
    args = parser.parse_args(argv)

    specs = _specs(args.jobs, args.k)
    distinct = len({spec.key() for spec in specs})
    single_seconds, single_verdicts = _run_single(specs)
    with tempfile.TemporaryDirectory(prefix="bench-queue-") as tmp:
        queue_seconds, queue_verdicts, stats, workers = _run_queue(
            specs, Path(tmp), args.workers, args.shards
        )

    failures = []
    if queue_verdicts != single_verdicts:
        mismatches = sum(
            1 for a, b in zip(queue_verdicts, single_verdicts) if a != b
        )
        failures.append(
            f"{mismatches} verdict(s) differ between queue and single-process runs"
        )
    if len(queue_verdicts) != args.jobs:
        failures.append(
            f"queue run returned {len(queue_verdicts)} results for {args.jobs} jobs"
        )
    if stats["counters"]["completed"] != distinct:
        failures.append(
            f"completions ({stats['counters']['completed']}) != distinct jobs"
            f" ({distinct}): work was lost or duplicated"
        )
    idle_workers = [w.worker_id for w in workers if w.completed == 0]
    if idle_workers:
        failures.append(f"worker(s) sat out the whole batch: {idle_workers}")

    section = {
        "jobs": args.jobs,
        "distinct_jobs": distinct,
        "k": args.k,
        "workers": args.workers,
        "shards": args.shards,
        "verdicts_agree": queue_verdicts == single_verdicts,
        "single_seconds": single_seconds,
        "queue_seconds": queue_seconds,
        "dispatched": stats["dispatched"],
        "completed": stats["counters"]["completed"],
        "leases_granted": stats["counters"]["leased"],
        "expired": stats["counters"]["expired"],
        "dead": stats["dead"],
        "per_worker_completed": {w.worker_id: w.completed for w in workers},
    }

    report = {}
    if args.out.exists():
        report = json.loads(args.out.read_text(encoding="utf-8"))
    report["queue"] = section
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    print(f"batch: {args.jobs} jobs ({distinct} distinct) at k={args.k}")
    print(f"single-process : {single_seconds:.3f}s")
    print(f"queue ({args.workers} workers, {args.shards} shards) : "
          f"{queue_seconds:.3f}s, {section['dispatched']} dispatched, "
          f"{section['completed']} completed")
    print(f"per-worker     : "
          + ", ".join(f"{w}={n}" for w, n in section["per_worker_completed"].items())
          + f" -> {args.out}")
    if failures:
        print("FAILURES:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
