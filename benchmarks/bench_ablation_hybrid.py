"""Ablation — the hybrid algorithm's switch depth (paper future work, §7).

The paper proposes running the balanced-separator recursion "only down to a
certain recursion depth (say depth 2 or 3)" before switching to the
subedge-based search.  This bench times ``Check(GHD, k)`` for switch depths
0 (pure inner search), 2 (the proposal), and a large depth (pure BalSep) on
representative instances, and checks the verdicts agree.
"""

import time

import pytest

from repro.benchmark.generators.other_csp import pebbling_grid
from repro.decomp.hybrid import check_ghd_hybrid
from repro.utils.tables import render_table
from tests.conftest import clique_hypergraph, cycle_hypergraph

INSTANCES = {
    "cycle8": (cycle_hypergraph(8), 2),
    "K5": (clique_hypergraph(5), 2),       # negative at k = 2
    "pebbling3x4": (pebbling_grid(3, 4), 2),
}

DEPTHS = (0, 2, 99)


@pytest.mark.parametrize("depth", DEPTHS)
def test_hybrid_depth_kernel(benchmark, depth):
    h, k = INSTANCES["K5"]
    result = benchmark.pedantic(
        lambda: check_ghd_hybrid(h, k, switch_depth=depth), rounds=1, iterations=1
    )
    assert result is None  # K5 has ghw 3
    if depth == DEPTHS[-1]:
        _print_depth_table()


def _print_depth_table():
    rows = []
    for name, (h, k) in INSTANCES.items():
        verdicts = []
        times = []
        for depth in DEPTHS:
            start = time.perf_counter()
            result = check_ghd_hybrid(h, k, switch_depth=depth)
            times.append(time.perf_counter() - start)
            verdicts.append(result is not None)
            if result is not None:
                result.validate("GHD")
        assert len(set(verdicts)) == 1, f"depth changes the verdict on {name}"
        rows.append(
            [name, h.num_edges, "yes" if verdicts[0] else "no"]
            + [round(t, 3) for t in times]
        )
    print()
    print(
        render_table(
            ["instance", "edges", "verdict"] + [f"d={d} (s)" for d in DEPTHS],
            rows,
            title="Ablation: hybrid switch depth (Check(GHD, 2))",
        )
    )
