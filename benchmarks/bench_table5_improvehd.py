"""Table 5 — the ImproveHD study: fractional improvement of existing HDs.

Times the LP-based improvement over all stored decompositions and prints
the regenerated bucket table.
"""

from repro.analysis.experiments import table5_improve_hd
from repro.decomp.fractional import improve_hd


def test_table5_improve_hd(benchmark, study):
    stored = [
        entry.extra["hd"]
        for entry in study.repository
        if entry.extra.get("hd") is not None
    ]
    assert stored

    def improve_all():
        return [improve_hd(hd) for hd in stored]

    improved = benchmark.pedantic(improve_all, rounds=1, iterations=1)

    table = table5_improve_hd(study.fractional)
    print()
    print(table.rendered)

    # Soundness: improvement never makes a decomposition wider.
    for hd, fhd in zip(stored, improved):
        assert fhd.width <= hd.width + 1e-9

    # Shape (paper): ImproveHD has no timeouts (it is polynomial).
    assert all(
        cell.counts["timeout"] == 0 for cell in study.fractional.improve_hd.values()
    )
