"""Exception hierarchy shared by the whole library.

Every error raised on purpose by :mod:`repro` derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class DeadlineExceeded(ReproError):
    """A cooperative deadline expired while an algorithm was running.

    The analysis harness converts this into a "timeout" verdict, mirroring
    the 3600 s timeouts of the paper's cluster runs.
    """


class HypergraphError(ReproError):
    """An invalid hypergraph was constructed or manipulated."""


class ValidationError(ReproError):
    """A decomposition violates one of its defining conditions."""


class SubedgeLimitError(ReproError):
    """The subedge set ``f(H, k)`` exceeded the configured size budget.

    ``GlobalBIP`` materialises all of Equation 1; on hypergraphs with larger
    intersections that set blows up (the paper reports the same behaviour as
    frequent ``GlobalBIP`` timeouts).  Callers treat this like a timeout.
    """


class ParseError(ReproError):
    """A textual artefact (SQL, CQ, XCSP, hypergraph file) failed to parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class UnsupportedSQLError(ParseError):
    """The SQL construct is outside the conjunctive-core pipeline's dialect.

    Section 5.2 of the paper discards such queries (e.g. correlated
    subqueries referencing an outer table); we surface the reason instead of
    silently dropping them.
    """


class SolverError(ReproError):
    """A CSP/CQ evaluation failed (inconsistent input, missing relation...)."""
