"""A small in-memory relational engine.

Decompositions are only worth computing because bounded-width instances can
be evaluated in polynomial time; this package supplies the machinery that
realises the promise: named-attribute relations with hash joins, semi-joins
and projections, plus the Yannakakis-style evaluation of a conjunctive query
(or CSP) along a decomposition.
"""

from repro.relational.relation import Relation
from repro.relational.yannakakis import (
    DecompositionEvaluator,
    evaluate_cq,
)

__all__ = ["Relation", "DecompositionEvaluator", "evaluate_cq"]
