"""Named-attribute relations with the operators Yannakakis evaluation needs."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import SolverError

__all__ = ["Relation"]

Row = tuple[object, ...]


class Relation:
    """An immutable relation: an attribute tuple plus a set of rows.

    Attribute names are strings; rows are value tuples aligned with the
    attribute order.  All operators return new relations.
    """

    __slots__ = ("attributes", "rows")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Sequence[object]] = ()):
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SolverError(f"duplicate attributes in {self.attributes}")
        width = len(self.attributes)
        normalised = set()
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise SolverError(
                    f"row {row!r} has {len(row)} values, expected {width}"
                )
            normalised.add(row)
        self.rows: frozenset[Row] = frozenset(normalised)

    # ------------------------------------------------------------------ misc

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.attributes == other.attributes:
            return self.rows == other.rows
        if set(self.attributes) != set(other.attributes):
            return False
        reordered = other.project(self.attributes)
        return self.rows == reordered.rows

    def __hash__(self) -> int:
        return hash((self.attributes, self.rows))

    def __repr__(self) -> str:
        return f"Relation({list(self.attributes)}, {len(self.rows)} rows)"

    def _index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SolverError(
                f"relation has no attribute {attribute!r} (has {self.attributes})"
            ) from None

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries, deterministically ordered."""
        return [
            dict(zip(self.attributes, row))
            for row in sorted(self.rows, key=repr)
        ]

    # ------------------------------------------------------------- operators

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection (with duplicate elimination) onto ``attributes``."""
        indices = [self._index_of(a) for a in attributes]
        return Relation(
            attributes, {tuple(row[i] for i in indices) for row in self.rows}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (missing keys unchanged)."""
        return Relation(
            [mapping.get(a, a) for a in self.attributes], self.rows
        )

    def select_eq(self, attribute: str, value: object) -> "Relation":
        """Selection ``attribute = value``."""
        index = self._index_of(attribute)
        return Relation(
            self.attributes, {row for row in self.rows if row[index] == value}
        )

    def _shared(self, other: "Relation") -> list[str]:
        return [a for a in self.attributes if a in other.attributes]

    def join(self, other: "Relation") -> "Relation":
        """Natural join (hash join on the shared attributes)."""
        shared = self._shared(other)
        self_idx = [self._index_of(a) for a in shared]
        other_idx = [other._index_of(a) for a in shared]
        other_extra = [
            i for i, a in enumerate(other.attributes) if a not in shared
        ]
        result_attrs = self.attributes + tuple(
            other.attributes[i] for i in other_extra
        )
        index: dict[Row, list[Row]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in other_idx)
            index.setdefault(key, []).append(row)
        rows = set()
        for row in self.rows:
            key = tuple(row[i] for i in self_idx)
            for match in index.get(key, ()):
                rows.add(row + tuple(match[i] for i in other_extra))
        return Relation(result_attrs, rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """Semi-join: keep rows with a matching partner in ``other``."""
        shared = self._shared(other)
        if not shared:
            return self if other.rows else Relation(self.attributes)
        self_idx = [self._index_of(a) for a in shared]
        other_idx = [other._index_of(a) for a in shared]
        keys = {tuple(row[i] for i in other_idx) for row in other.rows}
        return Relation(
            self.attributes,
            {
                row
                for row in self.rows
                if tuple(row[i] for i in self_idx) in keys
            },
        )

    def antijoin(self, other: "Relation") -> "Relation":
        """Anti-join: keep rows *without* a matching partner in ``other``."""
        shared = self._shared(other)
        if not shared:
            return Relation(self.attributes) if other.rows else self
        self_idx = [self._index_of(a) for a in shared]
        other_idx = [other._index_of(a) for a in shared]
        keys = {tuple(row[i] for i in other_idx) for row in other.rows}
        return Relation(
            self.attributes,
            {
                row
                for row in self.rows
                if tuple(row[i] for i in self_idx) not in keys
            },
        )

    @classmethod
    def cross(cls, relations: Sequence["Relation"]) -> "Relation":
        """Cartesian product of attribute-disjoint relations."""
        if not relations:
            return cls((), {()})
        result = relations[0]
        for relation in relations[1:]:
            result = result.join(relation)
        return result
