"""Yannakakis-style evaluation of CQs/CSPs along a decomposition.

Given a (G)HD of a query's hypergraph and one relation per atom, each
decomposition node materialises the join of its λ-label's relations projected
onto the bag — for a width-k decomposition this intermediate is at most the
k-fold join of base relations, which is the source of the tractability
results the paper builds on.  The classical three phases follow:

1. bottom-up semi-join reduction (detects unsatisfiability early),
2. top-down semi-join reduction (makes every remaining tuple globally
   extendable),
3. a final join/backtrack-free enumeration pass that produces answers.

The evaluator is deliberately decomposition-agnostic: anything that passes
:meth:`repro.core.decomposition.Decomposition.validate` works, so tests use
it to cross-check decompositions semantically (the same query must return
the same answers along *any* valid decomposition).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.decomposition import Decomposition, DecompositionNode
from repro.cq.model import ConjunctiveQuery, is_variable
from repro.errors import SolverError
from repro.relational.relation import Relation

__all__ = ["DecompositionEvaluator", "evaluate_cq", "atom_relation"]


class DecompositionEvaluator:
    """Evaluate a conjunction of relations along a decomposition.

    Parameters
    ----------
    decomposition:
        A validated decomposition of the conjunction's hypergraph.
    edge_relations:
        For each hyperedge name, a relation over the edge's vertices
        (attribute names must equal vertex names).
    """

    def __init__(
        self,
        decomposition: Decomposition,
        edge_relations: Mapping[str, Relation],
    ):
        self.decomposition = decomposition
        self.edge_relations = dict(edge_relations)
        hypergraph = decomposition.hypergraph
        for name, edge in hypergraph.edges.items():
            if name not in self.edge_relations:
                raise SolverError(f"no relation supplied for edge {name!r}")
            attrs = set(self.edge_relations[name].attributes)
            if attrs != set(edge):
                raise SolverError(
                    f"relation for {name!r} has attributes {sorted(attrs)}, "
                    f"edge has vertices {sorted(edge)}"
                )
        self._node_relations: dict[int, Relation] = {}
        self._assignments: dict[int, frozenset[str]] = {}

    # ----------------------------------------------------------- preparation

    def _assign_edges(self) -> dict[int, list[str]]:
        """Attach every hyperedge to one node whose bag contains it."""
        nodes = list(self.decomposition.nodes())
        assignment: dict[int, list[str]] = {id(n): [] for n in nodes}
        for name, edge in self.decomposition.hypergraph.edges.items():
            for node in nodes:
                if edge <= node.bag:
                    assignment[id(node)].append(name)
                    break
            else:  # pragma: no cover - validate() guarantees coverage
                raise SolverError(f"edge {name!r} is covered by no bag")
        return assignment

    def _materialise(self, node: DecompositionNode, attached: list[str]) -> Relation:
        """Join the λ-label relations, project to the bag, apply attachments."""
        lambda_edges = sorted(node.lambda_label())
        if not lambda_edges:
            relation = Relation((), {()})
        else:
            relation = self.edge_relations[lambda_edges[0]]
            for name in lambda_edges[1:]:
                relation = relation.join(self.edge_relations[name])
        bag_attrs = [a for a in relation.attributes if a in node.bag]
        if set(bag_attrs) != node.bag:
            missing = node.bag - set(bag_attrs)
            raise SolverError(
                f"bag vertices {sorted(missing)} are not covered by the λ-label"
            )
        relation = relation.project(sorted(node.bag))
        for name in attached:
            relation = relation.semijoin(self.edge_relations[name])
        return relation

    # ------------------------------------------------------------ evaluation

    def run(self, output: tuple[str, ...] | None = None) -> Relation:
        """Full evaluation; returns the projection onto ``output`` variables.

        With ``output=None`` the result is the boolean relation over no
        attributes (non-empty iff the conjunction is satisfiable).
        """
        attached = self._assign_edges()
        root = self.decomposition.root
        relations: dict[int, Relation] = {}
        order: list[tuple[DecompositionNode, DecompositionNode | None]] = []
        stack: list[tuple[DecompositionNode, DecompositionNode | None]] = [(root, None)]
        while stack:
            node, parent = stack.pop()
            order.append((node, parent))
            relations[id(node)] = self._materialise(node, attached[id(node)])
            for child in node.children:
                stack.append((child, node))

        # Bottom-up semi-join pass (children before parents).
        for node, parent in reversed(order):
            if parent is not None:
                relations[id(parent)] = relations[id(parent)].semijoin(
                    relations[id(node)]
                )
        if not relations[id(root)]:
            return Relation(tuple(output or ()),)

        # Top-down semi-join pass.
        for node, parent in order:
            if parent is not None:
                relations[id(node)] = relations[id(node)].semijoin(
                    relations[id(parent)]
                )

        if output is None:
            satisfiable = bool(relations[id(root)])
            return Relation((), {()} if satisfiable else set())

        # Final pass: join upward, projecting to what is still needed.
        needed = set(output)
        result = self._collect(root, relations, needed)
        return result.project(tuple(output))

    def _collect(
        self,
        node: DecompositionNode,
        relations: dict[int, Relation],
        needed: set[str],
    ) -> Relation:
        relation = relations[id(node)]
        for child in node.children:
            child_relation = self._collect(child, relations, needed)
            relation = relation.join(child_relation)
            keep = [
                a
                for a in relation.attributes
                if a in needed or a in node.bag
            ]
            relation = relation.project(keep)
        return relation

    def satisfiable(self) -> bool:
        """Boolean evaluation (phase 1 only suffices, but run() is exact)."""
        return bool(self.run(output=None))

    def one_solution(self) -> dict[str, object] | None:
        """One full assignment over all hypergraph vertices, or ``None``.

        After the two semi-join passes the relations are pairwise consistent
        along every tree edge, so a solution can be stitched together
        top-down without backtracking — no full materialisation happens.
        """
        attached = self._assign_edges()
        root = self.decomposition.root
        relations: dict[int, Relation] = {}
        order: list[tuple[DecompositionNode, DecompositionNode | None]] = []
        stack: list[tuple[DecompositionNode, DecompositionNode | None]] = [(root, None)]
        while stack:
            node, parent = stack.pop()
            order.append((node, parent))
            relations[id(node)] = self._materialise(node, attached[id(node)])
            for child in node.children:
                stack.append((child, node))
        for node, parent in reversed(order):
            if parent is not None:
                relations[id(parent)] = relations[id(parent)].semijoin(
                    relations[id(node)]
                )
        if not relations[id(root)]:
            return None
        for node, parent in order:
            if parent is not None:
                relations[id(node)] = relations[id(node)].semijoin(
                    relations[id(parent)]
                )

        assignment: dict[str, object] = {}

        def instantiate(node: DecompositionNode) -> None:
            relation = relations[id(node)]
            for attribute in relation.attributes:
                if attribute in assignment:
                    relation = relation.select_eq(attribute, assignment[attribute])
            row = min(relation.rows, key=repr)  # deterministic choice
            assignment.update(zip(relation.attributes, row))
            for child in node.children:
                instantiate(child)

        instantiate(root)
        return assignment


def atom_relation(
    atom_terms: tuple[str, ...], rows: Relation
) -> Relation:
    """Turn a base relation into one over an atom's variables.

    Repeated variables impose equality; constants impose selections; the
    result's attributes are the atom's distinct variables.
    """
    working = rows
    positional = [f"__pos{i}" for i in range(len(atom_terms))]
    working = working.rename(dict(zip(working.attributes, positional)))
    first_position: dict[str, str] = {}
    for i, term in enumerate(atom_terms):
        column = positional[i]
        if is_variable(term):
            if term in first_position:
                anchor = first_position[term]
                working = Relation(
                    working.attributes,
                    {
                        row
                        for row in working.rows
                        if row[working.attributes.index(anchor)]
                        == row[working.attributes.index(column)]
                    },
                )
            else:
                first_position[term] = column
        else:
            # Constants match under either their string or integer reading.
            accepted: set[object] = {term}
            try:
                accepted.add(int(term))
            except ValueError:
                pass
            index = working.attributes.index(column)
            working = Relation(
                working.attributes,
                {row for row in working.rows if row[index] in accepted},
            )
    variables = [t for t in atom_terms if is_variable(t)]
    seen: list[str] = []
    for v in variables:
        if v not in seen:
            seen.append(v)
    projected = working.project([first_position[v] for v in seen])
    return projected.rename(dict(zip(projected.attributes, seen)))


def evaluate_cq(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    decomposition: Decomposition,
) -> Relation:
    """Evaluate a CQ over a database along a decomposition of its hypergraph.

    ``database`` maps relation names to base relations (attribute names are
    positional and get re-bound to the atom's variables).  The decomposition
    must be over ``cq_to_hypergraph(query, dedupe=False)`` so every atom has
    its own hyperedge; ground atoms (no variables) are checked directly.
    """
    edge_relations: dict[str, Relation] = {}
    empty_result = Relation(tuple(query.head))
    for i, atom in enumerate(query.atoms):
        if atom.relation not in database:
            raise SolverError(f"database has no relation {atom.relation!r}")
        bound = atom_relation(atom.terms, database[atom.relation])
        if not atom.variables():
            if not bound:
                return empty_result  # a false ground atom kills the query
            continue
        name = f"{atom.relation}#{i}"
        if name not in decomposition.hypergraph.edges:
            raise SolverError(
                f"decomposition has no edge for atom {i} ({atom}); "
                "build it over cq_to_hypergraph(query, dedupe=False)"
            )
        edge_relations[name] = bound
    evaluator = DecompositionEvaluator(decomposition, edge_relations)
    head = query.head if query.head else None
    return evaluator.run(output=tuple(head) if head else None)
