"""CSP solvers: plain backtracking and decomposition-guided evaluation.

Two solvers over the same :class:`~repro.csp.model.CSPInstance`:

* :func:`solve_backtracking` — chronological backtracking with forward
  pruning on positive constraints (the baseline every CSP paper assumes);
* :func:`solve_with_decomposition` — evaluates the constraint network along
  a (G)HD of its hypergraph with the Yannakakis machinery: polynomial in the
  instance size for bounded width, which is exactly why the paper's widths
  matter.  Works for instances whose constraints are all positive
  (extensional ``supports``); negative constraints are applied as
  anti-filters on the node where their scope is covered.

Both return a satisfying assignment or ``None``; differential tests check
that they always agree.
"""

from __future__ import annotations

from repro.core.decomposition import Decomposition
from repro.csp.convert import csp_to_hypergraph
from repro.csp.model import Constraint, CSPInstance
from repro.decomp.detkdecomp import check_hd
from repro.errors import SolverError
from repro.relational.relation import Relation
from repro.relational.yannakakis import DecompositionEvaluator
from repro.utils.deadline import Deadline

__all__ = ["solve_backtracking", "solve_with_decomposition"]

Assignment = dict[str, object]


def solve_backtracking(
    instance: CSPInstance, deadline: Deadline | None = None
) -> Assignment | None:
    """Chronological backtracking with constraint-based pruning.

    Variables are ordered by decreasing constraint degree (a classic static
    heuristic); after each assignment every constraint touching the variable
    is checked for extensibility.
    """
    deadline = deadline or Deadline.unlimited()
    variables = sorted(
        instance.variables,
        key=lambda v: (-len(instance.constraints_on(v)), v),
    )
    watch: dict[str, list[Constraint]] = {
        v: instance.constraints_on(v) for v in variables
    }
    assignment: Assignment = {}

    def extend(index: int) -> bool:
        deadline.check()
        if index == len(variables):
            return True
        variable = variables[index]
        for value in instance.domains[variable]:
            assignment[variable] = value
            if all(c.consistent(assignment) for c in watch[variable]):
                if extend(index + 1):
                    return True
            del assignment[variable]
        return False

    if extend(0):
        return dict(assignment)
    return None


def _constraint_relation(constraint: Constraint, instance: CSPInstance) -> Relation:
    """The allowed-tuple relation of a constraint, restricted to the domains.

    Negative constraints are complemented against the domain product of
    their scope — exponential in the constraint *arity* only, which the
    benchmark instances keep small.
    """
    if len(set(constraint.scope)) != len(constraint.scope):
        raise SolverError(
            f"constraint {constraint.name!r} repeats a variable in its scope"
        )
    if constraint.positive:
        rows = {
            t
            for t in constraint.tuples
            if all(
                value in instance.domains[variable]
                for variable, value in zip(constraint.scope, t)
            )
        }
        return Relation(constraint.scope, rows)
    product: list[tuple[object, ...]] = [()]
    for variable in constraint.scope:
        product = [
            prefix + (value,)
            for prefix in product
            for value in instance.domains[variable]
        ]
    return Relation(
        constraint.scope, {t for t in product if t not in constraint.tuples}
    )


def solve_with_decomposition(
    instance: CSPInstance,
    decomposition: Decomposition | None = None,
    max_width: int = 4,
    deadline: Deadline | None = None,
) -> Assignment | None:
    """Solve a CSP by Yannakakis evaluation along a decomposition.

    When no decomposition is supplied, ``Check(HD, k)`` is attempted for
    k = 1..max_width; a :class:`SolverError` is raised when the hypergraph's
    width exceeds ``max_width`` (the instance is not tractably structured).

    Negative constraints are anti-filtered at a node covering their scope.
    Variables occurring in no constraint get an arbitrary domain value (an
    empty domain makes the instance unsatisfiable).
    """
    deadline = deadline or Deadline.unlimited()
    for variable, domain in instance.domains.items():
        if not domain:
            return None

    if not instance.constraints:
        return {v: d[0] for v, d in instance.domains.items()}

    hypergraph = csp_to_hypergraph(instance, dedupe=False)
    if decomposition is None:
        for k in range(1, max_width + 1):
            decomposition = check_hd(hypergraph, k, deadline=deadline)
            if decomposition is not None:
                break
        else:
            raise SolverError(
                f"no HD of width <= {max_width}; raise max_width or pass a "
                "decomposition explicitly"
            )
    elif decomposition.hypergraph != hypergraph:
        raise SolverError("decomposition does not match the instance's hypergraph")

    edge_relations = {
        constraint.name: _constraint_relation(constraint, instance)
        for constraint in instance.constraints
    }
    evaluator = DecompositionEvaluator(decomposition, edge_relations)
    assignment = evaluator.one_solution()
    if assignment is None:
        return None
    for variable, domain in instance.domains.items():
        if variable not in assignment:
            assignment[variable] = domain[0]
    return assignment
