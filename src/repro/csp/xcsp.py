"""Parser and writer for the XCSP-style XML exchange format (Section 5.5).

The benchmark's CSP instances come from xcsp.org; the paper converts them to
hypergraphs by creating a vertex per variable and an edge per constraint
scope.  We support the extensional fragment the paper selects::

    <instance format="XCSP3" type="CSP">
      <variables>
        <var id="x"> 0 1 2 </var>
        <array id="y" size="[3]"> 0..4 </array>
      </variables>
      <constraints>
        <extension>
          <list> x y[0] y[1] </list>
          <supports> (0,1,2)(1,2,3) </supports>
        </extension>
      </constraints>
    </instance>

``<conflicts>`` bodies define negative tables.  Domains may mix plain values
and ``lo..hi`` integer ranges.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from repro.csp.model import Constraint, CSPInstance
from repro.errors import ParseError

__all__ = ["parse_xcsp", "format_xcsp"]

_RANGE_RE = re.compile(r"^(-?\d+)\.\.(-?\d+)$")
_TUPLE_RE = re.compile(r"\(([^()]*)\)")


def _parse_domain(text: str) -> tuple[object, ...]:
    values: list[object] = []
    for token in (text or "").split():
        match = _RANGE_RE.match(token)
        if match:
            low, high = int(match.group(1)), int(match.group(2))
            if high < low:
                raise ParseError(f"empty domain range {token!r}")
            values.extend(range(low, high + 1))
        else:
            try:
                values.append(int(token))
            except ValueError:
                values.append(token)
    return tuple(values)


def _parse_value(token: str) -> object:
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        return token


def _parse_tuples(text: str, arity: int) -> frozenset[tuple[object, ...]]:
    tuples: set[tuple[object, ...]] = set()
    for group in _TUPLE_RE.findall(text or ""):
        items = tuple(_parse_value(v) for v in group.split(","))
        if len(items) != arity:
            raise ParseError(
                f"tuple {group!r} has arity {len(items)}, scope expects {arity}"
            )
        tuples.add(items)
    if not tuples and arity == 1:
        # Unary extension bodies may list bare values.
        for token in (text or "").split():
            tuples.add((_parse_value(token),))
    return frozenset(tuples)


def parse_xcsp(text: str, name: str = "") -> CSPInstance:
    """Parse an XCSP-style document into a :class:`CSPInstance`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"invalid XML: {exc}") from exc
    if root.tag != "instance":
        raise ParseError(f"expected <instance>, found <{root.tag}>")

    domains: dict[str, tuple[object, ...]] = {}
    variables_el = root.find("variables")
    if variables_el is None:
        raise ParseError("missing <variables> section")
    for element in variables_el:
        if element.tag == "var":
            var_id = element.get("id")
            if not var_id:
                raise ParseError("<var> without an id attribute")
            domains[var_id] = _parse_domain(element.text or "")
        elif element.tag == "array":
            array_id = element.get("id")
            size_attr = element.get("size", "")
            match = re.fullmatch(r"\[(\d+)\]", size_attr.strip())
            if not array_id or match is None:
                raise ParseError("<array> needs an id and a size of the form [n]")
            domain = _parse_domain(element.text or "")
            for i in range(int(match.group(1))):
                domains[f"{array_id}[{i}]"] = domain
        else:
            raise ParseError(f"unsupported variables element <{element.tag}>")

    constraints: list[Constraint] = []
    constraints_el = root.find("constraints")
    if constraints_el is not None:
        for index, element in enumerate(constraints_el):
            if element.tag != "extension":
                raise ParseError(
                    f"unsupported constraint <{element.tag}>; the benchmark "
                    "uses extensional constraints only"
                )
            list_el = element.find("list")
            if list_el is None or not (list_el.text or "").strip():
                raise ParseError("<extension> without a <list> scope")
            scope = tuple((list_el.text or "").split())
            supports_el = element.find("supports")
            conflicts_el = element.find("conflicts")
            if supports_el is not None:
                tuples = _parse_tuples(supports_el.text or "", len(scope))
                positive = True
            elif conflicts_el is not None:
                tuples = _parse_tuples(conflicts_el.text or "", len(scope))
                positive = False
            else:
                raise ParseError("<extension> needs <supports> or <conflicts>")
            constraint_name = element.get("id") or f"c{index}"
            constraints.append(Constraint(constraint_name, scope, tuples, positive))

    instance_name = name or root.get("id") or ""
    return CSPInstance(instance_name, domains, constraints)


def format_xcsp(instance: CSPInstance) -> str:
    """Render a CSP instance back into the XCSP-style XML format."""
    root = ET.Element("instance", {"format": "XCSP3", "type": "CSP"})
    variables_el = ET.SubElement(root, "variables")
    for variable, domain in instance.domains.items():
        var_el = ET.SubElement(variables_el, "var", {"id": variable})
        var_el.text = " ".join(str(v) for v in domain)
    constraints_el = ET.SubElement(root, "constraints")
    for constraint in instance.constraints:
        ext_el = ET.SubElement(constraints_el, "extension", {"id": constraint.name})
        list_el = ET.SubElement(ext_el, "list")
        list_el.text = " ".join(constraint.scope)
        body_tag = "supports" if constraint.positive else "conflicts"
        body_el = ET.SubElement(ext_el, body_tag)
        body_el.text = "".join(
            "(" + ",".join(str(v) for v in t) + ")"
            for t in sorted(constraint.tuples, key=repr)
        )
    return ET.tostring(root, encoding="unicode")
