"""The CSP model: variables with finite domains plus extensional constraints.

The paper's benchmark selects XCSP instances in which *all constraints are
extensional* (given by explicit tuple lists), so that is the only constraint
kind modelled here.  A constraint may be *positive* (``supports``: the listed
tuples are the allowed ones) or *negative* (``conflicts``: the listed tuples
are forbidden).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import SolverError

__all__ = ["Constraint", "CSPInstance"]

Value = object
Tuple_ = tuple[Value, ...]


@dataclass(frozen=True)
class Constraint:
    """One extensional constraint over an ordered variable scope."""

    name: str
    scope: tuple[str, ...]
    tuples: frozenset[Tuple_]
    positive: bool = True

    def __post_init__(self):
        object.__setattr__(self, "scope", tuple(self.scope))
        normalised = frozenset(tuple(t) for t in self.tuples)
        object.__setattr__(self, "tuples", normalised)
        for t in normalised:
            if len(t) != len(self.scope):
                raise SolverError(
                    f"constraint {self.name!r}: tuple {t!r} does not match "
                    f"scope arity {len(self.scope)}"
                )

    @property
    def arity(self) -> int:
        return len(self.scope)

    def allows(self, assignment: Mapping[str, Value]) -> bool:
        """Whether a *full-scope* assignment satisfies the constraint."""
        candidate = tuple(assignment[v] for v in self.scope)
        return (candidate in self.tuples) == self.positive

    def consistent(self, assignment: Mapping[str, Value]) -> bool:
        """Whether a partial assignment can still be extended to satisfy it.

        Positive constraints prune as soon as no support tuple matches the
        assigned prefix of the scope; negative constraints can only be
        checked once the scope is fully assigned.
        """
        assigned = [v for v in self.scope if v in assignment]
        if len(assigned) < len(self.scope):
            if not self.positive:
                return True
            return any(
                all(
                    t[i] == assignment[v]
                    for i, v in enumerate(self.scope)
                    if v in assignment
                )
                for t in self.tuples
            )
        return self.allows(assignment)


@dataclass
class CSPInstance:
    """A CSP: named variables with finite domains and extensional constraints."""

    name: str
    domains: dict[str, tuple[Value, ...]]
    constraints: list[Constraint] = field(default_factory=list)

    def __post_init__(self):
        self.domains = {v: tuple(d) for v, d in self.domains.items()}
        for constraint in self.constraints:
            missing = [v for v in constraint.scope if v not in self.domains]
            if missing:
                raise SolverError(
                    f"constraint {constraint.name!r} uses undeclared variables {missing}"
                )

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self.domains)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def constraints_on(self, variable: str) -> list[Constraint]:
        return [c for c in self.constraints if variable in c.scope]

    def check(self, assignment: Mapping[str, Value]) -> bool:
        """Whether a full assignment satisfies every constraint."""
        if set(assignment) != set(self.domains):
            raise SolverError("assignment does not cover all variables")
        return all(c.allows(assignment) for c in self.constraints)


def all_different_constraint(
    name: str, scope: Sequence[str], domain: Iterable[Value]
) -> Constraint:
    """Convenience: an extensional all-different over a shared domain."""
    values = tuple(domain)
    scope = tuple(scope)

    def distinct_tuples(prefix: Tuple_) -> Iterable[Tuple_]:
        if len(prefix) == len(scope):
            yield prefix
            return
        for v in values:
            if v not in prefix:
                yield from distinct_tuples(prefix + (v,))

    return Constraint(name, scope, frozenset(distinct_tuples(())))
