"""CSP → hypergraph conversion (Section 5.5).

Whenever the parser reads a variable it adds a vertex; whenever it reads a
constraint it adds an edge containing the vertices of the constraint's scope.
Variables occurring in no constraint are dropped (our hypergraphs have no
isolated vertices), and duplicate scopes are deduplicated.
"""

from __future__ import annotations

from repro.core.hypergraph import Hypergraph
from repro.csp.model import CSPInstance

__all__ = ["csp_to_hypergraph"]


def csp_to_hypergraph(instance: CSPInstance, dedupe: bool = True) -> Hypergraph:
    """The hypergraph underlying a CSP instance."""
    edges = {
        constraint.name: frozenset(constraint.scope)
        for constraint in instance.constraints
    }
    h = Hypergraph(edges, name=instance.name)
    if dedupe:
        h = h.dedupe()
    return h
