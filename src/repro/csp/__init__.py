"""Constraint satisfaction problems: model, XCSP parser, and solvers.

CQ answering and CSP solving are the same problem (Section 1); this package
provides the CSP side of the benchmark — extensional constraint networks, a
parser for the XCSP-style XML exchange format (Section 5.5), a plain
backtracking solver and a decomposition-guided solver that evaluates the
constraint network along a (G)HD with semi-join reductions, demonstrating
why bounded width matters.
"""

from repro.csp.model import Constraint, CSPInstance
from repro.csp.xcsp import parse_xcsp, format_xcsp
from repro.csp.convert import csp_to_hypergraph
from repro.csp.solver import solve_backtracking, solve_with_decomposition

__all__ = [
    "Constraint",
    "CSPInstance",
    "parse_xcsp",
    "format_xcsp",
    "csp_to_hypergraph",
    "solve_backtracking",
    "solve_with_decomposition",
]
