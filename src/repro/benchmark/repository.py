"""The HyperBench repository: the programmatic face of the paper's web tool.

The web interface at hyperbench.dbai.tuwien.ac.at lets users retrieve
hypergraphs or groups of hypergraphs together with "a broad spectrum of
properties ... such as lower/upper bounds on hw and ghw, (multi-)intersection
size, degree, etc.".  This class is the in-process equivalent: a catalog of
entries (hypergraph + class + lazily computed statistics + width bounds) with
filtering, aggregation and CSV/JSON export; the static HTML report in
:mod:`repro.benchmark.report` renders it for a browser.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.benchmark.classes import BenchmarkClass
from repro.core.hypergraph import Hypergraph
from repro.core.properties import HypergraphStatistics, compute_statistics
from repro.errors import ReproError
from repro.utils.deadline import Deadline

__all__ = ["BenchmarkEntry", "HyperBenchRepository"]


@dataclass
class BenchmarkEntry:
    """One repository row: an instance plus everything computed about it."""

    hypergraph: Hypergraph
    benchmark_class: BenchmarkClass
    statistics: HypergraphStatistics | None = None
    #: Best known bounds on hw: ``hw_low <= hw(H) <= hw_high`` (None = unknown)
    hw_low: int | None = None
    hw_high: int | None = None
    #: Best known bounds on ghw
    ghw_low: int | None = None
    ghw_high: int | None = None
    #: Upper bound on fhw from fractional improvement, if computed
    fhw_high: float | None = None
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.hypergraph.name

    @property
    def hw_exact(self) -> int | None:
        if self.hw_low is not None and self.hw_low == self.hw_high:
            return self.hw_low
        return None

    @property
    def ghw_exact(self) -> int | None:
        if self.ghw_low is not None and self.ghw_low == self.ghw_high:
            return self.ghw_low
        return None

    @property
    def is_cyclic(self) -> bool | None:
        """``hw >= 2``, when known (Table 1's last column)."""
        if self.hw_low is not None and self.hw_low >= 2:
            return True
        if self.hw_high == 1:
            return False
        return None

    def as_record(self) -> dict[str, object]:
        stats = self.statistics
        record: dict[str, object] = {
            "name": self.name,
            "class": str(self.benchmark_class),
            "vertices": stats.num_vertices if stats else self.hypergraph.num_vertices,
            "edges": stats.num_edges if stats else self.hypergraph.num_edges,
            "arity": stats.arity if stats else self.hypergraph.arity,
            "degree": stats.degree if stats else None,
            "bip": stats.bip if stats else None,
            "bmip3": stats.bmip3 if stats else None,
            "bmip4": stats.bmip4 if stats else None,
            "vc_dim": stats.vc_dim if stats else None,
            "hw_low": self.hw_low,
            "hw_high": self.hw_high,
            "ghw_low": self.ghw_low,
            "ghw_high": self.ghw_high,
            "fhw_high": self.fhw_high,
        }
        # Scalar annotations (e.g. the experiment pipeline's corpus family)
        # export too; structured extras like stashed decompositions do not,
        # and nothing may shadow the base columns.
        for key in sorted(self.extra):
            value = self.extra[key]
            if key not in record and isinstance(value, (str, int, float, bool)):
                record[key] = value
        return record


class HyperBenchRepository:
    """A named collection of benchmark entries with query/export helpers."""

    def __init__(self, name: str = "hyperbench"):
        self.name = name
        self._entries: dict[str, BenchmarkEntry] = {}

    # --------------------------------------------------------------- storage

    def add(
        self, hypergraph: Hypergraph, benchmark_class: BenchmarkClass
    ) -> BenchmarkEntry:
        if not hypergraph.name:
            raise ReproError("repository entries need named hypergraphs")
        if hypergraph.name in self._entries:
            raise ReproError(f"duplicate instance name {hypergraph.name!r}")
        entry = BenchmarkEntry(hypergraph, benchmark_class)
        self._entries[hypergraph.name] = entry
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[BenchmarkEntry]:
        return iter(self._entries.values())

    def get(self, name: str) -> BenchmarkEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ReproError(f"no instance named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # --------------------------------------------------------------- queries

    def entries(
        self,
        benchmark_class: BenchmarkClass | None = None,
        predicate: Callable[[BenchmarkEntry], bool] | None = None,
    ) -> list[BenchmarkEntry]:
        """Entries filtered by class and/or arbitrary predicate."""
        result = []
        for entry in self._entries.values():
            if benchmark_class is not None and entry.benchmark_class != benchmark_class:
                continue
            if predicate is not None and not predicate(entry):
                continue
            result.append(entry)
        return result

    def classes(self) -> list[BenchmarkClass]:
        seen: list[BenchmarkClass] = []
        for entry in self._entries.values():
            if entry.benchmark_class not in seen:
                seen.append(entry.benchmark_class)
        return seen

    def count(
        self,
        benchmark_class: BenchmarkClass | None = None,
        predicate: Callable[[BenchmarkEntry], bool] | None = None,
    ) -> int:
        return len(self.entries(benchmark_class, predicate))

    # -------------------------------------------------------------- analysis

    def compute_all_statistics(
        self,
        deadline: Deadline | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        _stats_fn: Callable = compute_statistics,
    ) -> dict[str, str]:
        """Fill in the Table 2 metrics for every entry that lacks them.

        ``jobs > 1`` fans the per-instance computations out through
        :func:`repro.engine.workers.map_callables`: each entry gets its own
        killable worker with an optional per-entry hard ``timeout``, and a
        worker that crashes or overruns is recorded as a per-entry timeout —
        the entry's statistics stay ``None`` — instead of poisoning the whole
        repository.  A cooperative ``deadline`` cannot cross the process
        boundary; when no ``timeout`` is given its remaining budget becomes
        the per-entry hard cap, so no single entry outlives it.  Returns
        ``{instance name: "timeout"}`` for the entries that failed (always
        empty on the sequential path, which keeps its historical
        cooperative-deadline behaviour).

        ``_stats_fn`` is a testing seam (crash injection); it must accept
        ``(hypergraph)`` positionally and, sequentially, ``(hypergraph,
        deadline)``.
        """
        pending = [e for e in self._entries.values() if e.statistics is None]
        if jobs <= 1 or not pending:
            deadline = deadline or Deadline.unlimited()
            for entry in pending:
                entry.statistics = _stats_fn(entry.hypergraph, deadline)
            return {}
        # Imported lazily: the benchmark layer only depends on the engine
        # when parallelism is requested (mirrors repro.benchmark.build).
        from repro.engine.workers import CallFailure, map_callables

        if timeout is None and deadline is not None:
            timeout = deadline.remaining
        results = map_callables(
            [(_stats_fn, (entry.hypergraph,)) for entry in pending],
            jobs,
            timeout=timeout,
        )
        failures: dict[str, str] = {}
        for entry, result in zip(pending, results):
            if isinstance(result, CallFailure):
                failures[entry.name] = "timeout"
            else:
                entry.statistics = result
        return failures

    # ---------------------------------------------------------------- export

    def to_csv(self) -> str:
        """The repository as a CSV document (one row per instance).

        Records may be heterogeneous (extras appear on some entries only),
        so the header is the union of all keys in first-seen order; rows
        lacking a column leave it empty.
        """
        records = [entry.as_record() for entry in self._entries.values()]
        if not records:
            return ""
        fieldnames: list[str] = []
        for record in records:
            for key in record:
                if key not in fieldnames:
                    fieldnames.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(records)
        return buffer.getvalue()

    def to_json(self, indent: int | None = None) -> str:
        """The repository as a JSON document, including edge structures."""
        payload = {
            "name": self.name,
            "instances": [
                {
                    **entry.as_record(),
                    "edges": {
                        n: sorted(vs) for n, vs in entry.hypergraph.edges.items()
                    },
                }
                for entry in self._entries.values()
            ],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)
