"""The five benchmark classes of the paper's evaluation."""

from __future__ import annotations

from enum import Enum

__all__ = ["BenchmarkClass", "CLASS_NAMES"]


class BenchmarkClass(str, Enum):
    """Instance classes, as used throughout Section 6."""

    CQ_APPLICATION = "CQ Application"
    CQ_RANDOM = "CQ Random"
    CSP_APPLICATION = "CSP Application"
    CSP_RANDOM = "CSP Random"
    CSP_OTHER = "CSP Other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Display order used by the paper's figures.
CLASS_NAMES = [
    BenchmarkClass.CQ_APPLICATION,
    BenchmarkClass.CQ_RANDOM,
    BenchmarkClass.CSP_APPLICATION,
    BenchmarkClass.CSP_RANDOM,
    BenchmarkClass.CSP_OTHER,
]
