"""CSP Application generator.

The paper's CSP Application class (xcsp.org instances from concrete
applications) is characterised in Table 2 by *high degree* (46% have degree
> 5) but *tiny intersections* (BIP ≤ 2 for nearly all) and VC-dimension ≈ 2;
widths spread from small to large (about 60% have hw ≤ 5).  Real application
instances are built from repeating structured sub-patterns, which is what we
emit:

* **ladder networks** — two rails of variables with rung constraints
  (series-parallel, small width);
* **wheel networks** — a hub constrained with every rim segment (high
  degree, small intersections);
* **composed blocks** — cliques of ternary scopes chained through small
  interfaces (width grows with block size);
* **grid patterns** — row/column scopes over a variable matrix (the classic
  source of moderate-width CSPs).
"""

from __future__ import annotations

import random

from repro.core.hypergraph import Hypergraph

__all__ = ["generate_application_csps"]


def _ladder(length: int, name: str) -> Hypergraph:
    edges = {}
    for i in range(length):
        edges[f"rail_a{i}"] = [f"a{i}", f"a{i + 1}"]
        edges[f"rail_b{i}"] = [f"b{i}", f"b{i + 1}"]
        edges[f"rung{i}"] = [f"a{i}", f"b{i}"]
    edges[f"rung{length}"] = [f"a{length}", f"b{length}"]
    return Hypergraph(edges, name=name)


def _wheel(spokes: int, name: str) -> Hypergraph:
    edges = {}
    for i in range(spokes):
        edges[f"spoke{i}"] = ["hub", f"r{i}"]
        edges[f"rim{i}"] = [f"r{i}", f"r{(i + 1) % spokes}"]
    return Hypergraph(edges, name=name)


def _blocks(blocks: int, block_size: int, name: str) -> Hypergraph:
    """Chained blocks: each block is a clique of ternary scopes; blocks
    overlap in one shared interface variable."""
    edges = {}
    for b in range(blocks):
        variables = [f"x{b}_{i}" for i in range(block_size)]
        if b > 0:
            variables[0] = f"x{b - 1}_{block_size - 1}"  # interface
        for i in range(block_size - 2):
            edges[f"blk{b}_c{i}"] = variables[i : i + 3]
    return Hypergraph(edges, name=name)


def _grid_pattern(rows: int, cols: int, scope: int, name: str) -> Hypergraph:
    """Sliding row/column scopes over a rows × cols variable matrix."""
    edges = {}
    for r in range(rows):
        for c in range(cols - scope + 1):
            edges[f"row{r}_{c}"] = [f"m{r}_{c + j}" for j in range(scope)]
    for c in range(cols):
        for r in range(rows - scope + 1):
            edges[f"col{c}_{r}"] = [f"m{r + j}_{c}" for j in range(scope)]
    return Hypergraph(edges, name=name)


def generate_application_csps(count: int, seed: int = 0) -> list[Hypergraph]:
    """Generate ``count`` CSP Application hypergraphs (deterministic)."""
    rng = random.Random(seed)
    result: list[Hypergraph] = []
    i = 0
    while len(result) < count:
        kind = i % 4
        name = f"csp_app_{i:04d}"
        if kind == 0:
            result.append(_ladder(rng.randint(3, 8), name))
        elif kind == 1:
            result.append(_wheel(rng.randint(4, 10), name))
        elif kind == 2:
            result.append(_blocks(rng.randint(2, 4), rng.randint(4, 6), name))
        else:
            rows = rng.randint(3, 5)
            cols = rng.randint(3, 5)
            result.append(_grid_pattern(rows, cols, min(3, cols), name))
        i += 1
    return result
