"""CQ Application instances generated *through* the SQL pipeline.

The paper builds its CQ Application class by running real SQL workloads
(TPC-H, TPC-DS, SQLShare...) through the Section 5 pipeline.  The direct
generator in :mod:`repro.benchmark.generators.application_cq` produces the
same hypergraph shapes cheaply; this module instead emits *SQL text* —
foreign-key joins over a synthetic star/snowflake schema, optionally with a
view or an uncorrelated subquery — and feeds it through
:func:`repro.sql.convert.sql_to_hypergraphs`, so benchmark construction
exercises the entire front-end like the original tooling did.
"""

from __future__ import annotations

import random

from repro.core.hypergraph import Hypergraph
from repro.sql.convert import sql_to_hypergraphs
from repro.sql.schema import Schema

__all__ = ["synthetic_schema", "generate_sql_text", "generate_sql_application_cqs"]


def synthetic_schema(num_dimensions: int = 6) -> Schema:
    """A star schema: one fact table keyed into ``num_dimensions`` dimensions."""
    relations: dict[str, list[str]] = {
        "fact": [f"fk{i}" for i in range(num_dimensions)] + ["measure"],
    }
    for i in range(num_dimensions):
        relations[f"dim{i}"] = [f"d{i}_key", f"d{i}_attr", f"d{i}_ref"]
    relations["ref"] = ["ref_key", "ref_attr"]
    return Schema(relations)


def generate_sql_text(rng: random.Random, num_dimensions: int = 6) -> str:
    """One random SQL query over the synthetic schema."""
    dims = rng.sample(range(num_dimensions), rng.randint(2, min(4, num_dimensions)))
    from_items = ["fact f"] + [f"dim{i} t{i}" for i in dims]
    conditions = [f"f.fk{i} = t{i}.d{i}_key" for i in dims]

    # Sometimes chain a dimension into the shared reference table.
    if rng.random() < 0.5:
        i = rng.choice(dims)
        from_items.append("ref r")
        conditions.append(f"t{i}.d{i}_ref = r.ref_key")

    # Sometimes add a constant filter (vertex elimination in the pipeline).
    if rng.random() < 0.5:
        i = rng.choice(dims)
        conditions.append(f"t{i}.d{i}_attr = 'c{rng.randint(0, 9)}'")

    # Sometimes an uncorrelated IN-subquery (extracted separately).
    if rng.random() < 0.3:
        i = rng.choice(dims)
        conditions.append(
            f"t{i}.d{i}_key IN (SELECT ref.ref_key FROM ref WHERE ref.ref_attr = 'x')"
        )

    select = "SELECT f.measure"
    query = f"{select} FROM {', '.join(from_items)} WHERE {' AND '.join(conditions)};"

    # Sometimes wrap two dimensions in a view (Listing 3 style).
    if rng.random() < 0.3 and len(dims) >= 2:
        a, b = dims[0], dims[1]
        view = (
            f"WITH joined AS (SELECT f.fk{a} ka, f.fk{b} kb, f.measure m FROM fact f) "
            f"SELECT t{a}.d{a}_attr FROM joined j, dim{a} t{a}, dim{b} t{b} "
            f"WHERE j.ka = t{a}.d{a}_key AND j.kb = t{b}.d{b}_key;"
        )
        return view
    return query


def generate_sql_application_cqs(
    count: int, seed: int = 0, num_dimensions: int = 6
) -> list[Hypergraph]:
    """Generate ``count`` hypergraphs by running SQL through the pipeline."""
    rng = random.Random(seed)
    schema = synthetic_schema(num_dimensions)
    result: list[Hypergraph] = []
    attempt = 0
    while len(result) < count:
        sql = generate_sql_text(rng, num_dimensions)
        produced = sql_to_hypergraphs(
            sql, schema, name=f"cq_sql_{seed}_{attempt:04d}", min_atoms=2
        )
        attempt += 1
        for h in produced:
            if len(result) < count:
                result.append(h)
    return result
