"""CSP Random generator.

The paper's random CSPs (xcsp.org's random series) have very high degree
(nearly all > 5), moderate BIP/BMIP and VC-dimension up to 5, and hypertree
widths clearly above the application classes.  We sample dense random
constraint networks: many overlapping scopes over a small variable pool.

Besides bare hypergraphs, :func:`random_csp_instance` produces full
extensional CSP instances (with satisfiable-by-construction or random
tables) so the solver layer can be exercised on this class too.
"""

from __future__ import annotations

import itertools
import random

from repro.core.hypergraph import Hypergraph
from repro.csp.model import Constraint, CSPInstance

__all__ = ["generate_random_csps", "random_csp_instance"]


def _random_network(
    num_variables: int,
    num_constraints: int,
    arity_range: tuple[int, int],
    rng: random.Random,
    name: str,
) -> Hypergraph:
    pool = [f"x{i}" for i in range(num_variables)]
    edges = {}
    for j in range(num_constraints):
        arity = rng.randint(*arity_range)
        arity = min(arity, num_variables)
        edges[f"c{j}"] = rng.sample(pool, arity)
    return Hypergraph(edges, name=name).dedupe()


def generate_random_csps(
    count: int,
    seed: int = 0,
    variable_range: tuple[int, int] = (8, 18),
    constraint_factor: tuple[float, float] = (1.2, 2.2),
    arity_range: tuple[int, int] = (2, 4),
) -> list[Hypergraph]:
    """Generate ``count`` dense random constraint networks.

    ``constraint_factor`` scales the number of constraints relative to the
    number of variables — densities above 1 produce the high degrees the
    paper reports for this class.
    """
    rng = random.Random(seed)
    result = []
    for i in range(count):
        num_variables = rng.randint(*variable_range)
        factor = rng.uniform(*constraint_factor)
        num_constraints = max(3, int(num_variables * factor))
        result.append(
            _random_network(
                num_variables,
                num_constraints,
                arity_range,
                rng,
                f"csp_rand_{i:04d}",
            )
        )
    return result


def random_csp_instance(
    num_variables: int,
    num_constraints: int,
    domain_size: int,
    tightness: float,
    seed: int = 0,
    arity_range: tuple[int, int] = (2, 3),
    force_satisfiable: bool = False,
) -> CSPInstance:
    """A full extensional CSP instance with random tables.

    ``tightness`` is the fraction of the domain product *excluded* from each
    constraint's supports.  With ``force_satisfiable`` a hidden solution is
    planted (every constraint keeps the solution's tuple).
    """
    rng = random.Random(seed)
    variables = [f"x{i}" for i in range(num_variables)]
    domain = tuple(range(domain_size))
    domains = {v: domain for v in variables}
    solution = {v: rng.choice(domain) for v in variables}

    constraints = []
    for j in range(num_constraints):
        arity = min(rng.randint(*arity_range), num_variables)
        scope = tuple(rng.sample(variables, arity))
        full = list(itertools.product(domain, repeat=arity))
        keep = max(1, int(len(full) * (1.0 - tightness)))
        rng.shuffle(full)
        supports = set(full[:keep])
        if force_satisfiable:
            supports.add(tuple(solution[v] for v in scope))
        constraints.append(Constraint(f"c{j}", scope, frozenset(supports)))
    return CSPInstance(f"random_csp_{seed}", domains, constraints)
