"""CQ Random generator (the Pottinger–Halevy query-generator substitute).

The paper generates 500 random CQs with the MiniCon query generator's
"random" mode, with 5–100 vertices, 3–50 edges and arities 3–20.  Our
substitute draws each edge as a random vertex subset of the requested arity
over a shared vertex pool, matching that parameterisation at benchmark scale
(sizes are scaled down so the width analysis terminates on one machine; the
structural character — high degree, high intersection, mostly cyclic — is
what matters and is preserved).
"""

from __future__ import annotations

import random

from repro.core.hypergraph import Hypergraph

__all__ = ["random_query_hypergraph", "generate_random_cqs"]


def random_query_hypergraph(
    num_vertices: int,
    num_edges: int,
    max_arity: int,
    rng: random.Random,
    name: str = "",
    min_arity: int = 2,
) -> Hypergraph:
    """One random query hypergraph: each edge samples ``arity`` vertices.

    Vertices left isolated by the sampling simply do not appear (hypergraph
    vertices are the union of edges).
    """
    if min_arity > num_vertices:
        raise ValueError("min_arity cannot exceed the vertex pool size")
    pool = [f"v{i}" for i in range(num_vertices)]
    edges = {}
    for j in range(num_edges):
        arity = rng.randint(min_arity, min(max_arity, num_vertices))
        edges[f"e{j}"] = rng.sample(pool, arity)
    return Hypergraph(edges, name=name).dedupe()


def generate_random_cqs(
    count: int,
    seed: int = 0,
    vertex_range: tuple[int, int] = (5, 24),
    edge_range: tuple[int, int] = (3, 14),
    arity_range: tuple[int, int] = (3, 8),
) -> list[Hypergraph]:
    """Generate ``count`` CQ Random hypergraphs.

    Default ranges are the paper's (5–100 vertices, 3–50 edges, arity 3–20)
    scaled down ~4x for single-machine analysis.
    """
    rng = random.Random(seed)
    result = []
    for i in range(count):
        num_vertices = rng.randint(*vertex_range)
        num_edges = rng.randint(*edge_range)
        max_arity = rng.randint(*arity_range)
        result.append(
            random_query_hypergraph(
                num_vertices,
                num_edges,
                max_arity,
                rng,
                name=f"cq_rand_{i:04d}",
                min_arity=min(3, num_vertices),
            )
        )
    return result
