"""Seeded hypergraph generators for the five benchmark classes."""

from repro.benchmark.generators.application_cq import generate_application_cqs
from repro.benchmark.generators.random_cq import (
    random_query_hypergraph,
    generate_random_cqs,
)
from repro.benchmark.generators.application_csp import generate_application_csps
from repro.benchmark.generators.random_csp import (
    generate_random_csps,
    random_csp_instance,
)
from repro.benchmark.generators.other_csp import (
    circuit_hypergraph,
    generate_other_csps,
    pebbling_grid,
)

__all__ = [
    "generate_application_cqs",
    "generate_random_cqs",
    "random_query_hypergraph",
    "generate_application_csps",
    "generate_random_csps",
    "random_csp_instance",
    "generate_other_csps",
    "pebbling_grid",
    "circuit_hypergraph",
]
