"""CSP Other generator: pebbling grids and ISCAS-style circuits.

The paper's CSP Other class comes from the DBAI hypertree-decomposition
project: DaimlerChrysler configuration instances, ISCAS circuit
translations, and grids from pebbling problems.  The class contains the
hardest instances of the benchmark ("difficult to decompose", Section 6.2).

* :func:`pebbling_grid` — an n×m grid where each interior cell forms a
  hyperedge with its right and lower neighbours (the pebbling-move scopes);
  widths grow with ``min(n, m)``, giving the class its hard instances.
* :func:`circuit_hypergraph` — a layered random circuit: each gate is a
  hyperedge over its output and its (2–3) inputs drawn from earlier layers,
  like the ISCAS benchmark translations.
"""

from __future__ import annotations

import random

from repro.core.hypergraph import Hypergraph

__all__ = ["pebbling_grid", "circuit_hypergraph", "generate_other_csps"]


def pebbling_grid(rows: int, cols: int, name: str = "") -> Hypergraph:
    """The pebbling-grid hypergraph: cell + right + down neighbour scopes."""
    edges = {}
    for r in range(rows):
        for c in range(cols):
            scope = [f"p{r}_{c}"]
            if c + 1 < cols:
                scope.append(f"p{r}_{c + 1}")
            if r + 1 < rows:
                scope.append(f"p{r + 1}_{c}")
            if len(scope) > 1:
                edges[f"g{r}_{c}"] = scope
    return Hypergraph(edges, name=name or f"pebbling_{rows}x{cols}")


def circuit_hypergraph(
    num_inputs: int,
    num_gates: int,
    seed: int = 0,
    name: str = "",
    fan_in: tuple[int, int] = (2, 3),
) -> Hypergraph:
    """A layered random circuit: one hyperedge per gate (output + inputs)."""
    rng = random.Random(seed)
    signals = [f"in{i}" for i in range(num_inputs)]
    edges = {}
    for g in range(num_gates):
        inputs = rng.sample(signals, min(rng.randint(*fan_in), len(signals)))
        output = f"n{g}"
        edges[f"gate{g}"] = inputs + [output]
        signals.append(output)
        # Old signals slowly leave the pool, keeping the circuit layered.
        if len(signals) > max(6, num_inputs):
            signals.pop(0)
    return Hypergraph(edges, name=name or f"circuit_{num_inputs}_{num_gates}_{seed}")


def generate_other_csps(count: int, seed: int = 0) -> list[Hypergraph]:
    """Generate ``count`` CSP Other hypergraphs: grids and circuits mixed."""
    rng = random.Random(seed)
    result: list[Hypergraph] = []
    i = 0
    while len(result) < count:
        name = f"csp_other_{i:04d}"
        if i % 2 == 0:
            rows = rng.randint(3, 5)
            cols = rng.randint(3, 6)
            result.append(pebbling_grid(rows, cols, name=name))
        else:
            result.append(
                circuit_hypergraph(
                    rng.randint(3, 5),
                    rng.randint(8, 20),
                    seed=rng.randint(0, 10**6),
                    name=name,
                )
            )
        i += 1
    return result
