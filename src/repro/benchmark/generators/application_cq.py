"""CQ Application generator.

The paper's CQ Application class (SPARQL, Wikidata, LUBM, iBench, Doctors,
Deep, JOB, TPC-H, TPC-DS, SQLShare) is dominated by small queries: most have
at most 10 atoms, low arity, and are acyclic or have hw = 2 — all non-random
CQs in the paper have hw ≤ 3.  We emit a deterministic mix of the shapes
those workloads contain:

* **chain** joins (foreign-key walks — LUBM/Deep style), acyclic;
* **star** joins (fact table + dimensions — TPC-H/DS style), acyclic;
* **snowflake** joins (stars whose dimensions have their own satellites);
* **cycles** of length 3–6 (graph-pattern SPARQL queries), hw = 2;
* **chorded cycles** and **theta-sprockets** (JOB-style), hw 2–3;
* **triangle fans** sharing a hub, hw = 2.
"""

from __future__ import annotations

import random

from repro.core.hypergraph import Hypergraph

__all__ = ["generate_application_cqs"]


def _chain(length: int, arity: int, name: str) -> Hypergraph:
    """A chain query: consecutive atoms overlap in one variable."""
    edges = {}
    v = 0
    for i in range(length):
        edges[f"r{i}"] = [f"x{v + j}" for j in range(arity)]
        v += arity - 1
    return Hypergraph(edges, name=name)


def _star(points: int, arity: int, name: str) -> Hypergraph:
    """A star query: dimension atoms share one variable with the fact atom."""
    fact = [f"x{j}" for j in range(max(points, arity))]
    edges = {"fact": fact[: max(arity, points)]}
    for i in range(points):
        edges[f"dim{i}"] = [fact[i]] + [f"d{i}_{j}" for j in range(arity - 1)]
    return Hypergraph(edges, name=name)


def _snowflake(points: int, satellites: int, name: str) -> Hypergraph:
    """A star whose dimensions each have further satellite atoms."""
    edges = {"fact": [f"k{i}" for i in range(points)]}
    for i in range(points):
        edges[f"dim{i}"] = [f"k{i}", f"a{i}", f"b{i}"]
        for j in range(satellites):
            edges[f"sat{i}_{j}"] = [f"a{i}" if j % 2 == 0 else f"b{i}", f"s{i}_{j}"]
    return Hypergraph(edges, name=name)


def _cycle(length: int, name: str, arity: int = 2) -> Hypergraph:
    """A cycle query of the given length: hw = ghw = 2."""
    edges = {}
    for i in range(length):
        extra = [f"e{i}_{j}" for j in range(arity - 2)]
        edges[f"c{i}"] = [f"x{i}", f"x{(i + 1) % length}"] + extra
    return Hypergraph(edges, name=name)


def _chorded_cycle(length: int, chords: int, name: str) -> Hypergraph:
    """A cycle with chords (JOB-style dense join graphs)."""
    edges = {f"c{i}": [f"x{i}", f"x{(i + 1) % length}"] for i in range(length)}
    for j in range(chords):
        a = j % length
        b = (a + length // 2) % length
        if a != b:
            edges[f"ch{j}"] = [f"x{a}", f"x{b}"]
    return Hypergraph(edges, name=name)


def _triangle_fan(triangles: int, name: str) -> Hypergraph:
    """Triangles sharing a hub vertex: cyclic, hw = 2."""
    edges = {}
    for i in range(triangles):
        edges[f"t{i}a"] = ["hub", f"u{i}"]
        edges[f"t{i}b"] = [f"u{i}", f"v{i}"]
        edges[f"t{i}c"] = [f"v{i}", "hub"]
    return Hypergraph(edges, name=name)


def generate_application_cqs(count: int, seed: int = 0) -> list[Hypergraph]:
    """Generate ``count`` CQ Application hypergraphs (deterministic in seed)."""
    rng = random.Random(seed)
    shapes = []
    i = 0
    while len(shapes) < count:
        kind = i % 10
        name = f"cq_app_{i:04d}"
        if kind in (0, 1, 2):  # acyclic chains dominate real workloads
            shapes.append(_chain(rng.randint(3, 8), rng.randint(2, 4), name))
        elif kind in (3, 4):
            shapes.append(_star(rng.randint(3, 6), rng.randint(2, 4), name))
        elif kind == 5:
            shapes.append(_snowflake(rng.randint(3, 4), rng.randint(1, 2), name))
        elif kind in (6, 7):
            shapes.append(_cycle(rng.randint(3, 6), name, arity=rng.choice((2, 2, 3))))
        elif kind == 8:
            shapes.append(_chorded_cycle(rng.randint(5, 8), rng.randint(1, 2), name))
        else:
            shapes.append(_triangle_fan(rng.randint(2, 3), name))
        i += 1
    return shapes
