"""The HyperBench benchmark: generators, repository, and report tooling.

The paper collects 3,648 hypergraphs from CQ and CSP sources in five classes
(CQ Application, CQ Random, CSP Application, CSP Random, CSP Other).  The
original corpora (SPARQL/Wikidata logs, TPC-H/DS, SQLShare, xcsp.org, DBAI)
are not redistributable offline, so this package generates seeded synthetic
instances per class reproducing the size/arity/property distributions of the
paper's Figure 3 and Table 2; see DESIGN.md for the substitution rationale.
"""

from repro.benchmark.classes import CLASS_NAMES, BenchmarkClass
from repro.benchmark.repository import BenchmarkEntry, HyperBenchRepository
from repro.benchmark.build import build_default_benchmark

__all__ = [
    "BenchmarkClass",
    "CLASS_NAMES",
    "HyperBenchRepository",
    "BenchmarkEntry",
    "build_default_benchmark",
]
