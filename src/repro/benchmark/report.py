"""Static HTML report — the offline stand-in for the HyperBench web tool.

The paper exposes the benchmark at hyperbench.dbai.tuwien.ac.at, where users
browse hypergraphs and their analysis results.  :func:`render_html_report`
renders a repository (with whatever bounds/statistics have been computed)
into a single self-contained HTML page with per-class summaries and a
sortable instance table; :func:`write_html_report` saves it to disk.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.benchmark.classes import CLASS_NAMES
from repro.benchmark.repository import HyperBenchRepository

__all__ = ["render_html_report", "write_html_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { border-bottom: 2px solid #444; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #999; padding: 0.3em 0.7em; text-align: right; }
th { background: #eee; }
td.name, th.name { text-align: left; }
caption { font-weight: bold; margin-bottom: 0.4em; text-align: left; }
"""


def _format(value: object) -> str:
    if value is None:
        return "?"
    if isinstance(value, float):
        return f"{value:.2f}"
    return html.escape(str(value))


def render_html_report(repository: HyperBenchRepository, title: str = "HyperBench") -> str:
    """Render the repository as a single self-contained HTML document."""
    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{len(repository)} hypergraphs in {len(repository.classes())} classes.</p>",
    ]

    parts.append("<table><caption>Class summary</caption>")
    parts.append(
        "<tr><th class='name'>Class</th><th>Instances</th><th>hw &ge; 2</th>"
        "<th>max edges</th><th>max arity</th></tr>"
    )
    for benchmark_class in CLASS_NAMES:
        entries = repository.entries(benchmark_class)
        if not entries:
            continue
        cyclic = sum(1 for e in entries if e.is_cyclic)
        parts.append(
            "<tr>"
            f"<td class='name'>{html.escape(str(benchmark_class))}</td>"
            f"<td>{len(entries)}</td><td>{cyclic}</td>"
            f"<td>{max(e.hypergraph.num_edges for e in entries)}</td>"
            f"<td>{max(e.hypergraph.arity for e in entries)}</td>"
            "</tr>"
        )
    parts.append("</table>")

    parts.append("<table><caption>Instances</caption>")
    header = (
        "name",
        "class",
        "vertices",
        "edges",
        "arity",
        "degree",
        "bip",
        "bmip3",
        "bmip4",
        "vc_dim",
        "hw_low",
        "hw_high",
        "ghw_low",
        "ghw_high",
        "fhw_high",
    )
    parts.append(
        "<tr>" + "".join(
            f"<th class='name'>{h}</th>" if h in ("name", "class") else f"<th>{h}</th>"
            for h in header
        ) + "</tr>"
    )
    for entry in repository:
        record = entry.as_record()
        cells = []
        for column in header:
            css = " class='name'" if column in ("name", "class") else ""
            cells.append(f"<td{css}>{_format(record[column])}</td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</table></body></html>")
    return "".join(parts)


def write_html_report(
    repository: HyperBenchRepository, path: str | Path, title: str = "HyperBench"
) -> Path:
    """Write the HTML report; returns the path written."""
    path = Path(path)
    path.write_text(render_html_report(repository, title=title), encoding="utf-8")
    return path
