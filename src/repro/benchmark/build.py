"""Assembly of the default synthetic HyperBench benchmark.

The paper's benchmark has 3,648 instances; running its full analysis took a
10-machine cluster with 3600 s timeouts.  The default build here scales the
per-class counts down (preserving the class proportions) so the entire
Figure 4 / Tables 2–6 pipeline runs on one machine in minutes; ``scale``
adjusts the totals.
"""

from __future__ import annotations

from repro.benchmark.classes import BenchmarkClass
from repro.benchmark.generators import (
    generate_application_cqs,
    generate_application_csps,
    generate_other_csps,
    generate_random_cqs,
    generate_random_csps,
)
from repro.benchmark.repository import HyperBenchRepository

__all__ = ["build_default_benchmark", "DEFAULT_CLASS_COUNTS"]

#: Per-class instance counts at ``scale=1.0``.  The paper's proportions are
#: 1113 : 500 : 1090 : 863 : 82 — we keep roughly the same mix.
DEFAULT_CLASS_COUNTS: dict[BenchmarkClass, int] = {
    BenchmarkClass.CQ_APPLICATION: 56,
    BenchmarkClass.CQ_RANDOM: 25,
    BenchmarkClass.CSP_APPLICATION: 54,
    BenchmarkClass.CSP_RANDOM: 43,
    BenchmarkClass.CSP_OTHER: 8,
}

_GENERATORS = {
    BenchmarkClass.CQ_APPLICATION: generate_application_cqs,
    BenchmarkClass.CQ_RANDOM: generate_random_cqs,
    BenchmarkClass.CSP_APPLICATION: generate_application_csps,
    BenchmarkClass.CSP_RANDOM: generate_random_csps,
    BenchmarkClass.CSP_OTHER: generate_other_csps,
}


def build_default_benchmark(
    scale: float = 1.0,
    seed: int = 42,
    name: str = "hyperbench",
    sql_derived: int = 0,
    engine: "object | None" = None,
) -> HyperBenchRepository:
    """Build the synthetic benchmark (deterministic in ``seed``).

    ``scale`` multiplies every class count (minimum 2 instances per class so
    all experiment tables stay populated).  ``sql_derived`` additionally runs
    that many CQ Application instances through the full Section 5 SQL
    pipeline (generated SQL text → dependency graph → conjunctive core →
    hypergraph), like the paper's own benchmark construction.

    When a :class:`repro.engine.DecompositionEngine` with ``jobs > 1`` is
    supplied, the five class generators run in parallel worker processes;
    each generator is deterministic in ``seed`` and the classes are merged
    in their fixed order, so the result is identical to the sequential
    build.
    """
    repository = HyperBenchRepository(name=name)
    classes = list(DEFAULT_CLASS_COUNTS.items())
    jobs = getattr(engine, "jobs", 1) if engine is not None else 1
    if jobs > 1:
        from repro.engine.workers import run_callables

        calls = [
            (_GENERATORS[benchmark_class], (max(2, round(base_count * scale)), seed))
            for benchmark_class, base_count in classes
        ]
        generated = run_callables(calls, jobs)
        for (benchmark_class, _), hypergraphs in zip(classes, generated):
            for hypergraph in hypergraphs:
                repository.add(hypergraph, benchmark_class)
    else:
        for benchmark_class, base_count in classes:
            count = max(2, round(base_count * scale))
            generator = _GENERATORS[benchmark_class]
            for hypergraph in generator(count, seed=seed):
                repository.add(hypergraph, benchmark_class)
    if sql_derived:
        from repro.benchmark.generators.sql_workload import (
            generate_sql_application_cqs,
        )

        for hypergraph in generate_sql_application_cqs(sql_derived, seed=seed):
            repository.add(hypergraph, BenchmarkClass.CQ_APPLICATION)
    return repository
