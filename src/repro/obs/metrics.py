"""A unified, thread-safe metrics registry with Prometheus text exposition.

Every stats surface in the stack — :class:`~repro.engine.engine.EngineStats`,
:class:`~repro.service.scheduler.ServiceStats`, the result store's
hit/miss/evict accounting, and the kernel call counters shipped back from
worker processes — publishes into one process-global :data:`REGISTRY`, so
``GET /metrics`` renders a single coherent view of the process no matter how
many engines, schedulers or stores it hosts.  (Per-instance snapshots stay
on their owning classes; the registry is the *process* aggregate.)

Three metric types, all stdlib:

* :class:`Counter` — monotone floats, optional labels, names end ``_total``;
* :class:`Gauge` — set/inc/dec, optional labels;
* :class:`Histogram` — log-bucketed observations (default: powers of two
  from 1 ms), rendered as cumulative ``_bucket{le=...}`` series plus
  ``_sum`` / ``_count``.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition format
(version 0.0.4: ``# HELP`` / ``# TYPE`` comments, ``name{labels} value``
lines); :meth:`MetricsRegistry.snapshot` returns the same data as one
JSON-able dict under a consistent lock.  Setting
:attr:`MetricsRegistry.enabled` to ``False`` turns every ``inc`` /
``observe`` into a no-op — the instrumentation-overhead benchmark
(``"obs"`` in ``BENCH_kernel.json``) flips this to measure the cost.
"""

from __future__ import annotations

import math
import re
import threading
from collections.abc import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Log-spaced latency buckets: powers of two from 1 ms to ~65 s (plus +Inf).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(0.001 * 2**i for i in range(17))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_escape(value)}"' for key, value in labels
    )
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class _Metric:
    """Shared plumbing: name/help validation, label keying, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", registry: "MetricsRegistry | None" = None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._registry = registry
        self._lock = threading.Lock()

    @property
    def _enabled(self) -> bool:
        return self._registry is None or self._registry.enabled

    @staticmethod
    def _key(labels: dict) -> tuple[tuple[str, str], ...]:
        for name in labels:
            if not _LABEL_RE.match(name):
                raise ValueError(f"invalid label name {name!r}")
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def samples(self) -> "list[tuple[str, tuple, float]]":
        """``(name, labels, value)`` rows; labels is a sorted tuple of pairs."""
        raise NotImplementedError

    def render(self) -> str:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for name, labels, value in self.samples():
            lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
        return "\n".join(lines)


class Counter(_Metric):
    """A monotonically increasing value (name must end ``_total``)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", registry: "MetricsRegistry | None" = None):
        if not name.endswith("_total"):
            raise ValueError(f"counter {name!r} must end with '_total'")
        super().__init__(name, help, registry)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._enabled or amount == 0:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        return [(self.name, labels, value) for labels, value in items] or [
            (self.name, (), 0.0)
        ]


class Gauge(_Metric):
    """A value that can go up and down (queue depths, entry counts)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", registry: "MetricsRegistry | None" = None):
        super().__init__(name, help, registry)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        return [(self.name, labels, value) for labels, value in items] or [
            (self.name, (), 0.0)
        ]


class Histogram(_Metric):
    """Log-bucketed observations with cumulative Prometheus rendering.

    An observation equal to a bucket's upper edge counts into that bucket
    (Prometheus ``le`` semantics: less-than-or-equal).

    >>> h = Histogram("repro_test_seconds", buckets=(0.001, 0.002))
    >>> h.observe(0.001); h.observe(0.0015); h.observe(5.0)
    >>> h.bucket_counts()
    {0.001: 1, 0.002: 2, inf: 3}
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        registry: "MetricsRegistry | None" = None,
    ):
        super().__init__(name, help, registry)
        edges = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not edges or any(e <= 0 for e in edges):
            raise ValueError("histogram buckets must be positive and non-empty")
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # final slot: > last edge (+Inf)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._enabled:
            return
        value = float(value)
        index = len(self.buckets)
        for i, edge in enumerate(self.buckets):  # ≤ 20 edges: linear is fine
            if value <= edge:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts per upper edge (``math.inf`` for the overflow)."""
        with self._lock:
            counts = list(self._counts)
        cumulative: dict[float, int] = {}
        running = 0
        for edge, count in zip(self.buckets, counts):
            running += count
            cumulative[edge] = running
        cumulative[math.inf] = running + counts[-1]
        return cumulative

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def samples(self):
        rows = []
        for edge, cumulative in self.bucket_counts().items():
            rows.append(
                (f"{self.name}_bucket", (("le", _format_value(edge)),), float(cumulative))
            )
        with self._lock:
            rows.append((f"{self.name}_sum", (), self._sum))
            rows.append((f"{self.name}_count", (), float(self._count)))
        return rows


class MetricsRegistry:
    """Get-or-create metric store with one consistent snapshot/render lock.

    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_demo_total", "demo").inc(3)
    >>> registry.snapshot()["repro_demo_total"]["samples"]
    [{'labels': {}, 'value': 3.0}]
    >>> "repro_demo_total 3" in registry.render()
    True
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -------------------------------------------------------------- factories

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, registry=self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # ---------------------------------------------------------------- reading

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def snapshot(self) -> dict:
        """All metrics as one JSON-able dict (each metric locks internally)."""
        payload: dict = {}
        for metric in self.metrics():
            payload[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": [
                    {"name": name, "labels": dict(labels), "value": value}
                    if name != metric.name
                    else {"labels": dict(labels), "value": value}
                    for name, labels, value in metric.samples()
                ],
            }
        return payload

    def render(self, extra: "Iterable[_Metric] | None" = None) -> str:
        """The Prometheus text exposition (0.0.4) of every metric.

        ``extra`` lets a scrape handler append ad-hoc, non-registered
        metrics (live gauges over objects the registry does not own, e.g.
        store entry counts) without leaking them into the registry.
        """
        blocks = [metric.render() for metric in self.metrics()]
        for metric in extra or ():
            blocks.append(metric.render())
        return "\n".join(blocks) + "\n"


#: The process-global registry every layer publishes into.
REGISTRY = MetricsRegistry()
