"""Context-manager spans with cross-process propagation (stdlib only).

A **span** is one timed operation: it has a ``trace_id`` (shared by every
span of one request), its own ``span_id``, an optional ``parent_id``, a
wall-clock ``start`` and a monotonic-derived ``duration``, plus free-form
``attrs``.  The :class:`Tracer` hands out spans as context managers and
keeps the finished records in a bounded in-memory ring (the ``/debug/traces``
payload) and, optionally, an append-only JSONL **journal** that the
``repro trace show|summary`` CLI reads offline.

Propagation is explicit, not ambient-only: a span's :class:`TraceContext`
``(trace_id, span_id)`` is a picklable named tuple that travels through
:class:`~repro.engine.jobs.JobSpec` and the packed worker wire protocol, so
a span started inside a worker *process* parents correctly into the trace
that dispatched it.  Within one thread (or one asyncio task) nesting is
automatic via a :class:`contextvars.ContextVar`.

Worker processes do not share the parent's ring: they build detached spans
with :func:`make_span`, ship the finished records back over the result pipe,
and the parent :meth:`grafts <Tracer.graft>` them into its ring and journal.

Tracing is on by default and costs a few microseconds per span — the
``"obs"`` section of ``BENCH_kernel.json`` gates the end-to-end overhead at
< 5 % of a cold check.  Set :attr:`Tracer.enabled` to ``False`` to turn every
``span()`` into a shared no-op null span.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import NamedTuple

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "TRACER",
    "NULL_SPAN",
    "make_span",
    "span",
    "current_context",
]


class TraceContext(NamedTuple):
    """The picklable identity a child span needs: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One in-progress (then finished) timed operation.

    Spans are created through :meth:`Tracer.span` / :meth:`Tracer.start_span`
    (recorded into the tracer on :meth:`end`) or :func:`make_span` (detached
    — the caller ships :meth:`to_dict` records itself, e.g. from a worker
    process back to the parent).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "status",
        "attrs",
        "_start_mono",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        parent: TraceContext | tuple | None = None,
        tracer: "Tracer | None" = None,
        **attrs: object,
    ):
        self.name = name
        if parent is not None:
            self.trace_id, self.parent_id = parent[0], parent[1]
        else:
            self.trace_id, self.parent_id = _new_id(), None
        self.span_id = _new_id()
        self.start = time.time()
        self.duration: float | None = None
        self.status = "ok"
        self.attrs: dict = dict(attrs)
        self._start_mono = time.monotonic()
        self._tracer = tracer

    @property
    def context(self) -> TraceContext:
        """What a child span (possibly in another process) parents on."""
        return TraceContext(self.trace_id, self.span_id)

    @property
    def ended(self) -> bool:
        return self.duration is not None

    def set(self, **attrs: object) -> None:
        """Attach attributes (verdicts, counter deltas, sizes) to the span."""
        self.attrs.update(attrs)

    def end(self, status: str | None = None, **attrs: object) -> "Span":
        """Finish the span (idempotent) and record it with its tracer."""
        if self.duration is None:
            self.duration = time.monotonic() - self._start_mono
            if status is not None:
                self.status = status
            self.attrs.update(attrs)
            if self._tracer is not None:
                self._tracer._record(self.to_dict())
        return self

    def to_dict(self) -> dict:
        """The JSON-able record stored in the ring / journal / wire."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1000:.2f}ms" if self.ended else "open"
        return f"Span({self.name!r}, trace={self.trace_id}, {state})"


class _NullSpan:
    """The shared no-op span a disabled tracer yields (no allocation)."""

    __slots__ = ()
    context = None
    ended = True

    def set(self, **attrs: object) -> None:
        pass

    def end(self, status: str | None = None, **attrs: object) -> "_NullSpan":
        return self

    def to_dict(self) -> None:
        return None


NULL_SPAN = _NullSpan()


def make_span(
    name: str, parent: TraceContext | tuple | None = None, **attrs: object
) -> Span:
    """A detached span bound to no tracer — worker processes use this to
    build records they ship back over the result pipe."""
    return Span(name, parent=parent, tracer=None, **attrs)


class Tracer:
    """Span factory + bounded ring of finished records + optional journal.

    >>> tracer = Tracer(capacity=16)
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner") as inner:
    ...         same_trace = inner.trace_id == outer.trace_id
    >>> same_trace
    True
    >>> [record["name"] for record in tracer.spans()]
    ['inner', 'outer']
    """

    def __init__(
        self,
        capacity: int = 2048,
        journal: str | Path | None = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self._ring: deque[dict] = deque(maxlen=max(1, int(capacity)))
        self._lock = threading.Lock()
        self._journal_path: Path | None = None
        self._journal_handle = None
        self._current: contextvars.ContextVar[TraceContext | None] = (
            contextvars.ContextVar("repro_trace_context", default=None)
        )
        if journal is not None:
            self.set_journal(journal)

    # ----------------------------------------------------------- span factory

    def current_context(self) -> TraceContext | None:
        """The ambient context of this thread / asyncio task (or ``None``)."""
        if not self.enabled:
            return None
        return self._current.get()

    def start_span(
        self,
        name: str,
        parent: TraceContext | tuple | None = None,
        **attrs: object,
    ):
        """Start a span explicitly (caller must :meth:`Span.end` it).

        ``parent=None`` falls back to the ambient context; a span with no
        parent at all roots a fresh trace.  Does **not** switch the ambient
        context — use :meth:`span` for that.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self._current.get()
        return Span(name, parent=parent, tracer=self, **attrs)

    @contextmanager
    def span(
        self,
        name: str,
        parent: TraceContext | tuple | None = None,
        **attrs: object,
    ):
        """Context manager: start a span, make it ambient, end it on exit.

        An exception escaping the block marks the span ``status="error"``
        (with the exception's ``repr`` attached) and re-raises.
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        opened = self.start_span(name, parent=parent, **attrs)
        token = self._current.set(opened.context)
        try:
            yield opened
        except BaseException as exc:
            opened.end(status="error", error=repr(exc))
            raise
        finally:
            self._current.reset(token)
            opened.end()

    @contextmanager
    def attach(self, context: TraceContext | tuple | None):
        """Make a remote context ambient (no span of its own is created)."""
        if not self.enabled or context is None:
            yield
            return
        token = self._current.set(TraceContext(context[0], context[1]))
        try:
            yield
        finally:
            self._current.reset(token)

    # -------------------------------------------------------------- recording

    def _record(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            if self._journal_handle is not None:
                try:
                    self._journal_handle.write(
                        json.dumps(record, sort_keys=True) + "\n"
                    )
                except (OSError, ValueError):  # pragma: no cover - disk issues
                    self._journal_handle = None

    def graft(self, records: list[dict] | None) -> None:
        """Adopt finished span records built elsewhere (worker processes)."""
        if not records or not self.enabled:
            return
        for record in records:
            if isinstance(record, dict) and record.get("span_id"):
                self._record(record)

    # ---------------------------------------------------------------- reading

    def spans(self, limit: int | None = None) -> list[dict]:
        """The most recent finished records, oldest first."""
        with self._lock:
            records = list(self._ring)
        return records if limit is None else records[-limit:]

    def traces(self, limit: int | None = None) -> list[dict]:
        """Ring records grouped by trace, most recently finished trace first.

        Each entry is ``{"trace_id", "spans": [...]}`` with the spans in
        start order — the ``/debug/traces`` payload.
        """
        grouped: dict[str, list[dict]] = {}
        for record in self.spans():
            grouped.setdefault(record["trace_id"], []).append(record)
        ordered = sorted(
            grouped.items(),
            key=lambda item: max(r["start"] for r in item[1]),
            reverse=True,
        )
        if limit is not None:
            ordered = ordered[: max(0, int(limit))]
        return [
            {
                "trace_id": trace_id,
                "spans": sorted(records, key=lambda r: r["start"]),
            }
            for trace_id, records in ordered
        ]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # ---------------------------------------------------------------- journal

    @property
    def journal_path(self) -> Path | None:
        return self._journal_path

    def set_journal(self, path: str | Path | None) -> None:
        """Start (or stop, with ``None``) appending finished spans as JSONL."""
        with self._lock:
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None
            self._journal_path = None
            if path is not None:
                self._journal_path = Path(path)
                self._journal_handle = self._journal_path.open(
                    "a", encoding="utf-8", buffering=1
                )


#: The process-global tracer every layer records into by default.
TRACER = Tracer()

#: Module-level conveniences over the global tracer.
span = TRACER.span
current_context = TRACER.current_context


def load_journal(path: str | Path) -> list[dict]:
    """Read a JSONL trace journal, dropping corrupt lines (truncated tails)."""
    records: list[dict] = []
    journal = Path(path)
    if not journal.exists():
        return records
    for line in journal.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("span_id"):
            records.append(record)
    return records
