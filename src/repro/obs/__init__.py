"""Telemetry for the decomposition stack: spans, metrics, and surfaces.

Two halves, both stdlib-only and process-global by default:

* :mod:`repro.obs.trace` — context-manager **spans** with trace/span/parent
  IDs, cross-process propagation through the worker wire protocol, a bounded
  in-memory ring, and an optional JSONL journal.  Global instance:
  :data:`TRACER`.
* :mod:`repro.obs.metrics` — a **registry** of counters/gauges/histograms
  that every stats surface publishes into, with Prometheus text exposition.
  Global instance: :data:`REGISTRY`.

The service exposes both (``GET /metrics``, ``GET /debug/traces``), and the
``repro trace`` / ``repro metrics`` CLI subcommands read them offline or over
HTTP.  See ``docs/OBSERVABILITY.md`` for the span model and the metric name
catalogue.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    TRACER,
    current_context,
    load_journal,
    make_span,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "NULL_SPAN",
    "current_context",
    "load_journal",
    "make_span",
    "span",
]
