"""Overload-protection primitives: admission, rate limits, circuit breaking.

Everything here exists so the service *degrades* instead of collapsing when
offered more work than it can serve.  Three cooperating mechanisms, all
consulted by :class:`~repro.service.scheduler.BatchScheduler` before any
engine work is created:

* :class:`AdmissionController` — a bounded pending-job budget (with
  priority-class watermarks so high-priority traffic keeps headroom when
  the budget tightens), per-kind concurrency caps, and per-tenant
  :class:`TokenBucket` rate limits.  A request past any limit raises
  :class:`Rejected` *immediately* — the HTTP layer maps it to ``429`` or
  ``503`` with a ``Retry-After`` hint — instead of queueing unboundedly.
* :class:`CircuitBreaker` — wraps engine/dispatcher wave dispatch.  Repeated
  consecutive wave failures open the circuit: new work is refused with fast
  503s (and ``/healthz`` reports ``degraded``) until a cooldown passes, then
  a single half-open probe wave decides whether to close again.  This turns
  a wedged backend (dead workers, a hung queue) from a pile-up of blocked
  requests into an immediately visible, immediately cheap failure mode.
* :class:`Rejected` — the typed refusal every layer shares, carrying a
  machine-readable ``reason`` and an optional ``retry_after`` hint that
  clients (see :class:`~repro.service.client.ServiceClient`'s backoff) are
  expected to honor.

The verdict taxonomy, watermark policy and breaker state machine are
documented in ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict

from repro.errors import ReproError
from repro.obs.metrics import REGISTRY

__all__ = [
    "Rejected",
    "TokenBucket",
    "AdmissionController",
    "CircuitBreaker",
    "REJECTED",
    "PRIORITIES",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
]

#: Verdict of a request refused at admission (HTTP 429/503 + ``Retry-After``).
REJECTED = "rejected"

#: Priority classes, in admission order: ``high`` may use the full pending
#: budget, ``normal`` is cut off at 90 % of it, ``low`` at 50 % — so when the
#: service saturates, background traffic is shed first and urgent traffic
#: keeps reserved headroom.
PRIORITIES = {"high": 0, "normal": 1, "low": 2}
_WATERMARKS = {0: 1.0, 1: 0.9, 2: 0.5}

# Circuit breaker states (gauge encoding below must match the docs).
CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"
_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Tenants tracked per controller before the least-recently-seen bucket is
#: dropped (a dropped tenant simply starts over with a full bucket).
_MAX_TENANTS = 1024

_M_REJECTED = REGISTRY.counter(
    "repro_service_rejected_total",
    "Requests refused at admission, by reason (capacity/kind/rate/breaker/draining).",
)
_M_SHED = REGISTRY.counter(
    "repro_service_shed_total",
    "Admitted flights dropped before dispatch (expired deadline or open breaker).",
)
_M_BREAKER = REGISTRY.gauge(
    "repro_service_breaker_state",
    "Wave-dispatch circuit breaker state: 0 closed, 1 half-open, 2 open.",
)


class Rejected(ReproError):
    """A request refused by overload protection (never queued, never run).

    ``reason`` is machine-readable — ``capacity`` (pending budget),
    ``kind`` (per-kind cap), ``rate`` (tenant token bucket), ``breaker``
    (circuit open), ``draining`` (shutdown in progress).  ``retry_after``
    is the seconds the caller should wait before retrying, when the server
    can estimate one.
    """

    def __init__(self, reason: str, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """The classic leaky-bucket rate limiter (``rate`` tokens/s, ``burst`` cap).

    Not thread-safe on its own — the owning :class:`AdmissionController`
    serialises access.  ``clock`` is injectable for deterministic tests.

    >>> clock = iter([0.0, 0.0, 0.0, 0.1, 2.0]).__next__
    >>> bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    >>> bucket.take(), bucket.take()     # the burst allowance
    (0.0, 0.0)
    >>> bucket.take() > 0.0              # empty: returns the wait, in seconds
    True
    >>> bucket.take()                    # 2 s later: refilled
    0.0
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.capacity = float(burst)
        self.tokens = self.capacity
        self._clock = clock
        self._updated = clock()

    def take(self) -> float:
        """Take one token: ``0.0`` on success, else seconds until one refills."""
        now = self._clock()
        self.tokens = min(self.capacity, self.tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Decide, synchronously and cheaply, whether new work may enter.

    Parameters
    ----------
    max_pending:
        The pending-job budget: flights queued or mid-wave.  ``None``
        disables the budget.  Priority watermarks apply (see
        :data:`PRIORITIES`): ``high`` fills the whole budget, ``normal``
        90 %, ``low`` 50 % — each at least 1, so tiny budgets still admit.
    kind_limits:
        Per-kind in-flight caps, e.g. ``{"width": 2}`` keeps long sweeps
        from crowding out cheap checks.  Kinds absent from the map are
        uncapped.
    tenant_rate / tenant_burst:
        Per-tenant token-bucket admission: ``tenant_rate`` new flights per
        second sustained, bursts up to ``tenant_burst``.  Requests without a
        tenant share one anonymous bucket.  ``None`` disables rate limiting.
    retry_after_hint:
        The ``Retry-After`` suggestion attached to capacity/kind rejections
        (rate rejections compute the exact bucket refill time instead).
    """

    def __init__(
        self,
        max_pending: int | None = None,
        kind_limits: dict[str, int] | None = None,
        tenant_rate: float | None = None,
        tenant_burst: float | None = None,
        retry_after_hint: float = 1.0,
        clock=time.monotonic,
    ):
        self.max_pending = None if max_pending is None else max(1, int(max_pending))
        self.kind_limits = dict(kind_limits) if kind_limits else {}
        self.tenant_rate = tenant_rate
        self.tenant_burst = (
            tenant_burst
            if tenant_burst is not None
            else (max(1.0, tenant_rate) if tenant_rate is not None else None)
        )
        self.retry_after_hint = float(retry_after_hint)
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def threshold(self, rank: int) -> int | None:
        """The pending count at which this priority class is cut off."""
        if self.max_pending is None:
            return None
        return max(1, int(self.max_pending * _WATERMARKS.get(rank, 0.5)))

    def admit(
        self,
        kind: str,
        tenant: str | None,
        rank: int,
        pending: int,
        kind_pending: dict[str, int],
    ) -> None:
        """Raise :class:`Rejected` if this request must not create new work.

        ``pending`` and ``kind_pending`` are the scheduler's live in-flight
        counts; coalesced joins and store answers never reach here, so only
        genuinely new flights consume budget and tokens.
        """
        threshold = self.threshold(rank)
        if threshold is not None and pending >= threshold:
            raise Rejected(
                "capacity",
                f"pending budget exhausted ({pending} in flight, "
                f"budget {self.max_pending}, priority cutoff {threshold})",
                self.retry_after_hint,
            )
        limit = self.kind_limits.get(kind)
        if limit is not None and kind_pending.get(kind, 0) >= limit:
            raise Rejected(
                "kind",
                f"too many in-flight {kind!r} jobs (cap {limit})",
                self.retry_after_hint,
            )
        if self.tenant_rate is not None:
            name = tenant or ""
            bucket = self._buckets.get(name)
            if bucket is None:
                bucket = TokenBucket(self.tenant_rate, self.tenant_burst, self._clock)
                self._buckets[name] = bucket
                while len(self._buckets) > _MAX_TENANTS:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(name)
            wait = bucket.take()
            if wait > 0.0:
                raise Rejected(
                    "rate",
                    f"tenant {name or 'anonymous'!r} exceeded "
                    f"{self.tenant_rate}/s (burst {self.tenant_burst})",
                    wait,
                )

    def snapshot(self) -> dict:
        """JSON-able policy + live-bucket view for ``/stats``."""
        return {
            "max_pending": self.max_pending,
            "kind_limits": dict(self.kind_limits),
            "tenant_rate": self.tenant_rate,
            "tenant_burst": self.tenant_burst,
            "tenants_tracked": len(self._buckets),
        }


class CircuitBreaker:
    """closed → (N consecutive failures) → open → (cooldown) → half-open probe.

    ``record_failure`` / ``record_success`` are fed by the scheduler's wave
    loop: a wave that raises is a failure, a wave that returns is a success.
    While **open**, :meth:`allow` refuses dispatch and admission refuses new
    flights (fast 503s); after ``reset_seconds`` the breaker turns
    **half-open** and :meth:`allow` grants exactly one probe wave — its
    outcome closes or re-opens the circuit.

    Thread-safe: the scheduler calls from its event loop, ``/healthz`` and
    ``/stats`` read :attr:`state` from wherever they like.

    >>> clock = iter([float(i) for i in range(10)]).__next__
    >>> breaker = CircuitBreaker(failure_threshold=2, reset_seconds=3.0, clock=clock)
    >>> breaker.record_failure(); breaker.state
    'closed'
    >>> breaker.record_failure(); breaker.state
    'open'
    >>> breaker.allow()
    False
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        clock=time.monotonic,
    ):
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Lifetime open transitions (the "how often did we trip" counter).
        self.opened = 0
        _M_BREAKER.set(_STATE_CODES[CLOSED])

    # ------------------------------------------------------------- internals

    def _tick(self) -> str:
        """Advance open → half-open when the cooldown has elapsed (locked)."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.reset_seconds:
            self._state = HALF_OPEN
            self._probing = False
            _M_BREAKER.set(_STATE_CODES[HALF_OPEN])
        return self._state

    # ---------------------------------------------------------------- public

    @property
    def state(self) -> str:
        with self._lock:
            return self._tick()

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """May a wave dispatch right now?  Half-open grants a single probe."""
        with self._lock:
            state = self._tick()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._state = CLOSED
                _M_BREAKER.set(_STATE_CODES[CLOSED])

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            state = self._tick()
            if state == HALF_OPEN or (
                state == CLOSED and self._failures >= self.failure_threshold
            ):
                if self._state != OPEN:
                    self.opened += 1
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
                _M_BREAKER.set(_STATE_CODES[OPEN])

    def retry_after(self) -> float:
        """Seconds until the next half-open probe (0 when not open)."""
        with self._lock:
            if self._tick() != OPEN:
                return 0.0
            return max(0.0, self.reset_seconds - (self._clock() - self._opened_at))

    def snapshot(self) -> dict:
        with self._lock:
            state = self._tick()
            return {
                "state": state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_seconds": self.reset_seconds,
                "opened": self.opened,
                "retry_after": (
                    max(0.0, self.reset_seconds - (self._clock() - self._opened_at))
                    if state == OPEN
                    else 0.0
                ),
            }


def retry_after_header(retry_after: float | None) -> str | None:
    """Format a ``Retry-After`` value (integer seconds, rounded up)."""
    if retry_after is None:
        return None
    return str(max(0, math.ceil(retry_after)))
