"""A synchronous client for the decomposition service (stdlib ``http.client``).

One :class:`ServiceClient` wraps one keep-alive HTTP connection; it is not
thread-safe — give each thread its own client (connections are cheap, the
server multiplexes).  Hypergraphs are accepted as live
:class:`~repro.core.hypergraph.Hypergraph` objects (serialized to the
detkdecomp text format on the wire) or as ready-made ``.hg`` text.

.. code-block:: python

    from repro.service import ServiceClient

    with ServiceClient(port=8080) as client:
        client.healthz()                          # {"status": "ok", ...}
        client.check(h, k=2)                      # {"verdict": "yes", ...}
        client.width(h, max_k=6)                  # {"width": 2, ...}
        client.decompose(h, k=2)["decomposition"] # the tree, as JSON
        client.stats()["service"]["coalesced"]
"""

from __future__ import annotations

import http.client
import json
import socket

from repro.core.hypergraph import Hypergraph
from repro.errors import ReproError
from repro.io.hg_format import format_hypergraph

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """The service answered with an error status (the body rides along)."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"service returned {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


def _wire_hypergraph(hypergraph: Hypergraph | str) -> str:
    if isinstance(hypergraph, Hypergraph):
        return format_hypergraph(hypergraph)
    return hypergraph


class ServiceClient:
    """Talk to a running decomposition service over HTTP.

    Parameters
    ----------
    host, port:
        Where ``repro serve`` (or a :class:`ServiceThread`) is listening.
    timeout:
        Socket timeout in seconds — the client-side cap on how long one
        request may take end to end.  Distinct from the *job* ``timeout``
        (the engine's per-check budget) and ``deadline`` (how long the
        service holds the request before answering ``"expired"``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -------------------------------------------------------------- plumbing

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            stale = conn.sock is not None  # a reused keep-alive socket
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except socket.timeout:
                # A genuine client-side timeout: the request may be running
                # server-side, so re-sending it would double-submit.
                self.close()
                raise
            except (http.client.HTTPException, ConnectionError, OSError):
                # A keep-alive connection the server already dropped; retry
                # exactly once on a fresh socket.  A failure on a *fresh*
                # connection (refused, unreachable) is real — let it out.
                self.close()
                if attempt or not stale:
                    raise
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(response.status, {"error": f"non-JSON body: {exc}"}) from exc
        if response.status != 200:
            raise ServiceError(response.status, decoded)
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- requests

    def check(
        self,
        hypergraph: Hypergraph | str,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> dict:
        """One ``Check(H, k)`` verdict (no decomposition in the response)."""
        return self._request("POST", "/check", {
            "hypergraph": _wire_hypergraph(hypergraph), "k": k, "method": method,
            "timeout": timeout, "deadline": deadline,
        })

    def decompose(
        self,
        hypergraph: Hypergraph | str,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Like :meth:`check`, but a "yes" carries the decomposition tree."""
        return self._request("POST", "/decompose", {
            "hypergraph": _wire_hypergraph(hypergraph), "k": k, "method": method,
            "timeout": timeout, "deadline": deadline,
        })

    def width(
        self,
        hypergraph: Hypergraph | str,
        max_k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Exact width by iterating k (``"width"`` present when exact)."""
        return self._request("POST", "/width", {
            "hypergraph": _wire_hypergraph(hypergraph), "max_k": max_k,
            "method": method, "timeout": timeout, "deadline": deadline,
        })

    def portfolio(
        self,
        hypergraph: Hypergraph | str,
        k: int,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> dict:
        """The Table 4 GHD portfolio race at width ``k``."""
        return self._request("POST", "/portfolio", {
            "hypergraph": _wire_hypergraph(hypergraph), "k": k,
            "timeout": timeout, "deadline": deadline,
        })

    def stats(self) -> dict:
        """Service / engine / store counters (coalescing, waves, hit rates)."""
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        """Liveness probe (uptime, version, pid, cache path ride along)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The service's ``/metrics`` payload — raw Prometheus text."""
        conn = self._connection()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # one retry on a stale keep-alive socket, as in _request
            self.close()
            conn = self._connection()
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            data = response.read()
        if response.status != 200:
            raise ServiceError(response.status, {"error": data.decode("utf-8", "replace")})
        return data.decode("utf-8")

    def traces(self, limit: int = 20) -> dict:
        """The tracer ring grouped by trace (the ``/debug/traces`` payload)."""
        return self._request("GET", f"/debug/traces?limit={int(limit)}")
