"""A synchronous client for the decomposition service (stdlib ``http.client``).

One :class:`ServiceClient` wraps one keep-alive HTTP connection; it is not
thread-safe — give each thread its own client (connections are cheap, the
server multiplexes).  Hypergraphs are accepted as live
:class:`~repro.core.hypergraph.Hypergraph` objects (serialized to the
detkdecomp text format on the wire) or as ready-made ``.hg`` text.

.. code-block:: python

    from repro.service import ServiceClient

    with ServiceClient(port=8080) as client:
        client.healthz()                          # {"status": "ok", ...}
        client.check(h, k=2)                      # {"verdict": "yes", ...}
        client.width(h, max_k=6)                  # {"width": 2, ...}
        client.decompose(h, k=2)["decomposition"] # the tree, as JSON
        client.stats()["service"]["coalesced"]
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time

from repro.core.hypergraph import Hypergraph
from repro.errors import ReproError
from repro.io.hg_format import format_hypergraph

__all__ = ["ServiceClient", "ServiceError"]

#: Statuses the backoff loop may retry: the server *asked* us to come back
#: later (overload refusals), never plain client or server errors.
_RETRYABLE = (429, 503)


class ServiceError(ReproError):
    """The service answered with an error status (the body rides along).

    ``retry_after`` carries the server's ``Retry-After`` hint in seconds
    (header or payload field), when one was sent — overload refusals
    (429/503) include it so callers can pace their retries.
    """

    def __init__(
        self, status: int, payload: dict, retry_after: float | None = None
    ):
        super().__init__(f"service returned {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


def _wire_hypergraph(hypergraph: Hypergraph | str) -> str:
    if isinstance(hypergraph, Hypergraph):
        return format_hypergraph(hypergraph)
    return hypergraph


def _retry_after_from(response, payload: dict) -> float | None:
    """The server's pacing hint: the ``Retry-After`` header (integer
    seconds) or the JSON ``retry_after`` field, whichever is present."""
    header = response.getheader("Retry-After")
    if header is not None:
        try:
            return float(header)
        except ValueError:
            pass
    value = payload.get("retry_after") if isinstance(payload, dict) else None
    return float(value) if isinstance(value, (int, float)) else None


class ServiceClient:
    """Talk to a running decomposition service over HTTP.

    Parameters
    ----------
    host, port:
        Where ``repro serve`` (or a :class:`ServiceThread`) is listening.
    timeout:
        Socket timeout in seconds — the client-side cap on how long one
        request may take end to end.  Distinct from the *job* ``timeout``
        (the engine's per-check budget) and ``deadline`` (how long the
        service holds the request before answering ``"expired"``).
    retries:
        How many times a ``429``/``503`` overload refusal is retried with
        jittered exponential backoff before the :class:`ServiceError`
        escapes.  ``0`` (the default) surfaces refusals immediately —
        callers that *want* pacing opt in.  Other statuses never retry.
    retry_budget:
        Total seconds the backoff loop may spend sleeping across one
        logical request; when the next delay would exceed it, the refusal
        escapes even with retries left.
    backoff_base / backoff_cap:
        The exponential schedule: attempt *n* sleeps
        ``min(cap, base * 2**n)`` scaled by a jitter factor in
        ``[0.5, 1.0)`` — and never less than the server's ``Retry-After``
        hint, which overrides a too-eager schedule.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 300.0,
        retries: int = 0,
        retry_budget: float = 30.0,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        rng=random.random,
        sleep=time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_budget = float(retry_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = rng
        self._sleep = sleep
        self._conn: http.client.HTTPConnection | None = None

    # -------------------------------------------------------------- plumbing

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        """One logical request: overload refusals retry under the budget."""
        slept = 0.0
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if exc.status not in _RETRYABLE or attempt >= self.retries:
                    raise
                delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
                delay *= 0.5 + self._rng() / 2.0  # jitter: [0.5, 1.0) x
                if exc.retry_after is not None:
                    # The server knows better than our schedule does.
                    delay = max(delay, exc.retry_after)
                if slept + delay > self.retry_budget:
                    raise
                self._sleep(delay)
                slept += delay
                attempt += 1

    def _request_once(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            stale = conn.sock is not None  # a reused keep-alive socket
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except socket.timeout:
                # A genuine client-side timeout: the request may be running
                # server-side, so re-sending it would double-submit.
                self.close()
                raise
            except (http.client.HTTPException, ConnectionError, OSError):
                # A keep-alive connection the server already dropped; retry
                # exactly once on a fresh socket.  A failure on a *fresh*
                # connection (refused, unreachable) is real — let it out.
                self.close()
                if attempt or not stale:
                    raise
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(response.status, {"error": f"non-JSON body: {exc}"}) from exc
        if response.status != 200:
            raise ServiceError(
                response.status, decoded,
                retry_after=_retry_after_from(response, decoded),
            )
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- requests

    def check(
        self,
        hypergraph: Hypergraph | str,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """One ``Check(H, k)`` verdict (no decomposition in the response)."""
        return self._request("POST", "/check", {
            "hypergraph": _wire_hypergraph(hypergraph), "k": k, "method": method,
            "timeout": timeout, "deadline": deadline,
            "tenant": tenant, "priority": priority,
        })

    def decompose(
        self,
        hypergraph: Hypergraph | str,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """Like :meth:`check`, but a "yes" carries the decomposition tree."""
        return self._request("POST", "/decompose", {
            "hypergraph": _wire_hypergraph(hypergraph), "k": k, "method": method,
            "timeout": timeout, "deadline": deadline,
            "tenant": tenant, "priority": priority,
        })

    def width(
        self,
        hypergraph: Hypergraph | str,
        max_k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """Exact width by iterating k (``"width"`` present when exact)."""
        return self._request("POST", "/width", {
            "hypergraph": _wire_hypergraph(hypergraph), "max_k": max_k,
            "method": method, "timeout": timeout, "deadline": deadline,
            "tenant": tenant, "priority": priority,
        })

    def portfolio(
        self,
        hypergraph: Hypergraph | str,
        k: int,
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """The Table 4 GHD portfolio race at width ``k``."""
        return self._request("POST", "/portfolio", {
            "hypergraph": _wire_hypergraph(hypergraph), "k": k,
            "timeout": timeout, "deadline": deadline,
            "tenant": tenant, "priority": priority,
        })

    def stats(self) -> dict:
        """Service / engine / store counters (coalescing, waves, hit rates)."""
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        """Liveness probe (uptime, version, pid, cache path ride along)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The service's ``/metrics`` payload — raw Prometheus text."""
        conn = self._connection()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # one retry on a stale keep-alive socket, as in _request
            self.close()
            conn = self._connection()
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            data = response.read()
        if response.status != 200:
            raise ServiceError(response.status, {"error": data.decode("utf-8", "replace")})
        return data.decode("utf-8")

    def traces(self, limit: int = 20) -> dict:
        """The tracer ring grouped by trace (the ``/debug/traces`` payload)."""
        return self._request("GET", f"/debug/traces?limit={int(limit)}")
