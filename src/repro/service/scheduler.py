"""The coalescing batch scheduler — the service's asyncio front-end.

The scheduler is what makes "heavy traffic from many users" cheap: it sits
between concurrent clients and one shared :class:`~repro.engine.engine.\
DecompositionEngine` and spends at most one engine dispatch per *distinct*
piece of work, no matter how many clients ask for it at once.  Three layers
of deduplication apply, in order:

1. **Store fast path.**  Before anything is queued, the request is replayed
   against the result store via :meth:`DecompositionEngine.try_replay` —
   exact rows, verdicts implied by the per-method bounds index, and
   cross-method ``kind_bounds`` knowledge all answer here, synchronously,
   with no wave latency.
2. **Coalescing.**  Requests that miss the store are keyed by their job
   identity (``JobSpec.key()``: kind, fingerprint, method, k/max_k, timeout
   budget).  If an identical job is already *in flight* — queued or mid-wave
   — the new request simply awaits the same future: N concurrent identical
   requests cost exactly one dispatch.
3. **Batch waves.**  Novel jobs queue for a short ``window`` (letting a
   burst accumulate), then up to ``max_wave`` of them run as one
   :meth:`DecompositionEngine.run_batch` on a worker thread — so a parallel
   engine fans the whole wave across its process pool, and the event loop
   stays free to accept (and coalesce) more traffic meanwhile.

Per-request **deadlines** are enforced at the awaiting edge: a request that
cannot wait any longer resolves with an ``"expired"`` verdict while the
underlying flight keeps running — its result still lands in the store, so
the next asker gets it from the fast path.  The deadline also *propagates
down*: it clamps the engine job timeout at admission, expired-on-arrival
requests never register a flight, and flights whose every waiter has given
up are **shed** at wave formation instead of dispatched.

Under overload the scheduler refuses work instead of queueing it (see
:mod:`repro.service.overload`): an :class:`~repro.service.overload.\
AdmissionController` bounds the pending budget / per-kind concurrency /
per-tenant rates, and a :class:`~repro.service.overload.CircuitBreaker`
around wave dispatch converts a wedged backend into fast, typed
``"rejected"`` refusals.  :meth:`BatchScheduler.drain` is the graceful-
shutdown half: stop admitting, let in-flight waves land, report stragglers.

The scheduler is single-loop asyncio; the only blocking work it performs on
the loop thread is SQLite peeks (microseconds — the store locks internally
and is never held across a decomposition search).
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from dataclasses import dataclass, field

from repro.core.hypergraph import Hypergraph
from repro.engine.engine import DecompositionEngine
from repro.engine.jobs import CHECK, JobResult, JobSpec
from repro.io.json_io import decomposition_to_json
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.service.overload import (
    OPEN,
    PRIORITIES,
    REJECTED,
    AdmissionController,
    CircuitBreaker,
    Rejected,
    _M_REJECTED,
    _M_SHED,
)

__all__ = ["BatchScheduler", "ServiceStats", "EXPIRED", "ERROR", "REJECTED"]

#: Verdict of a request whose deadline passed while its flight was pending.
EXPIRED = "expired"
#: Verdict of a request whose wave failed with an unexpected exception.
ERROR = "error"

# Process-wide service metric families (see docs/OBSERVABILITY.md).
_M_REQUESTS = REGISTRY.counter(
    "repro_service_requests_total", "Jobs submitted to the batch scheduler."
)
_M_STORE_ANSWERS = REGISTRY.counter(
    "repro_service_store_answers_total",
    "Scheduler requests answered synchronously from the result store.",
)
_M_COALESCED = REGISTRY.counter(
    "repro_service_coalesced_total",
    "Scheduler requests that joined an identical in-flight job.",
)
_M_EXPIRED = REGISTRY.counter(
    "repro_service_expired_total",
    "Scheduler requests whose deadline passed before their flight landed.",
)
_M_ERRORS = REGISTRY.counter(
    "repro_service_errors_total", "Scheduler flights that resolved with an error."
)
_M_WAVES = REGISTRY.counter(
    "repro_service_waves_total", "Batch waves dispatched to the engine."
)
_M_WAVE_JOBS = REGISTRY.counter(
    "repro_service_wave_jobs_total", "Jobs dispatched across all batch waves."
)


@dataclass
class ServiceStats:
    """Request accounting for one scheduler (the ``/stats`` service section).

    ``requests`` counts everything submitted; ``store_answers`` the subset
    answered synchronously from the result store; ``coalesced`` the subset
    that joined an already-in-flight identical job.  The remainder —
    ``requests - store_answers - coalesced`` — is what actually reached the
    engine, grouped into ``waves`` batches of ``wave_jobs`` total jobs.
    """

    requests: int = 0
    store_answers: int = 0
    coalesced: int = 0
    expired: int = 0
    errors: int = 0
    waves: int = 0
    wave_jobs: int = 0
    #: Requests refused at admission (budget/kind/rate/breaker/draining).
    rejected: int = 0
    #: Admitted flights dropped before dispatch (dead deadline, open breaker).
    shed: int = 0
    by_kind: dict = field(default_factory=dict)
    #: Monotonic clock reading at scheduler construction — ``uptime_seconds``
    #: in the snapshot derives from it, immune to wall-clock adjustments.
    started_at: float = field(default_factory=time.monotonic)

    @property
    def dispatched(self) -> int:
        return (
            self.requests - self.store_answers - self.coalesced - self.rejected
        )

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "store_answers": self.store_answers,
            "coalesced": self.coalesced,
            "dispatched": self.dispatched,
            "expired": self.expired,
            "errors": self.errors,
            "waves": self.waves,
            "wave_jobs": self.wave_jobs,
            "rejected": self.rejected,
            "shed": self.shed,
            "by_kind": dict(self.by_kind),
            "started_at": self.started_at,
            "uptime_seconds": self.uptime_seconds,
        }


@dataclass(eq=False)
class _Flight:
    """One in-flight unit of engine work, shared by all coalesced waiters."""

    spec: JobSpec
    future: asyncio.Future
    waiters: int = 1
    #: The ``scheduler.wait`` span measuring queue time until wave dispatch.
    wait_span: object = None
    #: Priority rank (see :data:`~repro.service.overload.PRIORITIES`); waves
    #: are formed high-rank first, arrival order within a rank.
    priority: int = 1
    #: Monotonic instant after which *no* waiter can still use the result —
    #: the flight is shed instead of dispatched.  ``None`` = some waiter has
    #: no deadline, so the flight always dispatches.
    expires_at: float | None = None

    def extend(self, deadline: float | None, now: float) -> None:
        """Fold a joining waiter's deadline into the shed horizon."""
        if deadline is None:
            self.expires_at = None
        elif self.expires_at is not None:
            self.expires_at = max(self.expires_at, now + deadline)


class BatchScheduler:
    """Coalesce, cache-check and batch decomposition requests over one engine.

    Parameters
    ----------
    engine:
        The shared :class:`DecompositionEngine`.  The scheduler owns its
        dispatch cadence but not its lifetime — call :meth:`close` with
        ``close_engine=True`` to tear both down together.
    window:
        Seconds a wave waits after the first novel job arrives, letting a
        burst of concurrent requests accumulate into one ``run_batch``.
        ``0.0`` dispatches immediately (per-request batches).
    max_wave:
        Maximum jobs per ``run_batch`` wave; excess jobs roll into the next
        wave without waiting another window.
    coalesce:
        ``False`` disables duplicate coalescing (every request becomes its
        own flight) — kept for the ``benchmarks/bench_service.py`` baseline,
        not for production use.
    dispatcher:
        A :class:`~repro.engine.remote.Dispatcher` to route waves through a
        persistent job queue instead of the in-process pool (``repro serve
        --queue``).  The store fast path and coalescing still run here; only
        the wave execution moves — the dispatcher's ``run_batch`` mirrors
        the engine's contract, so everything downstream is unchanged.
    admission:
        An :class:`~repro.service.overload.AdmissionController`; requests
        past its budget/caps/rates raise :class:`~repro.service.overload.\
Rejected` instead of queueing.  ``None`` admits everything (the
        pre-overload behaviour).
    breaker:
        A :class:`~repro.service.overload.CircuitBreaker` around wave
        dispatch.  While open, admission refuses new flights and already-
        queued waves are shed with ``"rejected"`` payloads instead of being
        fed to a backend known to be failing.  ``None`` disables breaking.
    """

    def __init__(
        self,
        engine: DecompositionEngine,
        window: float = 0.02,
        max_wave: int = 32,
        coalesce: bool = True,
        dispatcher=None,
        admission: AdmissionController | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        self.engine = engine
        self.window = max(0.0, float(window))
        self.max_wave = max(1, int(max_wave))
        self.coalesce = coalesce
        self.dispatcher = dispatcher
        self.admission = admission
        self.breaker = breaker
        self.stats = ServiceStats()
        self._flights: dict[tuple, _Flight] = {}
        self._pending: list[_Flight] = []
        #: Every unresolved flight (queued or mid-wave), coalesced or not —
        #: the admission budget and the drain protocol both count these.
        self._inflight: set[_Flight] = set()
        self._kind_counts: dict[str, int] = {}
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._draining = False

    # -------------------------------------------------------------- requests

    @staticmethod
    def _clamp(timeout: float | None, deadline: float | None) -> float | None:
        """Deadline propagation, hop one: the engine job budget can never
        exceed what the requester is willing to wait for."""
        if deadline is None:
            return timeout
        if timeout is None:
            return deadline
        return min(timeout, deadline)

    async def check(
        self,
        hypergraph: Hypergraph,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """One ``Check(H, k)``; coalesces with identical in-flight checks."""
        return await self.submit(
            JobSpec.check(
                hypergraph, k, method=method,
                timeout=self._clamp(timeout, deadline),
                trace=TRACER.current_context(),
            ),
            deadline=deadline, tenant=tenant, priority=priority,
        )

    async def width(
        self,
        hypergraph: Hypergraph,
        max_k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """An exact-width sweep (Figure 4 protocol) as one batched job."""
        return await self.submit(
            JobSpec.width(
                hypergraph, max_k, method=method,
                timeout=self._clamp(timeout, deadline),
                trace=TRACER.current_context(),
            ),
            deadline=deadline, tenant=tenant, priority=priority,
        )

    async def portfolio(
        self,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """A Table 4 GHD portfolio race at width ``k``."""
        return await self.submit(
            JobSpec.portfolio(
                hypergraph, k, timeout=self._clamp(timeout, deadline),
                trace=TRACER.current_context(),
            ),
            deadline=deadline, tenant=tenant, priority=priority,
        )

    async def submit(
        self,
        spec: JobSpec,
        deadline: float | None = None,
        tenant: str | None = None,
        priority: str = "normal",
    ) -> dict:
        """Schedule one job spec; returns its JSON-able result payload.

        The synchronous prefix (admission, store peek, flight registration)
        runs before the first ``await``, so concurrent identical submissions
        coalesce deterministically — whichever runs first registers the
        flight, every later one joins it.

        Raises :class:`~repro.service.overload.Rejected` when overload
        protection refuses the request (never queued, nothing dispatched).
        Coalesced joins and store answers bypass admission — they create no
        new work.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        rank = PRIORITIES.get(priority)
        if rank is None:
            raise ValueError(
                f"unknown priority {priority!r}; known: {sorted(PRIORITIES)}"
            )
        self.stats.requests += 1
        self.stats.by_kind[spec.kind] = self.stats.by_kind.get(spec.kind, 0) + 1
        _M_REQUESTS.inc(kind=spec.kind)
        key = spec.key()
        flight = self._flights.get(key) if self.coalesce else None
        coalesced = flight is not None
        if flight is None:
            with TRACER.span(
                "scheduler.admit", parent=spec.trace, kind=spec.kind,
                tenant=tenant or "", priority=priority,
            ) as admit_span:
                if self._draining:
                    admit_span.set(decision="rejected:draining")
                    self._count_rejection("draining")
                    raise Rejected(
                        "draining", "service is draining; retry another replica"
                    )
                if deadline is not None and deadline <= 0.0:
                    # Expired on arrival: deadline propagation, hop two —
                    # never create work that cannot finish in time.
                    admit_span.set(decision="expired")
                    self.stats.expired += 1
                    _M_EXPIRED.inc()
                    return self._expired_payload(spec, deadline, coalesced=False)
                replay = self.engine.try_replay(spec)
                if replay is not None:
                    admit_span.set(decision="store")
                    self.stats.store_answers += 1
                    _M_STORE_ANSWERS.inc()
                    return self._payload(
                        spec, replay, coalesced=False, source="store"
                    )
                if self.breaker is not None and self.breaker.state == OPEN:
                    admit_span.set(decision="rejected:breaker")
                    self._count_rejection("breaker")
                    raise Rejected(
                        "breaker",
                        "engine dispatch circuit is open",
                        self.breaker.retry_after(),
                    )
                if self.admission is not None:
                    try:
                        self.admission.admit(
                            spec.kind, tenant, rank,
                            len(self._inflight), self._kind_counts,
                        )
                    except Rejected as exc:
                        admit_span.set(decision=f"rejected:{exc.reason}")
                        self._count_rejection(exc.reason)
                        raise
                admit_span.set(decision="admitted")
            now = time.monotonic()
            flight = _Flight(
                spec,
                asyncio.get_running_loop().create_future(),
                priority=rank,
                expires_at=None if deadline is None else now + deadline,
            )
            # Queue time: from registration until the wave that carries this
            # flight dispatches (ended in _run, or at close for orphans).
            flight.wait_span = TRACER.start_span(
                "scheduler.wait", parent=spec.trace, kind=spec.kind
            )
            self._register(flight)
            if self.coalesce:
                self._flights[key] = flight
            self._pending.append(flight)
            self._ensure_running()
            self._wake.set()
        else:
            flight.waiters += 1
            flight.extend(deadline, time.monotonic())
            self.stats.coalesced += 1
            _M_COALESCED.inc()
        try:
            if deadline is not None:
                # shield(): an expiring waiter must not cancel the shared
                # flight — coalesced peers (and the store) still want it.
                shared = await asyncio.wait_for(
                    asyncio.shield(flight.future), deadline
                )
            else:
                shared = await flight.future
        except asyncio.TimeoutError:
            self.stats.expired += 1
            _M_EXPIRED.inc()
            return self._expired_payload(spec, deadline, coalesced)
        if shared.get("verdict") == ERROR:
            self.stats.errors += 1
            _M_ERRORS.inc()
        # The flight's payload (decomposition serialization included) was
        # built exactly once when the wave landed; each waiter only takes a
        # shallow copy to stamp its own coalescing flag.
        payload = dict(shared)
        payload["coalesced"] = coalesced
        return payload

    # ------------------------------------------------------------- lifecycle

    def _ensure_running(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    def _register(self, flight: _Flight) -> None:
        """Track a new flight for the admission budget and the drain count."""
        self._inflight.add(flight)
        kind = flight.spec.kind
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        flight.future.add_done_callback(
            functools.partial(self._retire, flight)
        )

    def _retire(self, flight: _Flight, _future: asyncio.Future) -> None:
        self._inflight.discard(flight)
        kind = flight.spec.kind
        remaining = self._kind_counts.get(kind, 0) - 1
        if remaining > 0:
            self._kind_counts[kind] = remaining
        else:
            self._kind_counts.pop(kind, None)

    def _count_rejection(self, reason: str) -> None:
        self.stats.rejected += 1
        _M_REJECTED.inc(reason=reason)

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, budget: float | None = None) -> dict:
        """Graceful shutdown, phase one: stop admitting, let flights land.

        New flight creation is refused with ``Rejected("draining")`` from
        the moment this is called (coalesced joins of surviving flights and
        store answers still succeed — they cost nothing).  Waits up to
        ``budget`` seconds for every in-flight wave to complete; whatever
        remains is reported as ``stragglers`` and left to :meth:`close` to
        resolve with error payloads.

        Returns ``{"in_flight": n, "drained": d, "stragglers": s}``.
        """
        self._draining = True
        self._wake.set()  # flush pending waves without waiting for a window
        waiting = [f.future for f in list(self._inflight) if not f.future.done()]
        if not waiting:
            return {"in_flight": 0, "drained": 0, "stragglers": 0}
        done, stragglers = await asyncio.wait(waiting, timeout=budget)
        return {
            "in_flight": len(waiting),
            "drained": len(done),
            "stragglers": len(stragglers),
        }

    async def close(self, close_engine: bool = False) -> None:
        """Drain the dispatch loop; optionally close the engine (and store)."""
        self._closed = True
        self._draining = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        for flight in self._pending:
            if flight.wait_span is not None:
                flight.wait_span.end(status="cancelled")
            if not flight.future.done():
                flight.future.set_result(
                    self._error_payload(
                        flight.spec, "scheduler closed before dispatch"
                    )
                )
            self._flights.pop(flight.spec.key(), None)
        self._pending.clear()
        if close_engine:
            self.engine.close()

    # ---------------------------------------------------------- the dispatcher

    def _shed(self, flight: _Flight, reason: str, retry_after: float | None) -> None:
        """Drop an admitted flight without dispatching it (dead deadline or
        open breaker); waiters see a typed payload, not a hang."""
        self.stats.shed += 1
        _M_SHED.inc(reason=reason)
        self._flights.pop(flight.spec.key(), None)
        if flight.wait_span is not None:
            flight.wait_span.end(status=f"shed:{reason}")
            flight.wait_span = None
        if not flight.future.done():
            if reason == "deadline":
                flight.future.set_result(
                    self._expired_payload(flight.spec, None, coalesced=False)
                )
            else:
                flight.future.set_result(
                    self._rejected_payload(flight.spec, reason, retry_after)
                )

    def _form_wave(self) -> list[_Flight]:
        """Up to ``max_wave`` live flights, high priority first; flights whose
        every waiter has already given up are shed here — deadline
        propagation, hop three: no wave carries work nobody can use."""
        # Stable sort: arrival order within a priority class is preserved.
        self._pending.sort(key=lambda flight: flight.priority)
        now = time.monotonic()
        wave: list[_Flight] = []
        taken = 0
        for flight in self._pending:
            taken += 1
            if flight.expires_at is not None and now >= flight.expires_at:
                self._shed(flight, "deadline", None)
                continue
            wave.append(flight)
            if len(wave) >= self.max_wave:
                break
        del self._pending[:taken]
        return wave

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._closed:
                return
            if not self._pending:
                continue
            if self.window > 0.0 and not self._draining:
                await asyncio.sleep(self.window)  # let the burst accumulate
            wave = self._form_wave()
            if self._pending:
                self._wake.set()  # next wave starts without a fresh trigger
            if not wave:
                continue
            if self.breaker is not None and not self.breaker.allow():
                # The circuit opened after these flights were admitted; a
                # known-failing backend gets no more waves, the waiters get
                # fast typed refusals instead of slow errors.
                retry_after = self.breaker.retry_after()
                for flight in wave:
                    self._shed(flight, "breaker", retry_after)
                continue
            specs = [flight.spec for flight in wave]
            for flight in wave:
                if flight.wait_span is not None:
                    flight.wait_span.end(wave_jobs=len(specs))
                    flight.wait_span = None
            if self.dispatcher is not None:
                # Deadline propagation, hop four: a queue-backed wave stops
                # waiting once no waiter can use the results (workers may
                # still finish the jobs into the shared store).
                run_batch = functools.partial(
                    self.dispatcher.run_batch, specs,
                    deadline=self._wave_budget(wave),
                )
            else:
                run_batch = functools.partial(self.engine.run_batch, specs)
            try:
                report = await loop.run_in_executor(None, run_batch)
            except Exception as exc:  # noqa: BLE001 - resolved, not raised
                if self.breaker is not None:
                    self.breaker.record_failure()
                for flight in wave:
                    self._flights.pop(flight.spec.key(), None)
                    if not flight.future.done():
                        flight.future.set_result(
                            self._error_payload(flight.spec, str(exc))
                        )
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            self.stats.waves += 1
            self.stats.wave_jobs += len(specs)
            _M_WAVES.inc()
            _M_WAVE_JOBS.inc(len(specs))
            # run_batch preserves order and (journal-less) returns one
            # JobResult per spec, so zip() pairs flights with their results.
            # Payloads are built here, once per flight, before any waiter
            # copies them.
            for flight, result in zip(wave, report.results):
                self._flights.pop(flight.spec.key(), None)
                if not flight.future.done():
                    flight.future.set_result(
                        self._payload(
                            flight.spec, result, coalesced=False, source="engine"
                        )
                    )

    @staticmethod
    def _wave_budget(wave: list[_Flight]) -> float | None:
        """Seconds until the *last* waiter's deadline across the wave, or
        ``None`` when any flight has an unbounded waiter."""
        horizon = 0.0
        for flight in wave:
            if flight.expires_at is None:
                return None
            horizon = max(horizon, flight.expires_at)
        return max(0.0, horizon - time.monotonic())

    # --------------------------------------------------------------- payloads

    def _expired_payload(
        self, spec: JobSpec, deadline: float | None, coalesced: bool
    ) -> dict:
        return {
            "kind": spec.kind,
            "method": spec.method,
            "k": spec.k,
            "max_k": spec.max_k,
            "fingerprint": spec.fingerprint,
            "verdict": EXPIRED,
            "deadline": deadline,
            "coalesced": coalesced,
            "source": "deadline",
        }

    def _rejected_payload(
        self, spec: JobSpec, reason: str, retry_after: float | None
    ) -> dict:
        payload = {
            "kind": spec.kind,
            "method": spec.method,
            "k": spec.k,
            "max_k": spec.max_k,
            "fingerprint": spec.fingerprint,
            "verdict": REJECTED,
            "reason": reason,
            "coalesced": False,
            "source": "admission",
        }
        if retry_after is not None:
            payload["retry_after"] = retry_after
        return payload

    def _error_payload(self, spec: JobSpec, message: str) -> dict:
        return {
            "kind": spec.kind,
            "method": spec.method,
            "k": spec.k,
            "max_k": spec.max_k,
            "fingerprint": spec.fingerprint,
            "verdict": ERROR,
            "error": message,
            "source": "engine",
        }

    def _payload(
        self, spec: JobSpec, result: JobResult, coalesced: bool, source: str
    ) -> dict:
        """The JSON-able response shared by every waiter of one flight."""
        payload = {
            "kind": spec.kind,
            "method": spec.method,
            "k": spec.k,
            "max_k": spec.max_k,
            "fingerprint": spec.fingerprint,
            "verdict": result.verdict,
            "seconds": round(result.seconds, 6),
            "cached": result.cached,
            "implied": result.implied,
            "coalesced": coalesced,
            "source": "store" if source == "store" or result.cached else source,
            "lower": result.lower,
            "upper": result.upper,
            "winner": result.winner,
        }
        if result.width_result is not None and result.width_result.exact:
            payload["width"] = result.width_result.value
        outcome = result.outcome
        if (
            spec.kind == CHECK
            and outcome is not None
            and outcome.decomposition is not None
        ):
            payload["decomposition"] = json.loads(
                decomposition_to_json(outcome.decomposition)
            )
        return payload

    def stats_snapshot(self) -> dict:
        """Service + engine + store counters as one dict (``/stats`` body)."""
        payload = {"service": self.stats.snapshot()}
        payload.update(self.engine.stats_snapshot())
        payload["in_flight"] = len(self._flights)
        payload["queued"] = len(self._pending)
        payload["draining"] = self._draining
        if self.admission is not None:
            payload["admission"] = self.admission.snapshot()
        if self.breaker is not None:
            payload["breaker"] = self.breaker.snapshot()
        if self.dispatcher is not None:
            payload["queue"] = self.dispatcher.stats()
        return payload
