"""The coalescing batch scheduler — the service's asyncio front-end.

The scheduler is what makes "heavy traffic from many users" cheap: it sits
between concurrent clients and one shared :class:`~repro.engine.engine.\
DecompositionEngine` and spends at most one engine dispatch per *distinct*
piece of work, no matter how many clients ask for it at once.  Three layers
of deduplication apply, in order:

1. **Store fast path.**  Before anything is queued, the request is replayed
   against the result store via :meth:`DecompositionEngine.try_replay` —
   exact rows, verdicts implied by the per-method bounds index, and
   cross-method ``kind_bounds`` knowledge all answer here, synchronously,
   with no wave latency.
2. **Coalescing.**  Requests that miss the store are keyed by their job
   identity (``JobSpec.key()``: kind, fingerprint, method, k/max_k, timeout
   budget).  If an identical job is already *in flight* — queued or mid-wave
   — the new request simply awaits the same future: N concurrent identical
   requests cost exactly one dispatch.
3. **Batch waves.**  Novel jobs queue for a short ``window`` (letting a
   burst accumulate), then up to ``max_wave`` of them run as one
   :meth:`DecompositionEngine.run_batch` on a worker thread — so a parallel
   engine fans the whole wave across its process pool, and the event loop
   stays free to accept (and coalesce) more traffic meanwhile.

Per-request **deadlines** are enforced at the awaiting edge: a request that
cannot wait any longer resolves with an ``"expired"`` verdict while the
underlying flight keeps running — its result still lands in the store, so
the next asker gets it from the fast path.

The scheduler is single-loop asyncio; the only blocking work it performs on
the loop thread is SQLite peeks (microseconds — the store locks internally
and is never held across a decomposition search).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.core.hypergraph import Hypergraph
from repro.engine.engine import DecompositionEngine
from repro.engine.jobs import CHECK, JobResult, JobSpec
from repro.io.json_io import decomposition_to_json
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER

__all__ = ["BatchScheduler", "ServiceStats", "EXPIRED", "ERROR"]

#: Verdict of a request whose deadline passed while its flight was pending.
EXPIRED = "expired"
#: Verdict of a request whose wave failed with an unexpected exception.
ERROR = "error"

# Process-wide service metric families (see docs/OBSERVABILITY.md).
_M_REQUESTS = REGISTRY.counter(
    "repro_service_requests_total", "Jobs submitted to the batch scheduler."
)
_M_STORE_ANSWERS = REGISTRY.counter(
    "repro_service_store_answers_total",
    "Scheduler requests answered synchronously from the result store.",
)
_M_COALESCED = REGISTRY.counter(
    "repro_service_coalesced_total",
    "Scheduler requests that joined an identical in-flight job.",
)
_M_EXPIRED = REGISTRY.counter(
    "repro_service_expired_total",
    "Scheduler requests whose deadline passed before their flight landed.",
)
_M_ERRORS = REGISTRY.counter(
    "repro_service_errors_total", "Scheduler flights that resolved with an error."
)
_M_WAVES = REGISTRY.counter(
    "repro_service_waves_total", "Batch waves dispatched to the engine."
)
_M_WAVE_JOBS = REGISTRY.counter(
    "repro_service_wave_jobs_total", "Jobs dispatched across all batch waves."
)


@dataclass
class ServiceStats:
    """Request accounting for one scheduler (the ``/stats`` service section).

    ``requests`` counts everything submitted; ``store_answers`` the subset
    answered synchronously from the result store; ``coalesced`` the subset
    that joined an already-in-flight identical job.  The remainder —
    ``requests - store_answers - coalesced`` — is what actually reached the
    engine, grouped into ``waves`` batches of ``wave_jobs`` total jobs.
    """

    requests: int = 0
    store_answers: int = 0
    coalesced: int = 0
    expired: int = 0
    errors: int = 0
    waves: int = 0
    wave_jobs: int = 0
    by_kind: dict = field(default_factory=dict)
    #: Monotonic clock reading at scheduler construction — ``uptime_seconds``
    #: in the snapshot derives from it, immune to wall-clock adjustments.
    started_at: float = field(default_factory=time.monotonic)

    @property
    def dispatched(self) -> int:
        return self.requests - self.store_answers - self.coalesced

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "store_answers": self.store_answers,
            "coalesced": self.coalesced,
            "dispatched": self.dispatched,
            "expired": self.expired,
            "errors": self.errors,
            "waves": self.waves,
            "wave_jobs": self.wave_jobs,
            "by_kind": dict(self.by_kind),
            "started_at": self.started_at,
            "uptime_seconds": self.uptime_seconds,
        }


@dataclass
class _Flight:
    """One in-flight unit of engine work, shared by all coalesced waiters."""

    spec: JobSpec
    future: asyncio.Future
    waiters: int = 1
    #: The ``scheduler.wait`` span measuring queue time until wave dispatch.
    wait_span: object = None


class BatchScheduler:
    """Coalesce, cache-check and batch decomposition requests over one engine.

    Parameters
    ----------
    engine:
        The shared :class:`DecompositionEngine`.  The scheduler owns its
        dispatch cadence but not its lifetime — call :meth:`close` with
        ``close_engine=True`` to tear both down together.
    window:
        Seconds a wave waits after the first novel job arrives, letting a
        burst of concurrent requests accumulate into one ``run_batch``.
        ``0.0`` dispatches immediately (per-request batches).
    max_wave:
        Maximum jobs per ``run_batch`` wave; excess jobs roll into the next
        wave without waiting another window.
    coalesce:
        ``False`` disables duplicate coalescing (every request becomes its
        own flight) — kept for the ``benchmarks/bench_service.py`` baseline,
        not for production use.
    dispatcher:
        A :class:`~repro.engine.remote.Dispatcher` to route waves through a
        persistent job queue instead of the in-process pool (``repro serve
        --queue``).  The store fast path and coalescing still run here; only
        the wave execution moves — the dispatcher's ``run_batch`` mirrors
        the engine's contract, so everything downstream is unchanged.
    """

    def __init__(
        self,
        engine: DecompositionEngine,
        window: float = 0.02,
        max_wave: int = 32,
        coalesce: bool = True,
        dispatcher=None,
    ):
        self.engine = engine
        self.window = max(0.0, float(window))
        self.max_wave = max(1, int(max_wave))
        self.coalesce = coalesce
        self.dispatcher = dispatcher
        self.stats = ServiceStats()
        self._flights: dict[tuple, _Flight] = {}
        self._pending: list[_Flight] = []
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False

    # -------------------------------------------------------------- requests

    async def check(
        self,
        hypergraph: Hypergraph,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> dict:
        """One ``Check(H, k)``; coalesces with identical in-flight checks."""
        return await self.submit(
            JobSpec.check(
                hypergraph, k, method=method, timeout=timeout,
                trace=TRACER.current_context(),
            ),
            deadline=deadline,
        )

    async def width(
        self,
        hypergraph: Hypergraph,
        max_k: int,
        method: str = "hd",
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> dict:
        """An exact-width sweep (Figure 4 protocol) as one batched job."""
        return await self.submit(
            JobSpec.width(
                hypergraph, max_k, method=method, timeout=timeout,
                trace=TRACER.current_context(),
            ),
            deadline=deadline,
        )

    async def portfolio(
        self,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> dict:
        """A Table 4 GHD portfolio race at width ``k``."""
        return await self.submit(
            JobSpec.portfolio(
                hypergraph, k, timeout=timeout, trace=TRACER.current_context()
            ),
            deadline=deadline,
        )

    async def submit(self, spec: JobSpec, deadline: float | None = None) -> dict:
        """Schedule one job spec; returns its JSON-able result payload.

        The synchronous prefix (store peek, flight registration) runs before
        the first ``await``, so concurrent identical submissions coalesce
        deterministically — whichever runs first registers the flight, every
        later one joins it.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        self.stats.requests += 1
        self.stats.by_kind[spec.kind] = self.stats.by_kind.get(spec.kind, 0) + 1
        _M_REQUESTS.inc(kind=spec.kind)
        key = spec.key()
        flight = self._flights.get(key) if self.coalesce else None
        coalesced = flight is not None
        if flight is None:
            replay = self.engine.try_replay(spec)
            if replay is not None:
                self.stats.store_answers += 1
                _M_STORE_ANSWERS.inc()
                return self._payload(spec, replay, coalesced=False, source="store")
            flight = _Flight(spec, asyncio.get_running_loop().create_future())
            # Queue time: from registration until the wave that carries this
            # flight dispatches (ended in _run, or at close for orphans).
            flight.wait_span = TRACER.start_span(
                "scheduler.wait", parent=spec.trace, kind=spec.kind
            )
            if self.coalesce:
                self._flights[key] = flight
            self._pending.append(flight)
            self._ensure_running()
            self._wake.set()
        else:
            flight.waiters += 1
            self.stats.coalesced += 1
            _M_COALESCED.inc()
        try:
            if deadline is not None:
                # shield(): an expiring waiter must not cancel the shared
                # flight — coalesced peers (and the store) still want it.
                shared = await asyncio.wait_for(
                    asyncio.shield(flight.future), deadline
                )
            else:
                shared = await flight.future
        except asyncio.TimeoutError:
            self.stats.expired += 1
            _M_EXPIRED.inc()
            return {
                "kind": spec.kind,
                "method": spec.method,
                "k": spec.k,
                "max_k": spec.max_k,
                "fingerprint": spec.fingerprint,
                "verdict": EXPIRED,
                "deadline": deadline,
                "coalesced": coalesced,
                "source": "deadline",
            }
        if shared.get("verdict") == ERROR:
            self.stats.errors += 1
            _M_ERRORS.inc()
        # The flight's payload (decomposition serialization included) was
        # built exactly once when the wave landed; each waiter only takes a
        # shallow copy to stamp its own coalescing flag.
        payload = dict(shared)
        payload["coalesced"] = coalesced
        return payload

    # ------------------------------------------------------------- lifecycle

    def _ensure_running(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self, close_engine: bool = False) -> None:
        """Drain the dispatch loop; optionally close the engine (and store)."""
        self._closed = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        for flight in self._pending:
            if flight.wait_span is not None:
                flight.wait_span.end(status="cancelled")
            if not flight.future.done():
                flight.future.set_result(
                    self._error_payload(
                        flight.spec, "scheduler closed before dispatch"
                    )
                )
            self._flights.pop(flight.spec.key(), None)
        self._pending.clear()
        if close_engine:
            self.engine.close()

    # ---------------------------------------------------------- the dispatcher

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._closed:
                return
            if not self._pending:
                continue
            if self.window > 0.0:
                await asyncio.sleep(self.window)  # let the burst accumulate
            wave = self._pending[: self.max_wave]
            del self._pending[: self.max_wave]
            if self._pending:
                self._wake.set()  # next wave starts without a fresh trigger
            specs = [flight.spec for flight in wave]
            for flight in wave:
                if flight.wait_span is not None:
                    flight.wait_span.end(wave_jobs=len(specs))
            run_batch = (
                self.dispatcher.run_batch
                if self.dispatcher is not None
                else self.engine.run_batch
            )
            try:
                report = await loop.run_in_executor(None, run_batch, specs)
            except Exception as exc:  # noqa: BLE001 - resolved, not raised
                for flight in wave:
                    self._flights.pop(flight.spec.key(), None)
                    if not flight.future.done():
                        flight.future.set_result(
                            self._error_payload(flight.spec, str(exc))
                        )
                continue
            self.stats.waves += 1
            self.stats.wave_jobs += len(specs)
            _M_WAVES.inc()
            _M_WAVE_JOBS.inc(len(specs))
            # run_batch preserves order and (journal-less) returns one
            # JobResult per spec, so zip() pairs flights with their results.
            # Payloads are built here, once per flight, before any waiter
            # copies them.
            for flight, result in zip(wave, report.results):
                self._flights.pop(flight.spec.key(), None)
                if not flight.future.done():
                    flight.future.set_result(
                        self._payload(
                            flight.spec, result, coalesced=False, source="engine"
                        )
                    )

    # --------------------------------------------------------------- payloads

    def _error_payload(self, spec: JobSpec, message: str) -> dict:
        return {
            "kind": spec.kind,
            "method": spec.method,
            "k": spec.k,
            "max_k": spec.max_k,
            "fingerprint": spec.fingerprint,
            "verdict": ERROR,
            "error": message,
            "source": "engine",
        }

    def _payload(
        self, spec: JobSpec, result: JobResult, coalesced: bool, source: str
    ) -> dict:
        """The JSON-able response shared by every waiter of one flight."""
        payload = {
            "kind": spec.kind,
            "method": spec.method,
            "k": spec.k,
            "max_k": spec.max_k,
            "fingerprint": spec.fingerprint,
            "verdict": result.verdict,
            "seconds": round(result.seconds, 6),
            "cached": result.cached,
            "implied": result.implied,
            "coalesced": coalesced,
            "source": "store" if source == "store" or result.cached else source,
            "lower": result.lower,
            "upper": result.upper,
            "winner": result.winner,
        }
        if result.width_result is not None and result.width_result.exact:
            payload["width"] = result.width_result.value
        outcome = result.outcome
        if (
            spec.kind == CHECK
            and outcome is not None
            and outcome.decomposition is not None
        ):
            payload["decomposition"] = json.loads(
                decomposition_to_json(outcome.decomposition)
            )
        return payload

    def stats_snapshot(self) -> dict:
        """Service + engine + store counters as one dict (``/stats`` body)."""
        payload = {"service": self.stats.snapshot()}
        payload.update(self.engine.stats_snapshot())
        payload["in_flight"] = len(self._flights)
        payload["queued"] = len(self._pending)
        if self.dispatcher is not None:
            payload["queue"] = self.dispatcher.stats()
        return payload
