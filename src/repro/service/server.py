"""JSON-over-HTTP transport for the batch scheduler (stdlib only).

One long-lived server process owns one :class:`DecompositionEngine` and one
:class:`ResultStore`, so every client shares the warm cache and the
scheduler's coalescing window — the HyperBench "service over a precomputed
result store" shape, grown onto four PRs of engine work.

Endpoints (all responses are JSON):

``POST /check``
    ``{"hypergraph": "<hg text>" | {"edges": {...}}, "k": 3,
    "method": "hd", "timeout": 60.0, "deadline": 5.0}`` →
    verdict payload (plus the decomposition tree on a "yes").
``POST /width``
    ``{"hypergraph": ..., "max_k": 6, "method": "hd", ...}`` → exact width
    or bounds (the Figure 4 protocol as one batched job).
``POST /decompose``
    Like ``/check`` but fails with 404-style ``"verdict": "no"`` semantics
    left to the client; the decomposition rides along on a yes.
``POST /portfolio``
    ``{"hypergraph": ..., "k": 3, ...}`` → the Table 4 race verdict.
``GET /stats``
    Service, engine and store counters (coalescing, waves, hit rates).
``GET /healthz``
    Liveness: ``{"status": "ok", ...}`` plus uptime, version, pid and the
    cache path.
``GET /metrics``
    The process metrics registry in Prometheus text exposition format.
``GET /debug/traces``
    The tracer's in-memory ring, grouped by trace (``?limit=N`` bounds the
    number of traces, newest first).

The HTTP layer is a deliberately minimal HTTP/1.1 implementation over
``asyncio`` streams — no routing framework, no threads, no dependencies —
because the interesting concurrency lives in the scheduler, not the socket
handling.  Connections are keep-alive by default; malformed requests get
``400``, unknown paths ``404``, oversized bodies ``413``.

**Overload mapping** (see ``docs/ROBUSTNESS.md``): a scheduler
:class:`~repro.service.overload.Rejected` — or a shed flight resolving with
a ``"rejected"`` verdict — becomes ``429`` (budget / per-kind cap / tenant
rate) or ``503`` (open circuit breaker, draining), always with a
``Retry-After`` header when the server can estimate one.  ``/healthz``
reports ``degraded`` (503) while the breaker is open and ``draining`` (503)
during graceful shutdown, so load balancers stop routing here first.
:func:`serve` installs SIGTERM/SIGINT handlers that close the listener,
drain in-flight waves under ``drain_seconds``, and only then tear down the
scheduler, engine and queue — in-flight clients get their 200s, new
arrivals get fast 503s elsewhere.

Each job request runs under an ``http.request`` root span, so a ``/check``
decomposes into scheduler-wait → wave → worker-exec time in
``/debug/traces``; requests slower than ``slow_request_seconds`` are logged
through the ``repro.service`` logger.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import threading
import time
from urllib.parse import parse_qs

from repro.core.hypergraph import Hypergraph
from repro.engine import CHECK_METHODS
from repro.engine.engine import DecompositionEngine
# Imported for the side effect too: registering the repro_queue_* metric
# families so /metrics always exposes them, queue-backed or not.
from repro.engine.queue import JobQueue
from repro.engine.remote import Dispatcher
from repro.engine.shards import open_result_store
from repro.errors import ReproError
from repro.io.hg_format import parse_hypergraph
from repro.obs.metrics import Gauge, REGISTRY
from repro.obs.trace import TRACER
from repro.service.overload import (
    OPEN,
    PRIORITIES,
    REJECTED,
    AdmissionController,
    CircuitBreaker,
    Rejected,
    retry_after_header,
)
from repro.service.scheduler import BatchScheduler

__all__ = ["DecompositionServer", "ServiceThread", "serve"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Default cap on request bodies (a hypergraph is a few KB of text);
#: per-server via ``DecompositionServer(max_body_bytes=...)``.  Oversized
#: bodies are refused with ``413`` *before* they are buffered.
_MAX_BODY = 8 * 1024 * 1024

#: Endpoints that submit scheduler jobs (traced under ``http.request``).
_JOB_PATHS = ("/check", "/width", "/decompose", "/portfolio")

_LOG = logging.getLogger("repro.service")

_M_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total", "HTTP requests served, by path and status."
)
_M_HTTP_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds", "End-to-end HTTP request latency in seconds."
)


class _HttpError(Exception):
    """A typed client-facing refusal: ``status`` + the message in the body."""

    status = 500


class _BadRequest(_HttpError):
    """Client error: reported as a 400 with the message in the body."""

    status = 400


class _TooLarge(_HttpError):
    """Request body over the configured cap: reported as a 413."""

    status = 413


def _hypergraph_from(payload: dict) -> Hypergraph:
    """Build the instance from a request body (hg text or an edge dict)."""
    raw = payload.get("hypergraph")
    name = str(payload.get("name", ""))
    if isinstance(raw, str):
        return parse_hypergraph(raw, name=name)
    if isinstance(raw, dict):
        edges = raw.get("edges", raw)
        if not isinstance(edges, dict):
            raise _BadRequest("'hypergraph.edges' must be an object")
        return Hypergraph(edges, name=name)
    raise _BadRequest(
        "request needs 'hypergraph': detkdecomp text or {\"edges\": {...}}"
    )


def _int_field(payload: dict, key: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise _BadRequest(f"'{key}' must be a positive integer")
    return value


def _float_field(payload: dict, key: str) -> float | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise _BadRequest(f"'{key}' must be a positive number")
    return float(value)


class DecompositionServer:
    """The asyncio HTTP server; owns the scheduler's lifetime, not the engine's.

    Use :meth:`start` / :meth:`stop` from a running event loop, or the
    :class:`ServiceThread` wrapper to host a server from synchronous code
    (tests, benchmarks, notebook sessions).
    """

    def __init__(
        self,
        scheduler: BatchScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        slow_request_seconds: float | None = 1.0,
        max_body_bytes: int = _MAX_BODY,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        #: Requests at or above this many seconds are logged via the
        #: ``repro.service`` logger; ``None`` disables the slow-request log.
        self.slow_request_seconds = slow_request_seconds
        #: Bodies above this many bytes get a ``413`` without being read.
        self.max_body_bytes = max(1, int(max_body_bytes))
        self._server: asyncio.base_events.Server | None = None
        self._started = time.time()

    async def start(self) -> None:
        """Bind and start accepting; ``port`` is re-read from the socket
        (so ``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.time()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close_listener(self) -> None:
        """Stop accepting new connections; existing ones keep being served.

        The first half of graceful drain: after this, in-flight requests
        still resolve (and respond) normally, but nothing new can connect.
        Idempotent; :meth:`stop` calls it too.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def stop(self, close_engine: bool = False) -> None:
        await self.close_listener()
        await self.scheduler.close(close_engine=close_engine)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- connection

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # The request could not be framed (or its body was never
                    # read), so keep-alive cannot be trusted: answer with the
                    # typed status and hang up.
                    await self._respond(
                        writer, exc.status, {"error": str(exc)}, False
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                route = path.split("?", 1)[0]
                started = time.monotonic()
                try:
                    status, payload = await self._handle(method, path, body)
                except _HttpError as exc:
                    status, payload = exc.status, {"error": str(exc)}
                except Rejected as exc:
                    # Overload refusal: 429 for "come back later" (budget,
                    # kind cap, tenant rate), 503 for "this replica cannot
                    # help you" (open breaker, draining).
                    status = 503 if exc.reason in ("breaker", "draining") else 429
                    payload = {
                        "error": str(exc),
                        "verdict": REJECTED,
                        "reason": exc.reason,
                    }
                    if exc.retry_after is not None:
                        payload["retry_after"] = exc.retry_after
                except (ReproError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                    status, payload = 400, {"error": str(exc)}
                except Exception as exc:  # noqa: BLE001 - a 500, not a crash
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                elapsed = time.monotonic() - started
                _M_HTTP_REQUESTS.inc(path=route, status=status)
                _M_HTTP_SECONDS.observe(elapsed)
                if (
                    self.slow_request_seconds is not None
                    and elapsed >= self.slow_request_seconds
                ):
                    _LOG.warning(
                        "slow request: %s %s took %.3fs (status %d)",
                        method, route, elapsed, status,
                    )
                extra_headers = None
                if status in (429, 503) and isinstance(payload, dict):
                    hint = retry_after_header(payload.get("retry_after"))
                    if hint is not None:
                        extra_headers = {"Retry-After": hint}
                await self._respond(
                    writer, status, payload, keep_alive, headers=extra_headers
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Server teardown cancelled an idle keep-alive connection.  End
            # the task cleanly: propagating the cancellation makes asyncio's
            # streams done-callback log a spurious "Exception in callback"
            # traceback for every connection open at stop().
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            raise _BadRequest("Content-Length must be an integer") from None
        if length < 0:
            raise _BadRequest("Content-Length must be non-negative")
        if length > self.max_body_bytes:
            raise _TooLarge(
                f"body too large ({length} bytes, cap {self.max_body_bytes})"
            )
        body = await reader.readexactly(length) if length > 0 else b""
        return method.upper(), path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        keep_alive: bool,
        headers: dict[str, str] | None = None,
    ) -> None:
        # A ``str`` payload is served verbatim as plain text (the Prometheus
        # exposition of ``/metrics``); everything else is JSON.
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        extra = ""
        for name, value in (headers or {}).items():
            extra += f"{name}: {value}\r\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # --------------------------------------------------------------- routing

    async def _handle(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str]:
        """Route one request, giving job submissions an ``http.request`` span.

        The span is the request's trace root: the scheduler picks it up as
        the ambient context, so scheduler-wait / wave / worker spans all land
        in one trace per HTTP request.
        """
        route = path.split("?", 1)[0]
        if method == "POST" and route in _JOB_PATHS:
            with TRACER.span("http.request", path=route) as span:
                status, payload = await self._dispatch(method, path, body)
                span.set(status=status)
                return status, payload
        return await self._dispatch(method, path, body)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str]:
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            store = self.scheduler.engine.store
            from repro import __version__

            # Degrade health first: load balancers drain this replica before
            # clients ever see its 429/503s.
            status_code, status_word = 200, "ok"
            breaker = self.scheduler.breaker
            if self.scheduler.draining:
                status_code, status_word = 503, "draining"
            elif breaker is not None and breaker.state == OPEN:
                status_code, status_word = 503, "degraded"
            health = {
                "status": status_word,
                "uptime": round(time.time() - self._started, 3),
                "uptime_seconds": round(self.scheduler.stats.uptime_seconds, 3),
                "started": self._started,
                "version": __version__,
                "pid": os.getpid(),
                "cache": store.path if store is not None else None,
                "queue": (
                    self.scheduler.dispatcher.queue.path
                    if getattr(self.scheduler, "dispatcher", None) is not None
                    else None
                ),
                "in_flight": len(self.scheduler._flights),
            }
            if breaker is not None:
                health["breaker"] = breaker.state
            return status_code, health
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.scheduler.stats_snapshot()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, REGISTRY.render(extra=self._live_gauges())
        if path == "/debug/traces":
            if method != "GET":
                return 405, {"error": "use GET"}
            params = parse_qs(query)
            try:
                limit = int(params.get("limit", ["20"])[0])
            except ValueError:
                raise _BadRequest("'limit' must be an integer") from None
            return 200, {"traces": TRACER.traces(limit=limit)}
        if path in _JOB_PATHS:
            if method != "POST":
                return 405, {"error": "use POST"}
            payload = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(payload, dict):
                raise _BadRequest("request body must be a JSON object")
            result = await self._run_job(path, payload)
            if result.get("verdict") == REJECTED:
                # A flight shed after admission (breaker opened mid-queue):
                # same taxonomy as an admission-time Rejected.
                reason = result.get("reason")
                return (503 if reason in ("breaker", "draining") else 429), result
            return 200, result
        return 404, {"error": f"unknown path {path!r}"}

    def _live_gauges(self) -> list[Gauge]:
        """Ad-hoc gauges over live objects, rendered per scrape (not stored)."""
        gauges = []
        store = self.scheduler.engine.store
        if store is not None:
            entries = Gauge(
                "repro_store_entries", "Rows currently in the result store."
            )
            entries.set(len(store))
            gauges.append(entries)
        in_flight = Gauge(
            "repro_service_in_flight", "Flights currently queued or mid-wave."
        )
        in_flight.set(len(self.scheduler._flights))
        gauges.append(in_flight)
        uptime = Gauge(
            "repro_service_uptime_seconds", "Seconds since scheduler start."
        )
        uptime.set(self.scheduler.stats.uptime_seconds)
        gauges.append(uptime)
        dispatcher = getattr(self.scheduler, "dispatcher", None)
        if dispatcher is not None:
            snapshot = dispatcher.queue.stats()
            for name, help_text, value in (
                ("repro_queue_depth", "Jobs leasable right now.", snapshot["depth"]),
                ("repro_queue_leased", "Jobs currently under lease.", snapshot["leased"]),
                ("repro_queue_dead_jobs", "Jobs that exhausted their attempt budget.", snapshot["dead"]),
            ):
                gauge = Gauge(name, help_text)
                gauge.set(value)
                gauges.append(gauge)
        return gauges

    async def _run_job(self, path: str, payload: dict) -> dict:
        hypergraph = _hypergraph_from(payload)
        timeout = _float_field(payload, "timeout")
        deadline = _float_field(payload, "deadline")
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise _BadRequest("'tenant' must be a string")
        priority = payload.get("priority", "normal")
        if priority not in PRIORITIES:
            raise _BadRequest(
                f"'priority' must be one of {sorted(PRIORITIES)}"
            )
        extras = {"deadline": deadline, "tenant": tenant, "priority": priority}
        if path == "/portfolio":
            return await self.scheduler.portfolio(
                hypergraph, _int_field(payload, "k"), timeout=timeout, **extras
            )
        # Unknown method names are a client mistake, answered 400 here so
        # they never reach (and never trip) the dispatch circuit breaker.
        method = str(payload.get("method", "hd"))
        if method not in CHECK_METHODS:
            raise _BadRequest(
                f"unknown method {method!r}; known: {sorted(CHECK_METHODS)}"
            )
        if path == "/width":
            return await self.scheduler.width(
                hypergraph,
                _int_field(payload, "max_k"),
                method=method,
                timeout=timeout,
                **extras,
            )
        # /check and /decompose share the flight key, so a concurrent check
        # and decompose of the same (H, method, k) coalesce; /check merely
        # strips the tree from its response.
        result = await self.scheduler.check(
            hypergraph,
            _int_field(payload, "k"),
            method=method,
            timeout=timeout,
            **extras,
        )
        if path == "/check":
            result = {k: v for k, v in result.items() if k != "decomposition"}
        return result


# ------------------------------------------------------------ sync embedding


class ServiceThread:
    """A server + scheduler + event loop hosted on a background thread.

    The synchronous embedding used by tests, benchmarks and the examples:

    .. code-block:: python

        engine = DecompositionEngine(store=ResultStore("results.db"))
        with ServiceThread(engine) as service:
            client = ServiceClient(port=service.port)
            client.check(h, k=2)

    ``stop()`` (or leaving the ``with`` block) drains the scheduler and, by
    default, closes the engine and its store.
    """

    def __init__(
        self,
        engine: DecompositionEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = 0.02,
        max_wave: int = 32,
        close_engine: bool = True,
        slow_request_seconds: float | None = 1.0,
        admission: AdmissionController | None = None,
        breaker: CircuitBreaker | None = None,
        max_body_bytes: int = _MAX_BODY,
        drain_seconds: float | None = 5.0,
    ):
        self.engine = engine
        self.scheduler: BatchScheduler | None = None
        self.server: DecompositionServer | None = None
        #: ``{"in_flight", "drained", "stragglers"}`` from the last stop().
        self.drain_report: dict | None = None
        self._close_engine = close_engine
        self._slow = slow_request_seconds
        self._admission = admission
        self._breaker = breaker
        self._max_body = max_body_bytes
        self._drain_seconds = drain_seconds
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, args=(host, port, window, max_wave), daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error

    def _main(self, host: str, port: int, window: float, max_wave: int) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                self.scheduler = BatchScheduler(
                    self.engine, window=window, max_wave=max_wave,
                    admission=self._admission, breaker=self._breaker,
                )
                self.server = DecompositionServer(
                    self.scheduler, host=host, port=port,
                    slow_request_seconds=self._slow,
                    max_body_bytes=self._max_body,
                )
                await self.server.start()
            except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            # Graceful order: listener first, then let in-flight waves land
            # (their connections are still open and still get 200s), then
            # tear the scheduler/engine down.
            await self.server.close_listener()
            self.drain_report = await self.scheduler.drain(self._drain_seconds)
            await self.server.stop(close_engine=self._close_engine)

        asyncio.run(body())

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def stop(self, join_timeout: float = 30.0) -> None:
        """Stop accepting, drain in-flight waves, join the thread.

        Raises ``RuntimeError`` if the thread outlives ``join_timeout`` —
        a wedged server is a bug worth surfacing, not a silent leak.
        """
        if self._loop is not None and self._stop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=join_timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"service thread did not stop within {join_timeout:.0f}s "
                "(event loop wedged; server and engine leaked)"
            )

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


async def serve(
    store_path: str | None,
    host: str = "127.0.0.1",
    port: int = 8080,
    jobs: int = 1,
    window: float = 0.02,
    max_wave: int = 32,
    slow_request_seconds: float | None = 1.0,
    trace_journal: str | None = None,
    queue_path: str | None = None,
    shards: int | None = None,
    max_pending: int | None = None,
    kind_limits: dict[str, int] | None = None,
    tenant_rate: float | None = None,
    tenant_burst: float | None = None,
    breaker_failures: int = 5,
    breaker_reset: float = 30.0,
    drain_seconds: float = 5.0,
    max_body_bytes: int = _MAX_BODY,
) -> None:
    """Run the service until cancelled or signalled (``repro serve``).

    ``trace_journal`` appends every finished span as JSONL to the given path
    (readable offline with ``repro trace show --journal``);
    ``slow_request_seconds`` tunes the slow-request log threshold.

    ``queue_path`` switches wave execution to distributed dispatch: waves go
    into the persistent job queue at that path, and external ``repro
    worker`` processes (sharing the queue and ``--cache``) execute them.
    The serving process then does no decomposition work itself — with no
    workers attached, requests wait in the queue.  ``shards`` opens the
    cache as a :class:`~repro.engine.shards.ShardedResultStore` (N files,
    routed by fingerprint), the layout that spreads worker write-back.

    Overload protection (``docs/ROBUSTNESS.md``): ``max_pending``,
    ``kind_limits`` and ``tenant_rate``/``tenant_burst`` configure an
    :class:`~repro.service.overload.AdmissionController` (all off by
    default); ``breaker_failures``/``breaker_reset`` configure the wave
    circuit breaker (on by default, ``breaker_failures=0`` disables it).
    SIGTERM/SIGINT trigger graceful drain: the listener closes, in-flight
    waves get up to ``drain_seconds`` to land (their clients still receive
    responses), stragglers are reported, and every exit path closes the
    engine, store and queue.
    """
    if trace_journal is not None:
        TRACER.set_journal(trace_journal)
    store = open_result_store(store_path, shards=shards)
    engine = DecompositionEngine(store=store, jobs=jobs)
    dispatcher = None
    server = None
    scheduler = None
    serving: asyncio.Future | None = None
    signalled: asyncio.Future | None = None
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed: list[signal.Signals] = []
    try:
        if queue_path is not None:
            dispatcher = Dispatcher(JobQueue(queue_path), engine)
        admission = None
        if max_pending is not None or kind_limits or tenant_rate is not None:
            admission = AdmissionController(
                max_pending=max_pending,
                kind_limits=kind_limits,
                tenant_rate=tenant_rate,
                tenant_burst=tenant_burst,
            )
        breaker = None
        if breaker_failures > 0:
            breaker = CircuitBreaker(
                failure_threshold=breaker_failures, reset_seconds=breaker_reset
            )
        scheduler = BatchScheduler(
            engine, window=window, max_wave=max_wave, dispatcher=dispatcher,
            admission=admission, breaker=breaker,
        )
        server = DecompositionServer(
            scheduler, host=host, port=port,
            slow_request_seconds=slow_request_seconds,
            max_body_bytes=max_body_bytes,
        )
        await server.start()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without signal support
        mode = f", queue={queue_path}" if queue_path is not None else ""
        print(f"repro service on {server.url} "
              f"(jobs={jobs}, cache={store_path or ':memory:'}{mode})", flush=True)
        serving = asyncio.ensure_future(server.serve_forever())
        signalled = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {serving, signalled}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop.is_set():
            # Graceful drain: stop accepting (cancels serve_forever), let
            # in-flight waves land and answer over their still-open
            # connections, then fall through to the shared teardown.
            print("repro service: draining...", flush=True)
            await server.close_listener()
            report = await scheduler.drain(drain_seconds)
            print(
                "repro service: drained "
                f"{report['drained']}/{report['in_flight']} in-flight waves, "
                f"{report['stragglers']} stragglers",
                flush=True,
            )
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serving, signalled):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
        for sig in installed:
            loop.remove_signal_handler(sig)
        if server is not None:
            await server.stop(close_engine=True)
        elif scheduler is not None:
            await scheduler.close(close_engine=True)
        else:
            engine.close()
        if dispatcher is not None:
            dispatcher.queue.close()
