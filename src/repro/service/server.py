"""JSON-over-HTTP transport for the batch scheduler (stdlib only).

One long-lived server process owns one :class:`DecompositionEngine` and one
:class:`ResultStore`, so every client shares the warm cache and the
scheduler's coalescing window — the HyperBench "service over a precomputed
result store" shape, grown onto four PRs of engine work.

Endpoints (all responses are JSON):

``POST /check``
    ``{"hypergraph": "<hg text>" | {"edges": {...}}, "k": 3,
    "method": "hd", "timeout": 60.0, "deadline": 5.0}`` →
    verdict payload (plus the decomposition tree on a "yes").
``POST /width``
    ``{"hypergraph": ..., "max_k": 6, "method": "hd", ...}`` → exact width
    or bounds (the Figure 4 protocol as one batched job).
``POST /decompose``
    Like ``/check`` but fails with 404-style ``"verdict": "no"`` semantics
    left to the client; the decomposition rides along on a yes.
``POST /portfolio``
    ``{"hypergraph": ..., "k": 3, ...}`` → the Table 4 race verdict.
``GET /stats``
    Service, engine and store counters (coalescing, waves, hit rates).
``GET /healthz``
    Liveness: ``{"status": "ok", ...}`` plus uptime, version, pid and the
    cache path.
``GET /metrics``
    The process metrics registry in Prometheus text exposition format.
``GET /debug/traces``
    The tracer's in-memory ring, grouped by trace (``?limit=N`` bounds the
    number of traces, newest first).

The HTTP layer is a deliberately minimal HTTP/1.1 implementation over
``asyncio`` streams — no routing framework, no threads, no dependencies —
because the interesting concurrency lives in the scheduler, not the socket
handling.  Connections are keep-alive by default; malformed requests get
``400``, unknown paths ``404``.

Each job request runs under an ``http.request`` root span, so a ``/check``
decomposes into scheduler-wait → wave → worker-exec time in
``/debug/traces``; requests slower than ``slow_request_seconds`` are logged
through the ``repro.service`` logger.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import threading
import time
from urllib.parse import parse_qs

from repro.core.hypergraph import Hypergraph
from repro.engine.engine import DecompositionEngine
# Imported for the side effect too: registering the repro_queue_* metric
# families so /metrics always exposes them, queue-backed or not.
from repro.engine.queue import JobQueue
from repro.engine.remote import Dispatcher
from repro.engine.shards import open_result_store
from repro.errors import ReproError
from repro.io.hg_format import parse_hypergraph
from repro.obs.metrics import Gauge, REGISTRY
from repro.obs.trace import TRACER
from repro.service.scheduler import BatchScheduler

__all__ = ["DecompositionServer", "ServiceThread", "serve"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed", 500: "Internal Server Error"}

#: Request bodies above this are rejected (a hypergraph is a few KB of text).
_MAX_BODY = 8 * 1024 * 1024

#: Endpoints that submit scheduler jobs (traced under ``http.request``).
_JOB_PATHS = ("/check", "/width", "/decompose", "/portfolio")

_LOG = logging.getLogger("repro.service")

_M_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total", "HTTP requests served, by path and status."
)
_M_HTTP_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds", "End-to-end HTTP request latency in seconds."
)


class _BadRequest(Exception):
    """Client error: reported as a 400 with the message in the body."""


def _hypergraph_from(payload: dict) -> Hypergraph:
    """Build the instance from a request body (hg text or an edge dict)."""
    raw = payload.get("hypergraph")
    name = str(payload.get("name", ""))
    if isinstance(raw, str):
        return parse_hypergraph(raw, name=name)
    if isinstance(raw, dict):
        edges = raw.get("edges", raw)
        if not isinstance(edges, dict):
            raise _BadRequest("'hypergraph.edges' must be an object")
        return Hypergraph(edges, name=name)
    raise _BadRequest(
        "request needs 'hypergraph': detkdecomp text or {\"edges\": {...}}"
    )


def _int_field(payload: dict, key: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise _BadRequest(f"'{key}' must be a positive integer")
    return value


def _float_field(payload: dict, key: str) -> float | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise _BadRequest(f"'{key}' must be a positive number")
    return float(value)


class DecompositionServer:
    """The asyncio HTTP server; owns the scheduler's lifetime, not the engine's.

    Use :meth:`start` / :meth:`stop` from a running event loop, or the
    :class:`ServiceThread` wrapper to host a server from synchronous code
    (tests, benchmarks, notebook sessions).
    """

    def __init__(
        self,
        scheduler: BatchScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        slow_request_seconds: float | None = 1.0,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        #: Requests at or above this many seconds are logged via the
        #: ``repro.service`` logger; ``None`` disables the slow-request log.
        self.slow_request_seconds = slow_request_seconds
        self._server: asyncio.base_events.Server | None = None
        self._started = time.time()

    async def start(self) -> None:
        """Bind and start accepting; ``port`` is re-read from the socket
        (so ``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.time()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, close_engine: bool = False) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close(close_engine=close_engine)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- connection

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    # The request could not even be framed, so nothing about
                    # keep-alive can be trusted: answer 400 and hang up.
                    await self._respond(writer, 400, {"error": str(exc)}, False)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                route = path.split("?", 1)[0]
                started = time.monotonic()
                try:
                    status, payload = await self._handle(method, path, body)
                except _BadRequest as exc:
                    status, payload = 400, {"error": str(exc)}
                except (ReproError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                    status, payload = 400, {"error": str(exc)}
                except Exception as exc:  # noqa: BLE001 - a 500, not a crash
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                elapsed = time.monotonic() - started
                _M_HTTP_REQUESTS.inc(path=route, status=status)
                _M_HTTP_SECONDS.observe(elapsed)
                if (
                    self.slow_request_seconds is not None
                    and elapsed >= self.slow_request_seconds
                ):
                    _LOG.warning(
                        "slow request: %s %s took %.3fs (status %d)",
                        method, route, elapsed, status,
                    )
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            raise _BadRequest("Content-Length must be an integer") from None
        if length < 0:
            raise _BadRequest("Content-Length must be non-negative")
        if length > _MAX_BODY:
            raise _BadRequest(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length > 0 else b""
        return method.upper(), path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        keep_alive: bool,
    ) -> None:
        # A ``str`` payload is served verbatim as plain text (the Prometheus
        # exposition of ``/metrics``); everything else is JSON.
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # --------------------------------------------------------------- routing

    async def _handle(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str]:
        """Route one request, giving job submissions an ``http.request`` span.

        The span is the request's trace root: the scheduler picks it up as
        the ambient context, so scheduler-wait / wave / worker spans all land
        in one trace per HTTP request.
        """
        route = path.split("?", 1)[0]
        if method == "POST" and route in _JOB_PATHS:
            with TRACER.span("http.request", path=route) as span:
                status, payload = await self._dispatch(method, path, body)
                span.set(status=status)
                return status, payload
        return await self._dispatch(method, path, body)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str]:
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            store = self.scheduler.engine.store
            from repro import __version__

            return 200, {
                "status": "ok",
                "uptime": round(time.time() - self._started, 3),
                "uptime_seconds": round(self.scheduler.stats.uptime_seconds, 3),
                "started": self._started,
                "version": __version__,
                "pid": os.getpid(),
                "cache": store.path if store is not None else None,
                "queue": (
                    self.scheduler.dispatcher.queue.path
                    if getattr(self.scheduler, "dispatcher", None) is not None
                    else None
                ),
                "in_flight": len(self.scheduler._flights),
            }
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.scheduler.stats_snapshot()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, REGISTRY.render(extra=self._live_gauges())
        if path == "/debug/traces":
            if method != "GET":
                return 405, {"error": "use GET"}
            params = parse_qs(query)
            try:
                limit = int(params.get("limit", ["20"])[0])
            except ValueError:
                raise _BadRequest("'limit' must be an integer") from None
            return 200, {"traces": TRACER.traces(limit=limit)}
        if path in _JOB_PATHS:
            if method != "POST":
                return 405, {"error": "use POST"}
            payload = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(payload, dict):
                raise _BadRequest("request body must be a JSON object")
            return 200, await self._run_job(path, payload)
        return 404, {"error": f"unknown path {path!r}"}

    def _live_gauges(self) -> list[Gauge]:
        """Ad-hoc gauges over live objects, rendered per scrape (not stored)."""
        gauges = []
        store = self.scheduler.engine.store
        if store is not None:
            entries = Gauge(
                "repro_store_entries", "Rows currently in the result store."
            )
            entries.set(len(store))
            gauges.append(entries)
        in_flight = Gauge(
            "repro_service_in_flight", "Flights currently queued or mid-wave."
        )
        in_flight.set(len(self.scheduler._flights))
        gauges.append(in_flight)
        uptime = Gauge(
            "repro_service_uptime_seconds", "Seconds since scheduler start."
        )
        uptime.set(self.scheduler.stats.uptime_seconds)
        gauges.append(uptime)
        dispatcher = getattr(self.scheduler, "dispatcher", None)
        if dispatcher is not None:
            snapshot = dispatcher.queue.stats()
            for name, help_text, value in (
                ("repro_queue_depth", "Jobs leasable right now.", snapshot["depth"]),
                ("repro_queue_leased", "Jobs currently under lease.", snapshot["leased"]),
                ("repro_queue_dead_jobs", "Jobs that exhausted their attempt budget.", snapshot["dead"]),
            ):
                gauge = Gauge(name, help_text)
                gauge.set(value)
                gauges.append(gauge)
        return gauges

    async def _run_job(self, path: str, payload: dict) -> dict:
        hypergraph = _hypergraph_from(payload)
        timeout = _float_field(payload, "timeout")
        deadline = _float_field(payload, "deadline")
        if path == "/width":
            return await self.scheduler.width(
                hypergraph,
                _int_field(payload, "max_k"),
                method=str(payload.get("method", "hd")),
                timeout=timeout,
                deadline=deadline,
            )
        if path == "/portfolio":
            return await self.scheduler.portfolio(
                hypergraph, _int_field(payload, "k"), timeout=timeout, deadline=deadline
            )
        # /check and /decompose share the flight key, so a concurrent check
        # and decompose of the same (H, method, k) coalesce; /check merely
        # strips the tree from its response.
        result = await self.scheduler.check(
            hypergraph,
            _int_field(payload, "k"),
            method=str(payload.get("method", "hd")),
            timeout=timeout,
            deadline=deadline,
        )
        if path == "/check":
            result = {k: v for k, v in result.items() if k != "decomposition"}
        return result


# ------------------------------------------------------------ sync embedding


class ServiceThread:
    """A server + scheduler + event loop hosted on a background thread.

    The synchronous embedding used by tests, benchmarks and the examples:

    .. code-block:: python

        engine = DecompositionEngine(store=ResultStore("results.db"))
        with ServiceThread(engine) as service:
            client = ServiceClient(port=service.port)
            client.check(h, k=2)

    ``stop()`` (or leaving the ``with`` block) drains the scheduler and, by
    default, closes the engine and its store.
    """

    def __init__(
        self,
        engine: DecompositionEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = 0.02,
        max_wave: int = 32,
        close_engine: bool = True,
        slow_request_seconds: float | None = 1.0,
    ):
        self.engine = engine
        self.scheduler: BatchScheduler | None = None
        self.server: DecompositionServer | None = None
        self._close_engine = close_engine
        self._slow = slow_request_seconds
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, args=(host, port, window, max_wave), daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error

    def _main(self, host: str, port: int, window: float, max_wave: int) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                self.scheduler = BatchScheduler(
                    self.engine, window=window, max_wave=max_wave
                )
                self.server = DecompositionServer(
                    self.scheduler, host=host, port=port,
                    slow_request_seconds=self._slow,
                )
                await self.server.start()
            except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.server.stop(close_engine=self._close_engine)

        asyncio.run(body())

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def stop(self) -> None:
        """Stop accepting, drain in-flight waves, join the thread."""
        if self._loop is not None and self._stop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


async def serve(
    store_path: str | None,
    host: str = "127.0.0.1",
    port: int = 8080,
    jobs: int = 1,
    window: float = 0.02,
    max_wave: int = 32,
    slow_request_seconds: float | None = 1.0,
    trace_journal: str | None = None,
    queue_path: str | None = None,
    shards: int | None = None,
) -> None:
    """Run the service until cancelled (the ``repro serve`` entry point).

    ``trace_journal`` appends every finished span as JSONL to the given path
    (readable offline with ``repro trace show --journal``);
    ``slow_request_seconds`` tunes the slow-request log threshold.

    ``queue_path`` switches wave execution to distributed dispatch: waves go
    into the persistent job queue at that path, and external ``repro
    worker`` processes (sharing the queue and ``--cache``) execute them.
    The serving process then does no decomposition work itself — with no
    workers attached, requests wait in the queue.  ``shards`` opens the
    cache as a :class:`~repro.engine.shards.ShardedResultStore` (N files,
    routed by fingerprint), the layout that spreads worker write-back.
    """
    if trace_journal is not None:
        TRACER.set_journal(trace_journal)
    store = open_result_store(store_path, shards=shards)
    engine = DecompositionEngine(store=store, jobs=jobs)
    dispatcher = None
    if queue_path is not None:
        dispatcher = Dispatcher(JobQueue(queue_path), engine)
    scheduler = BatchScheduler(
        engine, window=window, max_wave=max_wave, dispatcher=dispatcher
    )
    server = DecompositionServer(
        scheduler, host=host, port=port, slow_request_seconds=slow_request_seconds
    )
    await server.start()
    mode = f", queue={queue_path}" if queue_path is not None else ""
    print(f"repro service on {server.url} "
          f"(jobs={jobs}, cache={store_path or ':memory:'}{mode})", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop(close_engine=True)
        if dispatcher is not None:
            dispatcher.queue.close()
