"""``repro.service`` — a coalescing batch service front-end over the engine.

The fifth layer of the stack (core → decomp → engine → **service**): a
long-lived process owning one shared :class:`~repro.engine.engine.\
DecompositionEngine` + :class:`~repro.engine.store.ResultStore`, fronted by
an asyncio scheduler that

* answers requests from the store (exact rows, bounds-implied verdicts,
  cross-method ``kind_bounds`` knowledge) before dispatching anything,
* **coalesces concurrent duplicate requests** by ``(fingerprint, method,
  k)`` so N identical in-flight asks cost one engine dispatch, and
* batches the remainder into :meth:`run_batch` waves with per-request
  deadlines, and
* **refuses work it cannot serve** (see :mod:`repro.service.overload` and
  ``docs/ROBUSTNESS.md``): a bounded admission budget, per-tenant rate
  limits and priority classes, a circuit breaker around wave dispatch, and
  graceful SIGTERM drain — overload degrades into typed 429/503 refusals
  instead of unbounded queues.

Start one with ``repro serve --port 8080 --cache results.db --jobs 4``,
embed one with :class:`ServiceThread`, talk to one with
:class:`ServiceClient`.  See ``docs/ARCHITECTURE.md`` for how the layers
fit and ``examples/service_client.py`` for a walkthrough.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.overload import (
    REJECTED,
    AdmissionController,
    CircuitBreaker,
    Rejected,
    TokenBucket,
)
from repro.service.scheduler import BatchScheduler, ServiceStats
from repro.service.server import DecompositionServer, ServiceThread, serve

__all__ = [
    "BatchScheduler",
    "ServiceStats",
    "DecompositionServer",
    "ServiceThread",
    "ServiceClient",
    "ServiceError",
    "AdmissionController",
    "CircuitBreaker",
    "TokenBucket",
    "Rejected",
    "REJECTED",
    "serve",
]
