"""A fingerprint-sharded result store: N :class:`ResultStore` files as one.

Distributed dispatch turns the store from a private cache into a shared
write target: every worker process finishing a wave writes its verdicts
back, and a single SQLite file serialises all of them on one WAL writer
lock.  Sharding by content fingerprint splits that contention N ways while
keeping every lookup single-file: a job's results, bounds, and implied
answers all live on the shard its fingerprint routes to.

Routing is the first two hex digits of the (SHA-256) fingerprint modulo the
shard count — deterministic, uniform, and stable across processes, so every
worker and the dispatcher agree on each row's home without coordination.

The one piece of knowledge that is *not* naturally shard-local is the
cross-method ``kind_bounds`` table: its rows are keyed by fingerprint too,
but the paper's width relations make them the store's most valuable
derived facts, and replicating them costs a few integer rows per
fingerprint.  :meth:`ShardedResultStore.put` therefore recomputes the
owning shard's rows and then **replicates them to every other shard** via
:meth:`ResultStore.seed_kind_bounds`, so implied answers stay shard-local
no matter which shard a reader consults.

A directory layout::

    cache.d/
        shards.json     {"version": 1, "shards": 4}
        shard-00.db     rows with int(fp[:2], 16) % 4 == 0
        shard-01.db     ...

Opening an existing *single-file* store path migrates it in place: rows are
exported, the file is parked as ``<name>.preshard``, and a directory of the
requested shard count takes its place with rows distributed by route and
lifetime hit/miss counters adopted by shard 0.  :func:`open_result_store`
is the front door used by the CLI and the service: it picks plain
:class:`ResultStore` or the sharded layout from the path and ``--shards``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.decomp.driver import CheckOutcome
from repro.engine.store import ResultStore, StoredResult, StoreStats
from repro.errors import ReproError

__all__ = ["ShardedResultStore", "open_result_store"]

_META_NAME = "shards.json"


def shard_for(fingerprint: str, n_shards: int) -> int:
    """Route a fingerprint to its owning shard (stable across processes)."""
    try:
        return int(fingerprint[:2], 16) % n_shards
    except (ValueError, IndexError):
        # Non-hex keys (tests, ad-hoc fingerprints) still route somewhere
        # deterministic; hash() is salted per-process, so use a digest-free
        # fold of the code points instead.
        return sum(ord(ch) for ch in fingerprint[:8]) % n_shards


class ShardedResultStore:
    """N result-store files behind the single-store API.

    Duck-types :class:`ResultStore` for every surface the engine, service,
    and CLI touch — ``get``/``put``/``bounds``/``kind_bounds``/
    ``effective_bounds``/``implied`` route by fingerprint; ``stats``,
    ``__len__``, ``methods``, ``bounds_rows``, ``kind_bounds_rows``,
    ``clear`` aggregate across shards.

    >>> store = ShardedResultStore(shards=4)        # ephemeral, in-memory
    >>> store.put("00aa", "hd", 2, None, CheckOutcome("yes", 0.1))
    >>> store.get("00aa", "hd", 2, None).verdict
    'yes'
    >>> all(s.kind_bounds("00aa", "hw") == (1, 2) for s in store.shards)
    True

    Parameters
    ----------
    path:
        Directory holding the shard files, an existing single-file store to
        migrate, or ``None`` for an ephemeral in-memory sharded store.
    shards:
        Shard count for a *new* store.  An existing directory's recorded
        count always wins (resharding is not supported in place); passing a
        conflicting count raises.
    max_entries:
        Total LRU cap, split evenly across shards (each shard enforces
        ``ceil(max_entries / n)`` so the total stays ≤ ``max_entries + n``).
    """

    DEFAULT_SHARDS = 4

    def __init__(
        self,
        path: str | Path | None = None,
        shards: int | None = None,
        max_entries: int | None = None,
    ):
        self._dir = None if path is None else Path(path)
        self.path = None if self._dir is None else str(self._dir)
        self._migrated_fps: list[str] = []
        requested = None if shards is None else max(1, int(shards))
        if self._dir is None:
            self.n_shards = requested or self.DEFAULT_SHARDS
            self.shards = [
                ResultStore(max_entries=self._per_shard_cap(max_entries))
                for _ in range(self.n_shards)
            ]
            return
        if self._dir.is_file():
            self._migrate_single_file(requested or self.DEFAULT_SHARDS)
        recorded = self._read_meta()
        if recorded is None:
            self.n_shards = requested or self.DEFAULT_SHARDS
            self._dir.mkdir(parents=True, exist_ok=True)
            self._write_meta()
        else:
            if requested is not None and requested != recorded:
                raise ReproError(
                    f"{self.path} holds {recorded} shards; in-place resharding"
                    f" to {requested} is not supported"
                )
            self.n_shards = recorded
        cap = self._per_shard_cap(max_entries)
        self.shards = [
            ResultStore(self._shard_path(i), max_entries=cap)
            for i in range(self.n_shards)
        ]
        # A migration rebuilt each owner's knowledge layer from its rows;
        # replicate it now that every shard is open, so implied answers are
        # shard-local for migrated fingerprints too.
        for fp in self._migrated_fps:
            self._replicate_kind_bounds(fp)
        self._migrated_fps = []

    def _per_shard_cap(self, max_entries: int | None) -> int | None:
        if max_entries is None:
            return None
        n = self.n_shards if hasattr(self, "n_shards") else self.DEFAULT_SHARDS
        return max(1, -(-max_entries // n))

    def _shard_path(self, index: int) -> Path:
        return self._dir / f"shard-{index:02d}.db"

    def _read_meta(self) -> int | None:
        meta_path = None if self._dir is None else self._dir / _META_NAME
        if meta_path is None or not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            return max(1, int(meta["shards"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise ReproError(f"{meta_path} is not a shard manifest: {exc}") from exc

    def _write_meta(self) -> None:
        (self._dir / _META_NAME).write_text(
            json.dumps({"version": 1, "shards": self.n_shards}) + "\n",
            encoding="utf-8",
        )

    def _migrate_single_file(self, n_shards: int) -> None:
        """Turn a pre-shard single-file store into a shard directory.

        The original file survives as ``<name>.preshard`` next to the new
        directory — the migration is lossless but the backup makes it also
        trivially reversible.
        """
        with ResultStore(self._dir) as old:
            rows = old.export_rows()
            stats = old.stats
        backup = self._dir.with_name(self._dir.name + ".preshard")
        self._dir.rename(backup)
        # WAL side files belong to the old database; they are checkpointed
        # on close, so stale ones next to the new directory just confuse.
        for suffix in ("-wal", "-shm"):
            side = Path(str(self._dir) + suffix)
            if side.exists():
                side.unlink()
        self._dir.mkdir(parents=True)
        self.n_shards = n_shards
        self._write_meta()
        buckets: dict[int, list[tuple]] = {}
        for row in rows:
            buckets.setdefault(shard_for(row[0], n_shards), []).append(row)
        self._migrated_fps = sorted({row[0] for row in rows})
        for index in range(n_shards):
            with ResultStore(self._shard_path(index)) as shard:
                shard.import_rows(buckets.get(index, []))
                if index == 0:
                    shard.adopt_meta(stats.hits, stats.misses, stats.implied)

    # --------------------------------------------------------------- routing

    def _shard(self, fingerprint: str) -> ResultStore:
        return self.shards[shard_for(fingerprint, self.n_shards)]

    def _replicate_kind_bounds(self, fingerprint: str) -> None:
        owner = shard_for(fingerprint, self.n_shards)
        rows = self.shards[owner].kind_bounds_for(fingerprint)
        for index, shard in enumerate(self.shards):
            if index != owner:
                shard.seed_kind_bounds(fingerprint, rows)

    # ----------------------------------------------------------------- cache

    def get(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        record: bool = True,
        bounds: bool = True,
    ) -> StoredResult | None:
        return self._shard(fingerprint).get(
            fingerprint, method, k, timeout, record=record, bounds=bounds
        )

    def put(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        outcome: CheckOutcome,
        extra: dict | None = None,
    ) -> None:
        self._shard(fingerprint).put(fingerprint, method, k, timeout, outcome, extra)
        self._replicate_kind_bounds(fingerprint)

    def clear(self) -> None:
        for shard in self.shards:
            shard.clear()

    # ---------------------------------------------------------------- bounds

    def bounds(self, fingerprint: str, method: str) -> tuple[int, int | None]:
        return self._shard(fingerprint).bounds(fingerprint, method)

    def kind_bounds(self, fingerprint: str, kind: str) -> tuple[int, int | None]:
        return self._shard(fingerprint).kind_bounds(fingerprint, kind)

    def effective_bounds(self, fingerprint: str, method: str) -> tuple[int, int | None]:
        return self._shard(fingerprint).effective_bounds(fingerprint, method)

    def implied(self, fingerprint: str, method: str, k: int) -> StoredResult | None:
        return self._shard(fingerprint).implied(fingerprint, method, k)

    def bounds_rows(self) -> list[tuple[str, str, int, int | None]]:
        rows: list[tuple[str, str, int, int | None]] = []
        for shard in self.shards:
            rows.extend(shard.bounds_rows())
        return sorted(rows)

    def kind_bounds_rows(self) -> list[tuple[str, str, int, int | None]]:
        # Replicas carry the same rows as the owner; dedupe on the key so the
        # aggregate reads like a single store's table.
        rows = {
            (fp, kind): (lo, hi)
            for shard in self.shards
            for fp, kind, lo, hi in shard.kind_bounds_rows()
        }
        return sorted((fp, kind, lo, hi) for (fp, kind), (lo, hi) in rows.items())

    # ------------------------------------------------------------ accounting

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def record_hits(self, count: int, implied: int = 0) -> None:
        # Batch-level accounting has no single fingerprint; shard 0 keeps
        # the lifetime counters (stats() aggregates, so placement is moot).
        self.shards[0].record_hits(count, implied)

    def record_misses(self, count: int) -> None:
        self.shards[0].record_misses(count)

    @property
    def stats(self) -> StoreStats:
        shard_stats = [shard.stats for shard in self.shards]
        return StoreStats(
            entries=sum(s.entries for s in shard_stats),
            hits=sum(s.hits for s in shard_stats),
            misses=sum(s.misses for s in shard_stats),
            session_hits=sum(s.session_hits for s in shard_stats),
            session_misses=sum(s.session_misses for s in shard_stats),
            implied=sum(s.implied for s in shard_stats),
            session_implied=sum(s.session_implied for s in shard_stats),
        )

    def methods(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for shard in self.shards:
            for method, count in shard.methods().items():
                merged[method] = merged.get(method, 0) + count
        return dict(sorted(merged.items()))

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedResultStore {self.path!r}:"
            f" {self.n_shards} shards, {len(self)} entries>"
        )


def open_result_store(
    path: str | Path | None,
    shards: int | None = None,
    max_entries: int | None = None,
):
    """Open the right store flavour for a ``--cache`` path.

    - ``None`` path → ephemeral in-memory :class:`ResultStore` (sharded
      only when ``shards`` asks for it).
    - A directory, or any path carrying a ``shards.json`` manifest →
      :class:`ShardedResultStore` (the manifest's count wins).
    - A single file plus ``shards`` > 1 → in-place migration to shards.
    - Otherwise → plain single-file :class:`ResultStore`.
    """
    if path is None:
        if shards is not None and shards > 1:
            return ShardedResultStore(shards=shards, max_entries=max_entries)
        return ResultStore(max_entries=max_entries)
    path = Path(path)
    sharded = (
        (shards is not None and shards > 1)
        or path.is_dir()
        or (path / _META_NAME).exists()
    )
    if sharded:
        return ShardedResultStore(path, shards=shards, max_entries=max_entries)
    return ResultStore(path, max_entries=max_entries)
