"""Batch job specifications and the restartable JSONL journal.

A :class:`JobSpec` is one deployable unit of decomposition work — a single
``Check(H, k)`` attempt, an exact-width sweep (the Figure 4 protocol for one
instance), or a portfolio race (Table 4).  A batch is simply a list of specs;
:meth:`repro.engine.engine.DecompositionEngine.run_batch` executes them with
cache consultation and writes one journal line per finished job, so an
interrupted benchmark sweep resumes exactly where it stopped — even when the
interruption truncated the journal mid-line.

Journal lines are self-contained JSON records keyed by the job's identity
``(kind, fingerprint, method, k, max_k, timeout)``; the hypergraph itself is
not journalled (the spec still carries it), only the verdicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.decomp.driver import CheckOutcome, WidthResult
from repro.engine.fingerprint import fingerprint as _content_fingerprint
from repro.engine.store import timeout_key

__all__ = ["JobSpec", "JobResult", "Journal"]

CHECK = "check"
WIDTH = "width"
PORTFOLIO = "portfolio"
_KINDS = (CHECK, WIDTH, PORTFOLIO)


@dataclass(frozen=True)
class JobSpec:
    """One unit of work over one hypergraph.

    Use the :meth:`check` / :meth:`width` / :meth:`portfolio` constructors;
    ``kind`` decides which of ``k`` / ``max_k`` is meaningful.  A spec's
    :meth:`key` is its content-addressed identity — what the batch journal
    resumes on and the service scheduler coalesces on:

    >>> from repro.core.hypergraph import Hypergraph
    >>> h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"]}, name="path")
    >>> spec = JobSpec.check(h, 2, method="hd")
    >>> spec.key() == JobSpec.check(Hypergraph({"s": ["z", "y"], "r": ["y", "x"]}), 2).key()
    True
    >>> spec.key()[0], spec.key()[2:]
    ('check', ('hd', 2, None, 'none'))
    """

    kind: str
    hypergraph: Hypergraph
    method: str = "hd"
    k: int | None = None
    max_k: int | None = None
    timeout: float | None = None
    #: The submitting request's :class:`~repro.obs.TraceContext` (or ``None``).
    #: Travels with the spec into ``run_batch`` so the wave / worker spans
    #: parent into the request's trace; excluded from identity and equality —
    #: two requests for the same work still coalesce.
    trace: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; known: {_KINDS}")

    # ------------------------------------------------------------ factories

    @classmethod
    def check(
        cls,
        hypergraph: Hypergraph,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        trace: object | None = None,
    ) -> "JobSpec":
        """A single ``Check(H, k)`` attempt with the given algorithm."""
        return cls(CHECK, hypergraph, method=method, k=k, timeout=timeout, trace=trace)

    @classmethod
    def width(
        cls,
        hypergraph: Hypergraph,
        max_k: int,
        method: str = "hd",
        timeout: float | None = None,
        trace: object | None = None,
    ) -> "JobSpec":
        """An exact-width sweep, iterating k = 1..max_k (Figure 4 protocol)."""
        return cls(
            WIDTH, hypergraph, method=method, max_k=max_k, timeout=timeout, trace=trace
        )

    @classmethod
    def portfolio(
        cls,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None = None,
        trace: object | None = None,
    ) -> "JobSpec":
        """A GHD portfolio race at width ``k`` (Table 4 protocol)."""
        return cls(
            PORTFOLIO, hypergraph, method="portfolio", k=k, timeout=timeout, trace=trace
        )

    # ------------------------------------------------------------- identity

    @cached_property
    def fingerprint(self) -> str:
        """The hypergraph's content fingerprint, computed once per spec."""
        return _content_fingerprint(self.hypergraph)

    def key(self) -> tuple:
        """Content-addressed identity used for journal resume."""
        return (
            self.kind,
            self.fingerprint,
            self.method,
            self.k,
            self.max_k,
            timeout_key(self.timeout),
        )

    @property
    def name(self) -> str:
        return self.hypergraph.name or "H"


@dataclass
class JobResult:
    """The outcome of one executed (or resumed) job."""

    spec: JobSpec
    verdict: str
    seconds: float
    #: True when every underlying check was served by the result store.
    cached: bool = False
    #: True when at least one underlying verdict was *implied* by the store's
    #: bounds index (monotonicity) rather than stored verbatim — the job was
    #: pruned before any worker dispatch.
    implied: bool = False
    #: True when the job was skipped because the journal already had it.
    resumed: bool = False
    #: Exact-width bounds, for ``width`` jobs.
    lower: int | None = None
    upper: int | None = None
    #: Live objects when the job actually ran this session (not journalled).
    outcome: CheckOutcome | None = None
    width_result: WidthResult | None = None
    #: Winning algorithm, for ``portfolio`` jobs.
    winner: str | None = None
    #: Kernel-counter delta accrued executing this job (worker- or in-process
    #: side), and the worker-side span records grafted into the parent trace.
    counters: dict | None = None
    spans: list | None = None

    def payload(self) -> dict:
        """The JSON-serialisable record written to the journal."""
        record = {
            "name": self.spec.name,
            "verdict": self.verdict,
            "seconds": round(self.seconds, 6),
            "cached": self.cached,
            "implied": self.implied,
            "lower": self.lower,
            "upper": self.upper,
            "winner": self.winner,
        }
        if self.counters:
            record["counters"] = self.counters
        return record

    @classmethod
    def from_journal(cls, spec: JobSpec, payload: dict) -> "JobResult":
        return cls(
            spec=spec,
            verdict=str(payload.get("verdict", "")),
            seconds=float(payload.get("seconds", 0.0)),
            cached=bool(payload.get("cached", False)),
            implied=bool(payload.get("implied", False)),
            resumed=True,
            lower=payload.get("lower"),
            upper=payload.get("upper"),
            winner=payload.get("winner"),
            counters=payload.get("counters"),
        )


class Journal:
    """An append-only JSONL record of finished jobs.

    :meth:`load` tolerates a truncated final line (the typical artefact of a
    killed sweep) and interior corruption: invalid lines are dropped and the
    file is compacted to the valid prefix, so subsequent appends produce a
    well-formed journal again.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def load(self) -> dict[tuple, dict]:
        """Read finished-job records as ``{job key: payload}``."""
        if not self.path.exists():
            return {}
        records: dict[tuple, dict] = {}
        valid_lines: list[str] = []
        dirty = False
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                dirty = True
                continue
            try:
                record = json.loads(line)
                key = tuple(record["key"])
                payload = record["result"]
            except (json.JSONDecodeError, KeyError, TypeError):
                dirty = True
                continue
            records[key] = payload
            valid_lines.append(line)
        if dirty:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(
                "".join(f"{line}\n" for line in valid_lines), encoding="utf-8"
            )
            tmp.replace(self.path)
        return records

    def append(self, spec: JobSpec, result: JobResult) -> None:
        """Write one finished job; flushed immediately so kills lose ≤ 1 line."""
        record = {"key": list(spec.key()), "result": result.payload()}
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
