"""``repro.engine`` — parallel, cache-backed execution of decomposition work.

The engine turns decomposition requests into deployable units of work: a
:class:`~repro.engine.jobs.JobSpec` names *what* to compute (a ``Check(H, k)``
attempt, an exact-width sweep, or a portfolio race), the
:class:`~repro.engine.engine.DecompositionEngine` decides *how* — consulting a
content-addressed :class:`~repro.engine.store.ResultStore` first and only then
dispatching to worker processes with hard, preemptive timeouts
(:mod:`repro.engine.workers`).  Batch runs journal every finished job so an
interrupted sweep resumes where it stopped.

Layering::

    cli / analysis / benchmark
            |
    DecompositionEngine  ---consults--->  ResultStore (SQLite)
            |                                  ^ keyed by fingerprint()
    workers (process pool, hard timeouts)      |
            |                                  |
    decomp.driver.timed_check  --outcomes------+

Sequential in-process execution (``jobs=1``, no store) remains the default
everywhere, so existing callers and tests keep their deterministic behaviour.
"""

from repro.engine.engine import BatchReport, DecompositionEngine, EngineStats
from repro.engine.fingerprint import canonical_form, fingerprint, structural_fingerprint
from repro.engine.jobs import JobResult, JobSpec, Journal
from repro.engine.methods import CHECK_METHODS, MethodSpec
from repro.engine.queue import JobLease, JobQueue
from repro.engine.remote import Dispatcher, QueueWorker
from repro.engine.shards import ShardedResultStore, open_result_store
from repro.engine.store import (
    MONOTONE_METHODS,
    WIDTH_RELATIONS,
    ResultStore,
    StoredResult,
    WidthRelation,
)
from repro.engine.workers import (
    CallFailure,
    map_callables,
    map_checks,
    race_checks,
    register_method,
    resolve_method,
    run_callables,
    run_checked,
)

__all__ = [
    "DecompositionEngine",
    "EngineStats",
    "BatchReport",
    "ResultStore",
    "ShardedResultStore",
    "open_result_store",
    "StoredResult",
    "JobQueue",
    "JobLease",
    "QueueWorker",
    "Dispatcher",
    "MONOTONE_METHODS",
    "WIDTH_RELATIONS",
    "WidthRelation",
    "MethodSpec",
    "JobSpec",
    "JobResult",
    "Journal",
    "fingerprint",
    "structural_fingerprint",
    "canonical_form",
    "CHECK_METHODS",
    "register_method",
    "resolve_method",
    "run_checked",
    "race_checks",
    "map_checks",
    "map_callables",
    "CallFailure",
    "run_callables",
]
