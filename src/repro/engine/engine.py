"""The :class:`DecompositionEngine` facade.

The engine is the single entry point that turns decomposition requests into
work: it consults the :class:`~repro.engine.store.ResultStore` first (by
content fingerprint, so renamed copies of an instance share results), and
only on a miss dispatches the attempt — in-process with cooperative deadlines
when ``jobs == 1`` (the deterministic default, byte-compatible with the
pre-engine code paths), or in killable worker processes with hard timeouts
when ``jobs > 1``.

``portfolio`` races GlobalBIP / LocalBIP / BalSep in parallel worker
processes (the paper's Table 4 setup: "run in parallel, stop at the first
answer"), cancelling the losers; ``run_batch`` executes a list of
:class:`~repro.engine.jobs.JobSpec` with a resumable journal, fanning
cache-missed check jobs across the worker pool.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.decomp import driver
from repro.decomp.driver import CheckOutcome, WidthResult, timed_check
from repro.engine import methods as _methods
from repro.engine import workers
from repro.engine.fingerprint import fingerprint
from repro.engine.jobs import CHECK, PORTFOLIO, WIDTH, JobResult, JobSpec, Journal
from repro.engine.methods import PORTFOLIO_KEY as _PORTFOLIO_KEY
from repro.engine.store import ResultStore
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.perf import counters as _kernel_counters, publish_delta

__all__ = ["DecompositionEngine", "EngineStats", "BatchReport"]

# Process-wide engine metric families (every engine instance publishes into
# the same registry; per-instance numbers stay on EngineStats.snapshot()).
_M_REQUESTS = REGISTRY.counter(
    "repro_engine_requests_total",
    "Decomposition requests routed through an engine (cache hits included).",
)
_M_CACHE_HITS = REGISTRY.counter(
    "repro_engine_cache_hits_total",
    "Engine requests answered by the result store.",
)
_M_IMPLIED = REGISTRY.counter(
    "repro_engine_implied_total",
    "Cache hits answered by the bounds index rather than an exact row.",
)
_M_EXECUTED = REGISTRY.counter(
    "repro_engine_executed_total",
    "Engine requests that dispatched actual check work.",
)


@dataclass
class EngineStats:
    """Per-engine request accounting (the store keeps its own lifetime stats).

    ``implied`` counts the subset of ``cache_hits`` answered by the store's
    bounds index (monotonicity) rather than an exactly matching row.

    Counters are mutated through :meth:`book`, which serialises on an
    internal mutex: the service layer reads and writes these from its event
    loop while batch waves execute on worker threads, and the coalescing
    tests assert *exact* dispatch counts.

    >>> stats = EngineStats()
    >>> stats.book(requests=2, cache_hits=1)
    >>> stats.hit_rate
    0.5
    >>> stats.snapshot()["requests"]
    2
    """

    requests: int = 0
    cache_hits: int = 0
    implied: int = 0
    executed: int = 0
    _mutex: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def book(
        self,
        requests: int = 0,
        cache_hits: int = 0,
        implied: int = 0,
        executed: int = 0,
    ) -> None:
        """Atomically add to the counters (safe across threads)."""
        with self._mutex:
            self.requests += requests
            self.cache_hits += cache_hits
            self.implied += implied
            self.executed += executed
        _M_REQUESTS.inc(requests)
        _M_CACHE_HITS.inc(cache_hits)
        _M_IMPLIED.inc(implied)
        _M_EXECUTED.inc(executed)

    def snapshot(self) -> dict:
        """A JSON-able copy of the counters (the service ``/stats`` payload)."""
        with self._mutex:
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "implied": self.implied,
                "executed": self.executed,
                "hit_rate": self.hit_rate,
            }

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0


@dataclass
class BatchReport:
    """Job-level accounting for one :meth:`DecompositionEngine.run_batch`."""

    total: int = 0
    #: Jobs skipped because the journal already recorded them.
    resumed: int = 0
    #: Jobs answered entirely from the result store.
    cache_hits: int = 0
    #: The subset of ``cache_hits`` pruned via the store's bounds index
    #: (at least one underlying verdict was implied, not stored verbatim).
    pruned: int = 0
    #: Jobs that actually ran at least one check.
    executed: int = 0
    results: list[JobResult] = field(default_factory=list)

    @property
    def all_cached(self) -> bool:
        """True when every non-resumed job was served from the store."""
        return self.total > 0 and self.cache_hits == self.total - self.resumed


class _CacheMiss(Exception):
    """Internal: a cache-only replay hit a key the store does not have."""


def _locked(fn):
    """Serialise a dispatch entry point on the engine's reentrant lock.

    The service layer submits batches from executor threads while other
    threads call ``check``/``portfolio`` directly; the RLock makes those
    submissions safe *and* reentrant (``run_batch`` jobs re-enter
    ``portfolio``/``exact_width``/``check`` on the same thread).
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return fn(self, *args, **kwargs)

    return wrapper


class DecompositionEngine:
    """Cache-backed, optionally parallel execution of decomposition work.

    The engine is the single entry point for decomposition work: every
    request consults the store first, and a definite verdict stored at one
    ``k`` answers implied keys at other widths for free:

    >>> from repro.core.hypergraph import Hypergraph
    >>> from repro.engine import DecompositionEngine, ResultStore
    >>> triangle = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
    >>> with DecompositionEngine(store=ResultStore()) as engine:
    ...     first = engine.check(triangle, 2).verdict
    ...     second = engine.check(triangle, 3).verdict   # implied: yes at 2
    ...     (first, second, engine.stats.executed)
    ('yes', 'yes', 1)

    Parameters
    ----------
    store:
        A :class:`ResultStore`, or ``None`` to run without caching.
    jobs:
        Maximum concurrent worker processes.  ``1`` (default) keeps every
        check in-process with cooperative deadlines — the sequential
        fallback that preserves the library's historical behaviour;
        ``> 1`` enables hard-timeout worker processes, the parallel
        portfolio race, and batch fan-out.
    grace:
        Seconds past the cooperative budget before a worker is killed.
    packed:
        Ship hypergraphs to workers as :class:`~repro.core.bitset.\
PackedHypergraph` wire views and receive decompositions as mask lists
        (the default).  ``False`` selects the legacy pickle path — kept for
        the dispatch-overhead microbenchmark in :mod:`repro.perf.harness`.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        grace: float = workers.DEFAULT_GRACE,
        packed: bool = True,
    ):
        self.store = store
        self.jobs = max(1, int(jobs))
        self.grace = grace
        self.packed = packed
        self.stats = EngineStats()
        # Dispatch entry points serialise here (see _locked); the store has
        # its own lock, so cache peeks never wait behind a running wave.
        self._lock = threading.RLock()

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def close(self) -> None:
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "DecompositionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # --------------------------------------------------------------- caching

    def _lookup(
        self,
        fp: str,
        hypergraph: Hypergraph,
        method: str,
        k: int,
        timeout: float | None,
        record: bool = True,
    ) -> tuple[CheckOutcome | None, dict | None, bool]:
        """Consult the store; returns ``(outcome, extra, implied)``.

        ``implied`` is true when the bounds index (not an exact row) answered.
        ``record=False`` peeks without touching the engine's request/hit
        counters — batch replay uses this and books its lookups only once
        it knows whether the whole job was served from cache.
        """
        if record:
            self.stats.book(requests=1)
        if self.store is None:
            return None, None, False
        stored = self.store.get(fp, method, k, timeout, record=record)
        if stored is None:
            return None, None, False
        if record:
            self.stats.book(cache_hits=1, implied=int(stored.implied))
        return stored.outcome(hypergraph), stored.extra, stored.implied

    def _remember(
        self,
        fp: str,
        method: str,
        k: int,
        timeout: float | None,
        outcome: CheckOutcome,
        extra: dict | None = None,
    ) -> None:
        if self.store is not None:
            self.store.put(fp, method, k, timeout, outcome, extra)

    # ---------------------------------------------------------------- checks

    @_locked
    def check(
        self,
        hypergraph: Hypergraph,
        k: int,
        method: str = "hd",
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> CheckOutcome:
        """One ``Check(H, k)`` attempt: cache first (exact rows, then verdicts
        implied by stored bounds), dispatch only when neither answers.

        ``trace`` parents the ``engine.check`` span (default: the ambient
        context; the service passes the submitting request's context).
        """
        with TRACER.span("engine.check", parent=trace, method=method, k=k) as span:
            fp = fingerprint(hypergraph)
            outcome, _, _ = self._lookup(fp, hypergraph, method, k, timeout)
            if outcome is not None:
                span.set(source="cache", verdict=outcome.verdict)
                return outcome
            outcome = self._execute(method, hypergraph, k, timeout)
            self._remember(fp, method, k, timeout, outcome)
            span.set(source="executed", verdict=outcome.verdict)
            return outcome

    def _execute(
        self,
        method: str,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None,
    ) -> CheckOutcome:
        """Dispatch one cache-missed check (worker process or in-process).

        Both shapes produce a ``worker.exec`` span parented on the ambient
        context and a kernel-counter delta on the outcome: the worker path
        ships them back over the pipe, the in-process path measures them
        here (``mode="inproc"``).
        """
        self.stats.book(executed=1)
        if self.parallel:
            return workers.run_checked(
                method, hypergraph, k, timeout, self.grace, self.packed
            )
        before = _kernel_counters.snapshot()
        with TRACER.span("worker.exec", method=method, k=k, mode="inproc") as span:
            outcome = timed_check(workers.resolve_method(method), hypergraph, k, timeout)
            delta = _kernel_counters.delta_since(before)
            publish_delta(delta)
            outcome.counters = delta or None
            span.set(
                verdict=outcome.verdict,
                **{f"kernel_{name}": value for name, value in delta.items()},
            )
        return outcome

    # ----------------------------------------------------------- exact width

    @_locked
    def exact_width(
        self,
        hypergraph: Hypergraph,
        max_k: int,
        method: str = "hd",
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> WidthResult:
        """The Figure 4 protocol, every k-attempt routed through the engine.

        When the store's bounds index already brackets the width inside
        ``[lo, hi]`` with ``hi <= max_k``, the width is located by *binary
        search* inside that interval instead of the linear k-scan — a warm
        sweep touches O(log(hi − lo)) keys, all usually answered from the
        store.  Without a known upper bound the linear protocol runs, but
        every ``k < lo`` is still answered instantly by an implied "no".
        A timeout mid-bisection (or stale bounds after eviction) falls back
        to the linear protocol, whose loose-bounds semantics match the
        sequential driver exactly.
        """
        with TRACER.span("engine.width", parent=trace, method=method, max_k=max_k):
            if self.store is not None:
                fp = fingerprint(hypergraph)
                # Effective bounds fold in the cross-method kind interval: an
                # hw sweep can bisect inside an interval another method
                # established.
                lo, hi = self.store.effective_bounds(fp, method)
                if hi is not None and hi <= max_k:
                    result = self._bisect_width(
                        hypergraph, max(1, lo), hi, method, timeout
                    )
                    if result is not None:
                        return result

            def runner(_check, h, k, t):
                return self.check(h, k, method=method, timeout=t)

            return driver.exact_width(
                workers.resolve_method(method), hypergraph, max_k, timeout, runner=runner
            )

    def _bisect_width(
        self,
        hypergraph: Hypergraph,
        low: int,
        high: int,
        method: str,
        timeout: float | None,
    ) -> WidthResult | None:
        """Find the smallest yes-k in ``[low, high]``, or ``None`` to fall back.

        Preconditions from the bounds index: ``high`` is a known yes and
        every ``k < low`` a definite no, so the loop invariant (``low - 1``
        refuted, ``high`` accepted) makes the answer exact.  Any timeout or
        contradiction (bounds no longer backed by rows) aborts the bisection.
        """
        timings: dict[int, CheckOutcome] = {}
        best: CheckOutcome | None = None
        while low < high:
            mid = (low + high) // 2
            outcome = self.check(hypergraph, mid, method=method, timeout=timeout)
            timings[mid] = outcome
            if outcome.verdict == driver.YES:
                high = mid
                best = outcome
            elif outcome.verdict == driver.NO:
                low = mid + 1
            else:
                return None
        if best is None:
            best = self.check(hypergraph, high, method=method, timeout=timeout)
            timings[high] = best
            if best.verdict != driver.YES:
                return None
        return WidthResult(high, high, best.decomposition, timings)

    # ------------------------------------------------------------- portfolio

    @_locked
    def portfolio(
        self,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> tuple[CheckOutcome, dict[str, CheckOutcome]]:
        """The Table 4 race: GlobalBIP ∥ LocalBIP ∥ BalSep, first answer wins.

        With ``jobs > 1`` the three algorithms genuinely run in parallel
        worker processes and the losers are cancelled; otherwise the
        sequential simulation of :func:`repro.decomp.driver.ghd_portfolio`
        runs.  Either way the result is cached under a dedicated
        ``portfolio`` key (per-algorithm verdicts and timings ride along in
        the row's metadata, so Table 3 style accounting survives cache hits).
        """
        with TRACER.span("engine.portfolio", parent=trace, k=k) as span:
            best, per_algorithm = self._portfolio_locked(hypergraph, k, timeout)
            span.set(verdict=best.verdict)
            return best, per_algorithm

    def _portfolio_locked(
        self,
        hypergraph: Hypergraph,
        k: int,
        timeout: float | None,
    ) -> tuple[CheckOutcome, dict[str, CheckOutcome]]:
        fp = fingerprint(hypergraph)
        outcome, extra, implied = self._lookup(fp, hypergraph, _PORTFOLIO_KEY, k, timeout)
        if outcome is not None:
            if implied:
                # A bounds-implied verdict has no per-algorithm race behind
                # it; the witnessing race ran at a different k, so its
                # timings must not masquerade as this k's (Table 3 honesty).
                return outcome, {}
            per_algorithm = {
                name: CheckOutcome(row[0], row[1], cancelled=bool(row[2]) if len(row) > 2 else False)
                for name, row in (extra or {}).get("per", {}).items()
            }
            winner = (extra or {}).get("winner")
            if winner in per_algorithm and outcome.decomposition is not None:
                per_algorithm[winner] = outcome
            return outcome, per_algorithm

        portfolio_methods = _methods.portfolio_methods()
        self.stats.book(executed=1)
        if self.parallel:
            winner_method, raced = workers.race_checks(
                list(portfolio_methods.values()), hypergraph, k, timeout,
                self.grace, self.packed,
            )
            per_algorithm = {
                display: raced[registry]
                for display, registry in portfolio_methods.items()
            }
            if winner_method is not None:
                winner = next(
                    d for d, r in portfolio_methods.items() if r == winner_method
                )
                best = per_algorithm[winner]
            else:
                winner = None
                best = max(per_algorithm.values(), key=lambda o: o.seconds)
        else:
            best, per_algorithm = driver.ghd_portfolio(hypergraph, k, timeout)
            winner = (
                next((n for n, o in per_algorithm.items() if o is best), None)
                if best.answered
                else None
            )

        extra = {
            "winner": winner,
            "per": {
                name: [o.verdict, o.seconds, o.cancelled]
                for name, o in per_algorithm.items()
            },
        }
        self._remember(fp, _PORTFOLIO_KEY, k, timeout, best, extra)
        # Definite per-algorithm answers are genuine results; share them with
        # plain check() callers.  Cancelled losers (timeout verdicts observed
        # before the full budget) are *not* cached.
        for display, registry in portfolio_methods.items():
            o = per_algorithm[display]
            if o.answered:
                self._remember(fp, registry, k, timeout, o)
        return best, per_algorithm

    # ----------------------------------------------------------------- batch

    @_locked
    def run_batch(
        self,
        specs: list[JobSpec],
        journal: str | Path | Journal | None = None,
    ) -> BatchReport:
        """Execute a job list with journal resume and cache consultation.

        Jobs already present in the journal are skipped (``resumed``); the
        rest are answered from the store when possible (``cache_hits``) —
        including jobs *pruned* because a stored bound already implies their
        verdict (``pruned``) — and executed otherwise.  Cache-missed
        single-check jobs fan out across the worker pool when ``jobs > 1``.
        """
        if journal is not None and not isinstance(journal, Journal):
            journal = Journal(journal)
        done = journal.load() if journal is not None else {}

        # The wave span parents on the first spec that carries a request
        # trace context — run_batch typically executes on an executor thread
        # where the submitting request's ambient context is unavailable.
        wave_parent = next((s.trace for s in specs if s.trace is not None), None)
        with TRACER.span("engine.wave", parent=wave_parent, jobs=len(specs)) as wave:
            report = BatchReport(total=len(specs))
            results: list[JobResult | None] = [None] * len(specs)
            pending: list[int] = []
            for index, spec in enumerate(specs):
                payload = done.get(spec.key())
                if payload is not None:
                    results[index] = JobResult.from_journal(spec, payload)
                    report.resumed += 1
                else:
                    pending.append(index)

            # Serve whole jobs from the store where possible — either from
            # exact rows or pruned because stored bounds imply the verdict.
            to_run: list[int] = []
            for index in pending:
                result = self._replay_from_cache(specs[index])
                if result is not None:
                    results[index] = result
                    report.cache_hits += 1
                    if result.implied:
                        report.pruned += 1
                    if journal is not None:
                        journal.append(specs[index], result)
                else:
                    to_run.append(index)

            # Fan cache-missed single checks across the pool; width sweeps and
            # portfolio races go through their own engine paths (a portfolio
            # race already uses the pool internally).
            check_indices = [i for i in to_run if specs[i].kind == CHECK]
            if self.parallel and len(check_indices) > 1:
                tasks = [
                    (specs[i].method, specs[i].hypergraph, specs[i].k, specs[i].timeout)
                    for i in check_indices
                ]
                traces = [specs[i].trace or wave.context for i in check_indices]
                outcomes = workers.map_checks(
                    tasks, self.jobs, self.grace, self.packed, traces=traces
                )
                if self.store is not None:
                    # the replay peeks that routed these here were decisive
                    # misses
                    self.store.record_misses(len(check_indices))
                for i, outcome in zip(check_indices, outcomes):
                    spec = specs[i]
                    self.stats.book(requests=1, executed=1)
                    self._remember(
                        spec.fingerprint, spec.method, spec.k, spec.timeout, outcome
                    )
                    results[i] = JobResult(
                        spec,
                        outcome.verdict,
                        outcome.seconds,
                        outcome=outcome,
                        counters=outcome.counters,
                        spans=outcome.spans,
                    )
                to_run = [i for i in to_run if specs[i].kind != CHECK]

            for index in to_run:
                results[index] = self._run_spec(specs[index])

            if journal is not None:
                for index in pending:
                    result = results[index]
                    if result is not None and not result.cached and not result.resumed:
                        journal.append(specs[index], result)

            report.executed = sum(
                1 for r in results if r is not None and not r.cached and not r.resumed
            )
            report.results = [r for r in results if r is not None]
            wave.set(
                resumed=report.resumed,
                cache_hits=report.cache_hits,
                executed=report.executed,
            )
            return report

    # ------------------------------------------------------------ batch bits

    def try_replay(self, spec: JobSpec) -> JobResult | None:
        """Answer a whole job from the store without dispatching anything.

        The public peek the service scheduler uses before queueing a job
        into a batch wave: exact rows answer first, then verdicts implied by
        the per-method bounds index, then the cross-method ``kind_bounds``
        knowledge (an hw "yes" answering a ghw check, and vice versa for
        "no"s).  Returns ``None`` on any miss — *without* booking the miss;
        the eventual dispatch books it.  Deliberately **not** behind the
        dispatch lock: the store has its own lock, so a peek never waits
        behind a running batch wave.
        """
        return self._replay_from_cache(spec)

    def stats_snapshot(self) -> dict:
        """Engine + store counters as one JSON-able dict (``/stats`` payload)."""
        payload: dict = {"engine": self.stats.snapshot(), "jobs": self.jobs}
        if self.store is not None:
            stats = self.store.stats
            payload["store"] = {
                "path": self.store.path,
                "entries": stats.entries,
                "hits": stats.hits,
                "misses": stats.misses,
                "implied": stats.implied,
                "hit_rate": stats.hit_rate,
                "session_hits": stats.session_hits,
                "session_misses": stats.session_misses,
                "session_implied": stats.session_implied,
            }
        return payload

    def _replay_from_cache(self, spec: JobSpec) -> JobResult | None:
        """Answer a whole job from the store, or ``None`` on any miss.

        Lookups peek without recording; the engine books one request + hit
        per underlying check only when the whole job replays, so partially
        cached jobs are not double-counted when they subsequently execute.
        """
        if self.store is None:
            return None
        fp = spec.fingerprint
        if spec.kind == CHECK:
            outcome, _, implied = self._lookup(
                fp, spec.hypergraph, spec.method, spec.k, spec.timeout, record=False
            )
            if outcome is None:
                return None
            self._book_replay(1, int(implied))
            return JobResult(
                spec,
                outcome.verdict,
                outcome.seconds,
                cached=True,
                outcome=outcome,
                implied=implied,
            )
        if spec.kind == PORTFOLIO:
            outcome, extra, implied = self._lookup(
                fp, spec.hypergraph, _PORTFOLIO_KEY, spec.k, spec.timeout, record=False
            )
            if outcome is None:
                return None
            self._book_replay(1, int(implied))
            return JobResult(
                spec,
                outcome.verdict,
                outcome.seconds,
                cached=True,
                outcome=outcome,
                winner=None if implied else (extra or {}).get("winner"),
                implied=implied,
            )
        # WIDTH: replay the exact_width iteration against the store only.
        lookups = 0
        implied_lookups = 0

        def cache_only_runner(_check, h, k, t):
            nonlocal lookups, implied_lookups
            outcome, _, implied = self._lookup(fp, h, spec.method, k, t, record=False)
            if outcome is None:
                raise _CacheMiss
            lookups += 1
            implied_lookups += int(implied)
            return outcome

        try:
            width_result = driver.exact_width(
                workers.resolve_method(spec.method),
                spec.hypergraph,
                spec.max_k,
                spec.timeout,
                runner=cache_only_runner,
            )
        except _CacheMiss:
            return None
        self._book_replay(lookups, implied_lookups)
        return self._width_job_result(
            spec, width_result, cached=True, implied=implied_lookups > 0
        )

    def _book_replay(self, lookups: int, implied: int = 0) -> None:
        self.stats.book(requests=lookups, cache_hits=lookups, implied=implied)
        if self.store is not None:
            self.store.record_hits(lookups, implied)

    def _width_job_result(
        self, spec: JobSpec, width_result: WidthResult, cached: bool, implied: bool = False
    ) -> JobResult:
        seconds = sum(o.seconds for o in width_result.timings.values())
        verdict = "exact" if width_result.exact else "bounds"
        return JobResult(
            spec,
            verdict,
            seconds,
            cached=cached,
            lower=width_result.lower,
            upper=width_result.upper,
            width_result=width_result,
            implied=implied,
        )

    def _run_spec(self, spec: JobSpec) -> JobResult:
        # Only reached after _replay_from_cache missed (a non-recording peek),
        # so check jobs execute directly; the peek was the decisive lookup
        # and is booked as the one miss.  The spec's trace context (if the
        # submitting request carried one) becomes ambient, so the engine /
        # worker spans below land in that request's trace instead of the
        # wave's.
        with TRACER.attach(spec.trace):
            if spec.kind == CHECK:
                self.stats.book(requests=1)
                if self.store is not None:
                    self.store.record_misses(1)
                outcome = self._execute(
                    spec.method, spec.hypergraph, spec.k, spec.timeout
                )
                self._remember(
                    spec.fingerprint, spec.method, spec.k, spec.timeout, outcome
                )
                return JobResult(
                    spec,
                    outcome.verdict,
                    outcome.seconds,
                    outcome=outcome,
                    counters=outcome.counters,
                    spans=outcome.spans,
                )
            if spec.kind == PORTFOLIO:
                outcome, per_algorithm = self.portfolio(
                    spec.hypergraph, spec.k, spec.timeout
                )
                winner = next(
                    (name for name, o in per_algorithm.items() if o is outcome), None
                )
                return JobResult(
                    spec,
                    outcome.verdict,
                    outcome.seconds,
                    outcome=outcome,
                    winner=winner,
                    counters=outcome.counters,
                    spans=outcome.spans,
                )
            width_result = self.exact_width(
                spec.hypergraph, spec.max_k, spec.method, spec.timeout
            )
            return self._width_job_result(spec, width_result, cached=False)
