"""The declarative method registry: one :class:`MethodSpec` per algorithm.

Before this module, the engine stack kept three parallel, hand-maintained
method tables — ``workers.CHECK_METHODS`` (name → check function),
``engine.PORTFOLIO_METHODS`` (display name → registry name for the Table 4
race) and ``store.MONOTONE_METHODS`` (names whose verdicts feed the bounds
index) — plus ``driver.GHD_ALGORITHMS`` on the sequential side.  A method
that appeared in one table but not another silently lost behaviour (no
caching, no race eligibility, no bound propagation).

A :class:`MethodSpec` declares everything about one method in one place:

``name`` / ``display``
    The registry key (what the CLI, store rows and journal lines use) and
    the human-facing label (Tables 3/4 use the display names).
``kind``
    The *width kind* the method reports: ``hw``, ``ghw`` or ``fhw``
    (``None`` for ad-hoc methods registered at runtime).
``check``
    The ``Check(H, k)`` function (operating on hypergraphs whose dense
    :class:`~repro.core.bitset.HypergraphView` is cached per instance).
    ``None`` for virtual methods such as ``portfolio``, which is a cache
    key for race results, not a dispatchable algorithm.
``portfolio``
    Eligible for the Table 4 race (GlobalBIP / LocalBIP / BalSep).
``monotone``
    ``Check(H, k)`` is monotone in ``k``, so definite verdicts feed the
    store's bounds index.  Runtime-registered methods default to ``False``:
    the store cannot know whether a custom search space is nested.
``decision_kind``
    The width kind whose ``width ≤ k`` question the method's verdict
    answers — this drives **cross-method bound propagation**.  It can
    differ from ``kind``: ``fracimprove`` *reports* fractional widths but
    its yes/no verdict is exactly ``hw ≤ k`` (it improves an HD that must
    exist first), so its verdicts are evidence about ``hw``.
``witness_kind``
    The :class:`~repro.core.decomposition.Decomposition` kind its yes rows
    carry (``HD`` / ``GHD`` / ``FHD``).  Cross-method implied answers only
    borrow a witness decomposition from methods with the same
    ``decision_kind`` *and* ``witness_kind`` — a GHD found by BalSep is a
    valid witness for a LocalBIP "yes", but an FHD is not an HD.
``witness_required``
    The method's deliverable is the decomposition itself, not just the
    verdict (``fracimprove``: the Table 6 value is the FHD's width).  A
    cross-method implied "yes" would have no such witness, so it is
    suppressed and the method executes instead; implied "no" answers are
    still used.

The default registrations happen lazily on first registry access, so this
module has **no import-time dependency** on :mod:`repro.decomp` and can be
imported from anywhere in the stack (the store, the workers, the sequential
driver) without cycles.

The registry is the single source of truth every live view derives from:

>>> from repro.engine import methods
>>> methods.get("hd").display
'DetKDecomp'
>>> sorted(methods.portfolio_methods())         # the Table 4 race lineup
['BalSep', 'GlobalBIP', 'LocalBIP']
>>> methods.decision_kind_of("fracimprove")     # its verdicts decide hw <= k
'hw'
>>> "portfolio" in methods.CHECK_METHODS        # virtual keys don't dispatch
False
>>> methods.get("fracimprove").witness_required  # its FHD *is* the deliverable
True
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, replace

from repro.errors import ReproError

__all__ = [
    "HW",
    "GHW",
    "FHW",
    "WIDTH_KINDS",
    "PORTFOLIO_KEY",
    "MethodSpec",
    "CHECK_METHODS",
    "register",
    "register_check",
    "get",
    "get_optional",
    "resolve",
    "specs",
    "method_names",
    "portfolio_methods",
    "monotone_names",
    "decision_kind_of",
]

#: The three width kinds of the paper: hypertree width, generalized
#: hypertree width, fractional hypertree width (fhw ≤ ghw ≤ hw ≤ 3·ghw + 1).
HW = "hw"
GHW = "ghw"
FHW = "fhw"
WIDTH_KINDS = (HW, GHW, FHW)

#: The store/journal key for Table 4 race results (a virtual method).
PORTFOLIO_KEY = "portfolio"


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of one check method (see module docstring)."""

    name: str
    display: str
    kind: str | None
    check: Callable | None
    portfolio: bool = False
    monotone: bool = False
    decision_kind: str | None = None
    witness_kind: str | None = None
    witness_required: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("method specs need a non-empty name")
        for field_name in ("kind", "decision_kind"):
            value = getattr(self, field_name)
            if value is not None and value not in WIDTH_KINDS:
                raise ReproError(
                    f"method {self.name!r}: unknown {field_name} {value!r}; "
                    f"known width kinds: {WIDTH_KINDS}"
                )

    @property
    def dispatchable(self) -> bool:
        """Whether the method can actually run (virtual keys cannot)."""
        return self.check is not None


_REGISTRY: dict[str, MethodSpec] = {}
_defaults_loaded = False


def _ensure_defaults() -> None:
    """Register the paper's six methods (+ the portfolio key) on first use.

    Imports from :mod:`repro.decomp` happen here — at call time, never at
    import time — so the registry can be consumed from modules the decomp
    package itself imports.  The flag is set before registering: the decomp
    modules never touch the registry at import time, so re-entrancy cannot
    observe a half-filled table.
    """
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True

    from repro.decomp.balsep import check_ghd_balsep
    from repro.decomp.detkdecomp import check_hd
    from repro.decomp.fractional import check_frac_best
    from repro.decomp.globalbip import check_ghd_global_bip
    from repro.decomp.hybrid import check_ghd_hybrid
    from repro.decomp.localbip import check_ghd_local_bip

    defaults = (
        MethodSpec(
            "hd", "DetKDecomp", HW, check_hd,
            monotone=True, decision_kind=HW, witness_kind="HD",
        ),
        # Table 3/4 order: GlobalBIP, LocalBIP, BalSep.
        MethodSpec(
            "globalbip", "GlobalBIP", GHW, check_ghd_global_bip,
            portfolio=True, monotone=True, decision_kind=GHW, witness_kind="GHD",
        ),
        MethodSpec(
            "localbip", "LocalBIP", GHW, check_ghd_local_bip,
            portfolio=True, monotone=True, decision_kind=GHW, witness_kind="GHD",
        ),
        MethodSpec(
            "balsep", "BalSep", GHW, check_ghd_balsep,
            portfolio=True, monotone=True, decision_kind=GHW, witness_kind="GHD",
        ),
        MethodSpec(
            "hybrid", "Hybrid", GHW, check_ghd_hybrid,
            monotone=True, decision_kind=GHW, witness_kind="GHD",
        ),
        # FracImproveHD reports fractional widths but decides ``hw ≤ k``
        # (it improves an HD that must exist first): its verdicts propagate
        # as hw evidence, while its FHD witnesses stay method-private.
        MethodSpec(
            "fracimprove", "FracImproveHD", FHW, check_frac_best,
            monotone=True, decision_kind=HW, witness_kind="FHD",
            witness_required=True,
        ),
        # Virtual: the cache key under which Table 4 race results are stored.
        MethodSpec(
            PORTFOLIO_KEY, "Portfolio", GHW, None,
            monotone=True, decision_kind=GHW, witness_kind="GHD",
        ),
    )
    for spec in defaults:
        _REGISTRY[spec.name] = spec


def register(spec: MethodSpec) -> MethodSpec:
    """Register (or replace) one method spec and return it."""
    _ensure_defaults()
    _REGISTRY[spec.name] = spec
    return spec


def register_check(name: str, check: Callable) -> MethodSpec:
    """Register a bare check function as an ad-hoc method.

    The historical ``workers.register_method`` surface: experiments and
    tests inject custom callables this way.  A *fresh* name claims no width
    kind, so it never feeds or consumes the bounds index; overriding an
    existing name swaps only the check function and keeps the spec's
    metadata (kind, monotonicity, race eligibility) — the historical
    behaviour, where replacing ``CHECK_METHODS["balsep"]`` changed the
    dispatch target without silently dropping BalSep from the portfolio or
    the bounds index.
    """
    existing = get_optional(name)
    if existing is not None:
        return register(replace(existing, check=check))
    return register(MethodSpec(name=name, display=name, kind=None, check=check))


def get(name: str) -> MethodSpec:
    """The spec registered under ``name``; raises :class:`ReproError`."""
    _ensure_defaults()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown check method {name!r}; known: {method_names()}"
        ) from None


def get_optional(name: str) -> MethodSpec | None:
    """The spec registered under ``name``, or ``None``."""
    _ensure_defaults()
    return _REGISTRY.get(name)


def resolve(method: str | Callable) -> Callable:
    """Map a registry name to its check function (callables pass through)."""
    if callable(method):
        return method
    spec = get(method)
    if spec.check is None:
        raise ReproError(
            f"method {method!r} is a virtual cache key, not a dispatchable "
            "algorithm"
        )
    return spec.check


def specs() -> tuple[MethodSpec, ...]:
    """All registered specs, in registration order."""
    _ensure_defaults()
    return tuple(_REGISTRY.values())


def method_names() -> list[str]:
    """Sorted names of the dispatchable methods (what the CLI lists)."""
    return sorted(spec.name for spec in specs() if spec.dispatchable)


def portfolio_methods() -> dict[str, str]:
    """``display name → registry name`` of the raced methods (Table order)."""
    return {s.display: s.name for s in specs() if s.portfolio and s.dispatchable}


def monotone_names() -> frozenset[str]:
    """Names of the methods whose verdicts feed the bounds index."""
    return frozenset(s.name for s in specs() if s.monotone)


def decision_kind_of(name: str) -> str | None:
    """The width kind method ``name`` decides, or ``None`` when unknown."""
    spec = get_optional(name)
    return spec.decision_kind if spec is not None else None


class _CheckMethodsView(Mapping):
    """Live ``name → check function`` view of the dispatchable methods.

    Backward-compatible stand-in for the old ``CHECK_METHODS`` dict: the
    CLI's ``--algorithm`` choices and existing imports keep working, while
    the registry stays the single source of truth.
    """

    def __getitem__(self, name: str) -> Callable:
        spec = get_optional(name)
        if spec is None or spec.check is None:
            raise KeyError(name)
        return spec.check

    def __iter__(self) -> Iterator[str]:
        return iter(s.name for s in specs() if s.dispatchable)

    def __len__(self) -> int:
        return sum(1 for s in specs() if s.dispatchable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CHECK_METHODS view: {sorted(self)}>"


#: Live mapping view over the registry (replaces the old bare dict).
CHECK_METHODS = _CheckMethodsView()
