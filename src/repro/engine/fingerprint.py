"""Content-addressed fingerprints of hypergraphs.

The result store shares cached verdicts between *identical inputs*, so the
cache key must not depend on accidents of construction: two hypergraphs built
from the same edges in a different order, or with vertices listed in a
different order inside each edge, must hash identically.

Two fingerprints are provided:

:func:`fingerprint`
    SHA-256 of the canonical ``(edge name, sorted vertices)`` form.  Invariant
    under edge reordering and vertex reordering; *sensitive* to edge and
    vertex names.  This is the engine's cache key: because names are part of
    the key, a cached decomposition (whose λ-labels refer to edges by name)
    can always be replayed against any hypergraph with the same fingerprint.

:func:`structural_fingerprint`
    Additionally invariant under renaming of vertices and edges, via a
    Weisfeiler–Leman-style colour refinement.  Isomorphic hypergraphs always
    agree; WL-indistinguishable non-isomorphic hypergraphs may collide, so
    this hash is for grouping near-duplicate instances (the paper dedupes the
    benchmark "on the hypergraph level", Section 5.6) — **not** for keying
    correctness-critical results.
"""

from __future__ import annotations

import hashlib

from repro.core.hypergraph import Hypergraph

__all__ = ["canonical_form", "fingerprint", "structural_fingerprint"]

#: Refinement rounds; three rounds separate everything the benchmark
#: generators produce while staying linear-ish in practice.
_WL_ROUNDS = 3


def canonical_form(hypergraph: Hypergraph) -> tuple[tuple[str, tuple[str, ...]], ...]:
    """The order-independent edge list ``((name, sorted vertices), ...)``."""
    return tuple(
        sorted(
            (name, tuple(sorted(vertices)))
            for name, vertices in hypergraph.edges.items()
        )
    )


def _digest(payload: object) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def fingerprint(hypergraph: Hypergraph) -> str:
    """Hex SHA-256 of the canonical form (the engine's cache key).

    The instance *name* is deliberately excluded: renaming an instance does
    not change any width, so ``triangle`` and a copy called ``tri2`` share
    all cached results.

    The digest is cached on the (immutable) hypergraph, and both pickling
    (:meth:`Hypergraph.__reduce__`) and the worker wire format
    (:class:`repro.core.bitset.PackedHypergraph`) carry it across process
    boundaries, so each instance is canonicalised at most once per fleet.
    """
    cached = hypergraph._fingerprint
    if cached is None:
        cached = _digest(canonical_form(hypergraph))
        hypergraph._fingerprint = cached
    return cached


def structural_fingerprint(hypergraph: Hypergraph, rounds: int = _WL_ROUNDS) -> str:
    """Hex SHA-256 invariant under vertex *and* edge renaming.

    Vertices start coloured by the multiset of their incident edge sizes and
    are refined ``rounds`` times by the colours seen across each incident
    edge; the hypergraph is then hashed as the sorted multiset of edges,
    each edge being the sorted multiset of its final vertex colours.
    """
    colours: dict[str, str] = {
        v: _digest(
            (
                "init",
                tuple(sorted(len(hypergraph.edge(e)) for e in hypergraph.incident_edges(v))),
            )
        )
        for v in hypergraph.vertices
    }
    for _ in range(rounds):
        new_colours: dict[str, str] = {}
        for v in hypergraph.vertices:
            edge_signatures = []
            for edge_name in hypergraph.incident_edges(v):
                edge = hypergraph.edge(edge_name)
                edge_signatures.append(
                    (len(edge), tuple(sorted(colours[u] for u in edge if u != v)))
                )
            new_colours[v] = _digest((colours[v], tuple(sorted(edge_signatures))))
        colours = new_colours
    edges = sorted(
        tuple(sorted(colours[v] for v in vertices))
        for vertices in hypergraph.edges.values()
    )
    return _digest(tuple(edges))
