"""Worker-process execution of check functions with *hard* timeouts.

The search algorithms poll a cooperative :class:`~repro.utils.deadline.Deadline`
at their backtracking points, but a cooperative budget cannot preempt a tight
inner loop (subedge enumeration, cover search) that goes long between polls.
Running each attempt in its own worker process lets the parent *kill* the
worker when the wall-clock budget is gone — the paper's cluster runs enforce
their 3600 s timeouts the same way.

Three execution shapes are provided:

* :func:`run_checked` — one attempt in one worker, killed at
  ``timeout + grace``;
* :func:`race_checks` — the Table 4 portfolio: one worker per algorithm,
  first definite answer wins, losers are cancelled;
* :func:`map_checks` — a bounded pool streaming a task list through at most
  ``jobs`` concurrent workers, each with its own hard budget.

Per-attempt processes (rather than a long-lived ``ProcessPoolExecutor``) are
deliberate: an executor cannot kill a single hung task without tearing down
the whole pool.  For side-effect-free bulk work with no timeouts (e.g.
parallel benchmark generation) :func:`run_callables` *does* use
:class:`concurrent.futures.ProcessPoolExecutor`; :func:`map_callables` is its
fault-isolating sibling — generic calls streamed through killable workers,
where a crash or overrun yields a :class:`CallFailure` in that slot instead
of poisoning the batch (the repository's parallel statistics use it).

Workers resolve check functions from the :mod:`repro.engine.methods`
registry by name, so only a short string crosses the process boundary;
picklable callables are accepted too (tests use this to inject
uncooperative loops).

**Wire format.**  Hypergraphs ship as
:class:`~repro.core.bitset.PackedHypergraph` — name tables plus one integer
mask per edge, packed *once per (hypergraph, batch)* — and the worker
rebuilds the named hypergraph and its dense
:class:`~repro.core.bitset.HypergraphView` without re-validating, re-hashing
or re-deriving anything.  Results travel back the same way: a yes-verdict's
decomposition is serialized as nested ``(bag mask, (edge index, weight)…)``
tuples and re-named only at the parent, so the result pipe never carries a
pickled hypergraph (the pre-refactor pickle of a ``Decomposition`` dragged
its whole ``hypergraph`` attribute along with every answer).  Pass
``packed=False`` to get the legacy pickle path — kept for the dispatch
microbenchmark in :mod:`repro.perf.harness`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _wait_connections

from repro.core.bitset import PackedHypergraph, pack_decomposition, unpack_decomposition
from repro.core.hypergraph import Hypergraph
from repro.decomp.driver import TIMEOUT, CheckFunction, CheckOutcome, timed_check
from repro.engine import methods as _methods
from repro.engine.methods import CHECK_METHODS
from repro.obs.trace import TRACER, make_span
from repro.perf import counters, publish_delta

__all__ = [
    "CHECK_METHODS",
    "DEFAULT_GRACE",
    "CallFailure",
    "register_method",
    "resolve_method",
    "run_checked",
    "race_checks",
    "map_checks",
    "map_callables",
    "run_callables",
]

#: Extra seconds past the cooperative budget before the worker is killed.
DEFAULT_GRACE = 0.5

# ``fork`` keeps worker start-up cheap and passes arguments by inheritance;
# platforms without it (Windows, some macOS configs) fall back to the default
# start method, where arguments must be picklable.
if "fork" in multiprocessing.get_all_start_methods():
    _CTX = multiprocessing.get_context("fork")
else:  # pragma: no cover - non-POSIX fallback
    _CTX = multiprocessing.get_context()


def register_method(name: str, check: CheckFunction) -> None:
    """Register a custom check function under ``name`` (e.g. for experiments).

    Thin wrapper over :func:`repro.engine.methods.register_check`: the
    method lands in the shared registry as an ad-hoc, non-monotone spec.
    """
    _methods.register_check(name, check)


def resolve_method(method: str | CheckFunction) -> CheckFunction:
    """Map a registry name (or pass a callable through) to a check function."""
    return _methods.resolve(method)


# ---------------------------------------------------------------- primitives

#: Tag of a mask-serialized outcome on the result pipe.
_WIRE_OUTCOME = "__wire__"

#: Tag of a legacy pickled outcome travelling with its telemetry.
_WIRE_PICKLED = "__pickled__"


def _method_label(method: str | CheckFunction) -> str:
    return method if isinstance(method, str) else getattr(method, "__name__", "callable")


def _child_check(
    conn: Connection,
    method: str | CheckFunction,
    payload: "PackedHypergraph | Hypergraph",
    k: int,
    timeout: float | None,
    trace: tuple | None = None,
) -> None:
    """Worker entry point: run one timed check, ship the outcome back.

    A :class:`PackedHypergraph` payload is unpacked (view and fingerprint
    land pre-cached) and the outcome is serialized back in mask form; a
    plain hypergraph round-trips the legacy pickled :class:`CheckOutcome`
    (now tagged, so its telemetry rides along).  Exceptions are shipped back
    too, so a programming error inside a check function surfaces in the
    parent instead of masquerading as a timeout; only a worker that *dies*
    (OOM kill, crash) reads as a timeout.

    Telemetry: the fork inherits the parent's :data:`~repro.perf.counters`
    values, so the child snapshots them first and ships only the *delta* its
    own work accrued, plus a detached ``worker.exec`` span record parented
    on ``trace`` — the parent merges the delta and grafts the span into its
    tracer on receipt.  (The child deliberately builds no :class:`Tracer` of
    its own: the parent's ring, journal handle and registry are inherited
    fork-state it must not double-write.)
    """
    try:
        try:
            packed = isinstance(payload, PackedHypergraph)
            hypergraph = payload.unpack() if packed else payload
            before = counters.snapshot()
            span = make_span(
                "worker.exec",
                parent=trace,
                method=_method_label(method),
                k=k,
                mode="worker",
                pid=os.getpid(),
            )
            outcome = timed_check(resolve_method(method), hypergraph, k, timeout)
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            conn.send(exc)
        else:
            delta = counters.delta_since(before)
            span.end(
                verdict=outcome.verdict,
                seconds=outcome.seconds,
                **{f"kernel_{name}": value for name, value in delta.items()},
            )
            telemetry = {"counters": delta, "spans": [span.to_dict()]}
            if packed:
                decomposition = (
                    pack_decomposition(outcome.decomposition)
                    if outcome.decomposition is not None
                    else None
                )
                conn.send(
                    (
                        _WIRE_OUTCOME,
                        outcome.verdict,
                        outcome.seconds,
                        decomposition,
                        telemetry,
                    )
                )
            else:
                # Legacy path: the decomposition travels back via pickle,
                # dragging its hypergraph along; drop nothing.
                conn.send((_WIRE_PICKLED, outcome, telemetry))
    finally:
        conn.close()


def _reap(process: multiprocessing.Process) -> None:
    """Terminate (then kill) a worker and wait for it to disappear."""
    if process.is_alive():
        process.terminate()
        process.join(1.0)
        if process.is_alive():  # pragma: no cover - terminate nearly always works
            process.kill()
    process.join()


def _hard_budget(timeout: float | None, grace: float) -> float | None:
    return None if timeout is None else timeout + grace


def _payload_for(hypergraph: Hypergraph, packed: bool) -> "PackedHypergraph | Hypergraph":
    return PackedHypergraph.pack(hypergraph) if packed else hypergraph


def _spawn(
    method: str | CheckFunction,
    payload: "PackedHypergraph | Hypergraph",
    k: int,
    timeout: float | None,
    trace: tuple | None = None,
) -> tuple[multiprocessing.Process, Connection]:
    resolve_method(method)  # fail in the parent on unknown method names
    parent_conn, child_conn = _CTX.Pipe(duplex=False)
    process = _CTX.Process(
        target=_child_check,
        args=(child_conn, method, payload, k, timeout, trace),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return process, parent_conn


def _adopt_telemetry(outcome: CheckOutcome, telemetry: object) -> CheckOutcome:
    """Merge a worker's shipped telemetry into the parent process.

    The counter delta folds into the parent's :data:`~repro.perf.counters`
    singleton (so worker-side kernel work is no longer invisible) and is
    published to the metrics registry; the worker's span records graft into
    the parent tracer's ring/journal.  Both also ride on the outcome so the
    engine can attach them to the :class:`~repro.engine.jobs.JobResult`.
    """
    if not isinstance(telemetry, dict):
        return outcome
    delta = telemetry.get("counters")
    spans = telemetry.get("spans")
    if delta:
        counters.merge(delta)
        publish_delta(delta)
    if spans:
        TRACER.graft(spans)
    outcome.counters = delta or None
    outcome.spans = spans or None
    return outcome


def _receive(
    conn: Connection,
    fallback_seconds: float,
    hypergraph: Hypergraph | None = None,
) -> CheckOutcome:
    """Read a worker's outcome; a dead pipe (crash, OOM-kill) is a timeout.

    The paper treats resource blow-ups the same way (GlobalBIP's subedge
    explosions are recorded as timeouts), so a worker that dies without an
    answer gets the same verdict.  A forwarded exception re-raises here.
    A mask-serialized outcome is re-named against ``hypergraph`` — the
    parent's original instance, whose cached view does the naming.
    """
    try:
        result = conn.recv()
    except (EOFError, OSError):
        return CheckOutcome(TIMEOUT, fallback_seconds)
    if isinstance(result, Exception):
        raise result
    if isinstance(result, tuple) and result and result[0] == _WIRE_OUTCOME:
        _, verdict, seconds, payload, telemetry = result
        decomposition = (
            unpack_decomposition(payload, hypergraph)
            if payload is not None and hypergraph is not None
            else None
        )
        return _adopt_telemetry(CheckOutcome(verdict, seconds, decomposition), telemetry)
    if isinstance(result, tuple) and result and result[0] == _WIRE_PICKLED:
        _, outcome, telemetry = result
        return _adopt_telemetry(outcome, telemetry)
    return result


# -------------------------------------------------------------- single check


def run_checked(
    method: str | CheckFunction,
    hypergraph: Hypergraph,
    k: int,
    timeout: float | None = None,
    grace: float = DEFAULT_GRACE,
    packed: bool = True,
    trace: tuple | None = None,
) -> CheckOutcome:
    """Run one ``Check(H, k)`` in a worker process with a hard timeout.

    The worker still polls the cooperative deadline (so well-behaved searches
    stop themselves near ``timeout``); the parent kills it at
    ``timeout + grace`` regardless.  With ``packed`` (the default) the
    hypergraph ships as a :class:`PackedHypergraph` and the decomposition
    returns as masks, re-named here against the caller's instance.

    ``trace`` (a :class:`~repro.obs.TraceContext`, defaulting to the ambient
    one) parents the worker's ``worker.exec`` span; the worker's kernel
    counter delta and span records come back with the outcome.
    """
    if trace is None:
        trace = TRACER.current_context()
    process, conn = _spawn(method, _payload_for(hypergraph, packed), k, timeout, trace)
    start = time.perf_counter()
    try:
        if conn.poll(_hard_budget(timeout, grace)):
            return _receive(conn, time.perf_counter() - start, hypergraph)
        return CheckOutcome(TIMEOUT, time.perf_counter() - start)
    finally:
        conn.close()
        _reap(process)


# ---------------------------------------------------------------- portfolio


def race_checks(
    methods: Sequence[str],
    hypergraph: Hypergraph,
    k: int,
    timeout: float | None = None,
    grace: float = DEFAULT_GRACE,
    packed: bool = True,
    trace: tuple | None = None,
) -> tuple[str | None, dict[str, CheckOutcome]]:
    """Race one worker per method; the first definite answer wins.

    Returns ``(winner, per_method)``.  ``winner`` is ``None`` when nobody
    answered.  Losers still running when the winner reports are cancelled
    (killed) and recorded as timeouts at their cancellation time; methods
    that finished *before* the winner keep their genuine outcomes.  The
    hypergraph is packed once and shared by every racer; every racer's
    ``worker.exec`` span parents on ``trace`` (default: ambient context).
    """
    if trace is None:
        trace = TRACER.current_context()
    payload = _payload_for(hypergraph, packed)
    processes: dict[str, multiprocessing.Process] = {}
    pending: dict[Connection, str] = {}
    for method in methods:
        process, conn = _spawn(method, payload, k, timeout, trace)
        processes[method] = process
        pending[conn] = method
    start = time.perf_counter()
    deadline = None if timeout is None else start + timeout + grace
    results: dict[str, CheckOutcome] = {}
    winner: str | None = None
    try:
        while pending and winner is None:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            ready = _wait_connections(list(pending), remaining)
            if not ready:
                break  # hard budget exhausted for everyone still running
            for conn in ready:
                method = pending.pop(conn)  # type: ignore[arg-type]
                outcome = _receive(conn, time.perf_counter() - start, hypergraph)  # type: ignore[arg-type]
                conn.close()  # type: ignore[attr-defined]
                results[method] = outcome
                if winner is None and outcome.answered:
                    winner = method
        cancelled_at = time.perf_counter() - start
        still_racing = winner is not None
        for method in pending.values():
            results[method] = CheckOutcome(TIMEOUT, cancelled_at, cancelled=still_racing)
    finally:
        for conn in pending:
            conn.close()
        for process in processes.values():
            _reap(process)
    return winner, results


# -------------------------------------------------------------- bounded pool


def _stream_pool(
    count: int,
    jobs: int,
    start: Callable[[int], tuple[multiprocessing.Process, Connection, float | None]],
    receive: Callable[[Connection, float, int], object],
    expire: Callable[[float], object],
) -> list[object]:
    """Stream ``count`` tasks through ≤ ``jobs`` workers, results in order.

    ``start(index)`` spawns task ``index`` and returns ``(process, conn,
    hard budget in seconds or None)``; ``receive(conn, elapsed, index)``
    reads a finished worker's result; ``expire(elapsed)`` is the result
    recorded for a worker killed at its hard budget.
    """
    results: list[object] = [None] * count
    active: dict[Connection, tuple[int, multiprocessing.Process, float, float | None]] = {}
    next_task = 0
    try:
        while next_task < count or active:
            while next_task < count and len(active) < jobs:
                process, conn, budget = start(next_task)
                started = time.perf_counter()
                active[conn] = (
                    next_task,
                    process,
                    started,
                    None if budget is None else started + budget,
                )
                next_task += 1
            now = time.perf_counter()
            deadlines = [d for (_, _, _, d) in active.values() if d is not None]
            poll = None if not deadlines else max(0.0, min(deadlines) - now)
            ready = _wait_connections(list(active), poll)
            now = time.perf_counter()
            for conn in ready:
                index, process, started, _ = active.pop(conn)  # type: ignore[arg-type]
                results[index] = receive(conn, now - started, index)  # type: ignore[arg-type]
                conn.close()  # type: ignore[attr-defined]
                _reap(process)
            overdue = [
                conn
                for conn, (_, _, _, deadline) in active.items()
                if deadline is not None and now >= deadline
            ]
            for conn in overdue:
                index, process, started, _ = active.pop(conn)
                results[index] = expire(now - started)
                conn.close()
                _reap(process)
    finally:
        for conn, (_, process, _, _) in active.items():
            conn.close()
            _reap(process)
    return results


def map_checks(
    tasks: Sequence[tuple[str | CheckFunction, Hypergraph, int, float | None]],
    jobs: int,
    grace: float = DEFAULT_GRACE,
    packed: bool = True,
    traces: Sequence[tuple | None] | None = None,
) -> list[CheckOutcome]:
    """Stream ``(method, hypergraph, k, timeout)`` tasks through ≤ jobs workers.

    Results come back in task order.  Each worker has its own hard budget;
    a killed or crashed worker yields a timeout verdict for its task.
    A batch that checks one hypergraph at many ``(method, k)`` keys packs
    it exactly once — the packed view is shared across every dispatch.
    ``traces`` is an optional per-task parallel sequence of
    :class:`~repro.obs.TraceContext` parents (a batch wave carries one per
    spec, so each worker span lands in the trace of the request that
    submitted it).
    """
    payloads: dict[int, PackedHypergraph | Hypergraph] = {}
    if packed:
        for _, hypergraph, _, _ in tasks:
            key = id(hypergraph)
            if key not in payloads:
                payloads[key] = PackedHypergraph.pack(hypergraph)

    def start(index: int):
        method, hypergraph, k, timeout = tasks[index]
        payload = payloads.get(id(hypergraph), hypergraph)
        trace = traces[index] if traces is not None else None
        process, conn = _spawn(method, payload, k, timeout, trace)
        return process, conn, _hard_budget(timeout, grace)

    def receive(conn: Connection, elapsed: float, index: int) -> CheckOutcome:
        return _receive(conn, elapsed, tasks[index][1])

    return _stream_pool(  # type: ignore[return-value]
        len(tasks),
        max(1, int(jobs)),
        start,
        receive,
        lambda elapsed: CheckOutcome(TIMEOUT, elapsed),
    )


# ----------------------------------------------------- generic parallel calls


def run_callables(
    calls: Sequence[tuple[Callable, tuple]],
    jobs: int,
) -> list[object]:
    """Run ``fn(*args)`` pairs in a process pool, results in call order.

    For deterministic, side-effect-free bulk work without timeouts (the
    benchmark generators); uses :class:`concurrent.futures.ProcessPoolExecutor`.
    """
    jobs = max(1, int(jobs))
    if jobs == 1 or len(calls) <= 1:
        return [fn(*args) for fn, args in calls]
    with ProcessPoolExecutor(max_workers=min(jobs, len(calls)), mp_context=_CTX) as pool:
        futures = [pool.submit(fn, *args) for fn, args in calls]
        return [future.result() for future in futures]


@dataclass(frozen=True)
class CallFailure:
    """One failed slot in a :func:`map_callables` batch (returned, not raised).

    ``reason`` is ``"timeout"`` (hard budget exhausted), ``"crash"`` (the
    worker died without reporting), or the ``repr`` of the exception the
    call raised.
    """

    reason: str


def _child_call(conn: Connection, fn: Callable, args: tuple) -> None:
    """Worker entry point for :func:`map_callables`: report value or error."""
    try:
        try:
            result = fn(*args)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            conn.send(("error", repr(exc)))
        else:
            conn.send(("ok", result))
    finally:
        conn.close()


def map_callables(
    calls: Sequence[tuple[Callable, tuple]],
    jobs: int,
    timeout: float | None = None,
    grace: float = DEFAULT_GRACE,
) -> list[object]:
    """Stream ``fn(*args)`` pairs through ≤ jobs workers, isolating failures.

    Unlike :func:`run_callables`, every call runs in its own killable worker
    with an optional per-call hard ``timeout``; a call that raises, crashes
    its worker (OOM kill, ``os._exit``), or overruns the budget yields a
    :class:`CallFailure` in its slot instead of poisoning the whole batch —
    mirroring the engine convention that a dead worker reads as a timeout.
    """

    def start(index: int):
        fn, args = calls[index]
        parent_conn, child_conn = _CTX.Pipe(duplex=False)
        process = _CTX.Process(
            target=_child_call, args=(child_conn, fn, tuple(args)), daemon=True
        )
        process.start()
        child_conn.close()
        return process, parent_conn, _hard_budget(timeout, grace)

    def receive(conn: Connection, elapsed: float, index: int) -> object:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            return CallFailure("crash")
        return payload if kind == "ok" else CallFailure(payload)

    return _stream_pool(
        len(calls),
        max(1, int(jobs)),
        start,
        receive,
        lambda elapsed: CallFailure("timeout"),
    )
