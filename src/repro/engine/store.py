"""A SQLite-backed, content-addressed store of decomposition results.

Every row is one ``Check(H, k)`` (or portfolio / width-building-block)
verdict, keyed by ``(fingerprint, method, k, timeout)``.  Definite answers
(yes / no) are facts about the hypergraph and therefore *timeout
independent*: a lookup that misses its exact timeout key still returns a
stored definite answer for the same ``(fingerprint, method, k)``.  Timeout
verdicts, by contrast, only replay for the exact budget they were observed
under.

Serialized decompositions travel through :mod:`repro.io.json_io`, so
anything the store hands back can be validated by the independent checkers
in :mod:`repro.core.decomposition`.

The store keeps lifetime hit/miss counters in a ``meta`` table (surfaced by
``repro cache stats``) plus per-session counters, and evicts
least-recently-used rows once ``max_entries`` is exceeded.

On top of the row cache sits a per-``(fingerprint, method)`` **bounds index**:
``Check(H, k)`` is monotone in ``k`` for every method whose search space only
grows with ``k`` (a decomposition of width ≤ k is one of width ≤ k + 1, and a
definite "no" at k refutes every smaller k), so every stored definite verdict
implies verdicts at other widths.  The index keeps the derived interval
``lo <= width <= hi`` — ``lo`` is one past the largest refuted k, ``hi`` the
smallest accepted k — and :meth:`ResultStore.get` answers *implied* keys from
it when no row matches: ``k >= hi`` replays the witnessing yes-row (its
decomposition is valid evidence at any larger k), ``k < lo`` is a derived
"no".  Only methods the :mod:`repro.engine.methods` registry marks monotone
participate (see :data:`MONOTONE_METHODS`); custom registered methods make
no monotonicity promise.  The index is recomputed from the surviving rows on
every put, eviction and clear, so it never claims more than the rows present
can justify.

On top of the per-method index sits the **cross-method knowledge layer**:
the paper's width notions are related by the proven inequalities

    fhw(H) ≤ ghw(H) ≤ hw(H) ≤ 3·ghw(H) + 1

so a verdict recorded under one method constrains every method of a related
*width kind*.  :data:`WIDTH_RELATIONS` encodes the inequalities as interval
transforms between kinds; ``put`` folds each method's direct bounds into a
per-``(fingerprint, kind)`` table (``kind_bounds``) and propagates them
across kinds to a fixpoint.  :meth:`ResultStore.implied` consults these
cross-method rows after the direct index: an hw "yes" at ``k`` answers a ghw
check at ``k`` instantly (with the witnessing decomposition borrowed from
any same-kind method whose witness kind matches), and a ghw "no" at ``k``
refutes an hw check at ``k`` — closing gaps no single method's rows could.

Stores created before the knowledge layer (no ``kind_bounds`` table) are
migrated in place on open: the table is created and seeded from the
surviving per-method bounds, so old ``--cache`` files keep every derived
fact and gain the cross-method rows for free.

**Concurrency.**  A store may be shared between threads (the service layer
peeks from its event loop while a batch wave writes from a worker thread)
and between processes (several ``repro`` invocations pointing at the same
``--cache`` file).  Every public method serialises on an internal reentrant
lock, the connection is opened with ``check_same_thread=False``, and
file-backed stores run in SQLite's WAL journal mode with a busy timeout —
readers never block the writer, and a second process retries instead of
failing with ``database is locked``.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.decomp.driver import NO, YES, CheckOutcome
from repro.engine import methods as _methods
from repro.errors import ReproError
from repro.io.json_io import decomposition_from_json, decomposition_to_json
from repro.obs.metrics import REGISTRY

# Process-wide store metric families, published at the mutation sites (all
# stores in the process aggregate here; per-store numbers stay on StoreStats).
_M_HITS = REGISTRY.counter(
    "repro_store_hits_total", "Result-store lookups answered from a stored row."
)
_M_MISSES = REGISTRY.counter(
    "repro_store_misses_total", "Result-store lookups that found nothing."
)
_M_IMPLIED = REGISTRY.counter(
    "repro_store_implied_total",
    "Store hits derived from the bounds index rather than an exact row.",
)
_M_EVICTIONS = REGISTRY.counter(
    "repro_store_evictions_total", "Rows evicted by the LRU size cap."
)

__all__ = [
    "MONOTONE_METHODS",
    "WIDTH_RELATIONS",
    "WidthRelation",
    "ResultStore",
    "StoredResult",
    "StoreStats",
    "timeout_key",
]


class _MonotoneMethodsView:
    """Live set-like view of the registry's monotone method names.

    Replaces the old hand-maintained frozenset: membership follows the
    :mod:`repro.engine.methods` registry, so a method registered with
    ``monotone=True`` feeds the bounds index without touching the store.
    """

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        spec = _methods.get_optional(name)
        return spec is not None and spec.monotone

    def __iter__(self):
        return iter(sorted(_methods.monotone_names()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MONOTONE_METHODS view: {sorted(self)}>"


#: Methods whose ``Check(H, k)`` verdicts are monotone in ``k`` and therefore
#: feed the bounds index (a live view over the method registry).  Custom
#: methods registered at runtime are excluded by default: the store cannot
#: know whether their search spaces are nested.
MONOTONE_METHODS = _MonotoneMethodsView()


@dataclass(frozen=True)
class WidthRelation:
    """One provable interval transform between two width kinds.

    A source-kind fact ``width_src ≥ lo`` yields ``width_dst ≥ lo_map(lo)``;
    ``width_src ≤ hi`` yields ``width_dst ≤ hi_map(hi)``.  A relation carries
    one direction only (``None`` for the other).
    """

    src: str
    dst: str
    lo_map: "callable | None" = None
    hi_map: "callable | None" = None


def _ghw_lower_from_hw(lo: int) -> int:
    # hw ≥ lo and hw ≤ 3·ghw + 1  ⇒  ghw ≥ ⌈(lo − 1) / 3⌉.
    return max(1, -(-(lo - 1) // 3))


#: The paper's inter-width inequalities (fhw ≤ ghw ≤ hw ≤ 3·ghw + 1) as
#: interval transforms.  Upper bounds flow *down* the chain (an hw "yes"
#: caps ghw and fhw), lower bounds flow *up* (a ghw "no" lifts hw), and the
#: 3·ghw + 1 bound closes the loop in both directions.
WIDTH_RELATIONS: tuple[WidthRelation, ...] = (
    # ghw ≤ hw
    WidthRelation(_methods.HW, _methods.GHW, hi_map=lambda hi: hi),
    WidthRelation(_methods.GHW, _methods.HW, lo_map=lambda lo: lo),
    # hw ≤ 3·ghw + 1
    WidthRelation(_methods.GHW, _methods.HW, hi_map=lambda hi: 3 * hi + 1),
    WidthRelation(_methods.HW, _methods.GHW, lo_map=_ghw_lower_from_hw),
    # fhw ≤ ghw (and hence ≤ hw, via the chain)
    WidthRelation(_methods.GHW, _methods.FHW, hi_map=lambda hi: hi),
    WidthRelation(_methods.FHW, _methods.GHW, lo_map=lambda lo: lo),
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT NOT NULL,
    method      TEXT NOT NULL,
    k           INTEGER NOT NULL,
    timeout     TEXT NOT NULL,
    verdict     TEXT NOT NULL,
    seconds     REAL NOT NULL,
    decomposition TEXT,
    extra       TEXT,
    created_at  REAL NOT NULL,
    last_used   REAL NOT NULL,
    use_count   INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (fingerprint, method, k, timeout)
);
CREATE TABLE IF NOT EXISTS bounds (
    fingerprint TEXT NOT NULL,
    method      TEXT NOT NULL,
    lo          INTEGER NOT NULL,
    hi          INTEGER,
    PRIMARY KEY (fingerprint, method)
);
CREATE TABLE IF NOT EXISTS kind_bounds (
    fingerprint TEXT NOT NULL,
    kind        TEXT NOT NULL,
    lo          INTEGER NOT NULL,
    hi          INTEGER,
    PRIMARY KEY (fingerprint, kind)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

#: Bumped when the derived tables change shape; old stores migrate in place.
SCHEMA_VERSION = 2


def timeout_key(timeout: float | None) -> str:
    """Normalise a timeout into a stable text key (``None`` → ``"none"``)."""
    return "none" if timeout is None else repr(float(timeout))


@dataclass
class StoredResult:
    """One cached verdict, decomposition still in its serialized form.

    ``implied`` marks an answer derived from the bounds index rather than a
    stored row for the exact key: the verdict is certain (monotonicity), the
    ``seconds`` are zero (no work was replayed), and for a "yes" the
    decomposition is the witnessing row's — valid evidence at any larger k.
    """

    verdict: str
    seconds: float
    decomposition_json: str | None = None
    extra: dict | None = None
    implied: bool = False

    def outcome(self, hypergraph: Hypergraph | None = None) -> CheckOutcome:
        """Rebuild the :class:`CheckOutcome` (decomposition needs the graph)."""
        decomposition = None
        if self.decomposition_json is not None and hypergraph is not None:
            decomposition = decomposition_from_json(self.decomposition_json, hypergraph)
        return CheckOutcome(self.verdict, self.seconds, decomposition)


@dataclass
class StoreStats:
    """Lifetime (persisted) and session hit/miss accounting.

    ``implied`` counts the subset of ``hits`` answered by the bounds index
    rather than an exact row (lifetime and session respectively).
    """

    entries: int
    hits: int
    misses: int
    session_hits: int
    session_misses: int
    implied: int = 0
    session_implied: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultStore:
    """Persistent result cache; use as a context manager or call :meth:`close`.

    Verdicts round-trip by ``(fingerprint, method, k)``; definite answers
    stored at one ``k`` also answer *implied* keys via the bounds index:

    >>> from repro.decomp.driver import CheckOutcome
    >>> store = ResultStore()                       # ephemeral, in-memory
    >>> store.put("fp", "hd", 2, None, CheckOutcome("yes", 0.1))
    >>> store.get("fp", "hd", 2, None).verdict
    'yes'
    >>> store.get("fp", "hd", 5, None).implied      # yes at 2 ⇒ yes at 5
    True
    >>> store.bounds("fp", "hd")
    (1, 2)

    Parameters
    ----------
    path:
        SQLite file path, or ``":memory:"`` for an ephemeral store.
    max_entries:
        LRU eviction threshold; ``None`` disables eviction.
    """

    def __init__(self, path: str | Path = ":memory:", max_entries: int | None = None):
        self.path = str(path)
        self.max_entries = max_entries
        self.session_hits = 0
        self.session_misses = 0
        self.session_implied = 0
        # Reentrant: public methods lock, then call other (locking) methods.
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                self.path, isolation_level=None, check_same_thread=False
            )
            if self.path != ":memory:":
                # WAL lets concurrent readers proceed while one writer
                # appends; the busy timeout makes a second *process* retry
                # instead of raising "database is locked".  Both are no-ops
                # conceptually for in-memory stores.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA busy_timeout=5000")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._migrate()
        except sqlite3.DatabaseError as exc:
            raise ReproError(f"{self.path} is not a result store: {exc}") from exc

    def _migrate(self) -> None:
        """Bring a store created by an older schema up to date, in place.

        Pre-knowledge-layer stores have per-method ``bounds`` rows but no
        ``kind_bounds``; seeding the cross-method table from the surviving
        bounds keeps every derived fact and adds the inter-width rows.  The
        ``results``/``bounds``/``meta`` tables are unchanged, so migrated
        files remain readable by the code that wrote them.
        """
        if self._meta("schema_version") >= SCHEMA_VERSION:
            return
        fingerprints = [
            fp for (fp,) in self._conn.execute("SELECT DISTINCT fingerprint FROM bounds")
        ]
        for fp in fingerprints:
            self._recompute_kind_bounds(fp)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
            (SCHEMA_VERSION,),
        )

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- cache

    def get(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        record: bool = True,
        bounds: bool = True,
    ) -> StoredResult | None:
        """Look up one result; counts a hit/miss and touches the LRU clock.

        Lookup order: a definite answer for ``(fingerprint, method, k)``
        under *any* budget (yes/no are facts about the hypergraph), then —
        unless ``bounds=False`` — a definite answer implied by the bounds
        index (see :meth:`implied`), and only then the exact ``(…, timeout)``
        row, replaying a timeout verdict for its own budget.  Derived
        definite answers thus dominate stale timeout rows: once some other k
        settles the verdict, a recorded timeout at this key stops replaying.

        ``record=False`` peeks without touching the hit/miss counters (the
        engine's batch replay books its lookups via :meth:`record_hits`
        only once it knows the whole job was served from cache).
        """
        with self._lock:
            return self._get_locked(fingerprint, method, k, timeout, record, bounds)

    def _get_locked(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        record: bool,
        bounds: bool,
    ) -> StoredResult | None:
        # Definite answers are timeout independent; prefer one recorded under
        # any budget over a timeout verdict at the exact key.
        row = self._conn.execute(
            "SELECT rowid, verdict, seconds, decomposition, extra FROM results "
            "WHERE fingerprint = ? AND method = ? AND k = ? "
            "AND verdict IN (?, ?) LIMIT 1",
            (fingerprint, method, k, YES, NO),
        ).fetchone()
        if row is None and bounds:
            derived = self.implied(fingerprint, method, k)
            if derived is not None:
                if record:
                    self.session_hits += 1
                    self.session_implied += 1
                    self._bump_meta("hits")
                    self._bump_meta("implied")
                    _M_HITS.inc()
                    _M_IMPLIED.inc()
                return derived
        if row is None:
            row = self._conn.execute(
                "SELECT rowid, verdict, seconds, decomposition, extra FROM results "
                "WHERE fingerprint = ? AND method = ? AND k = ? AND timeout = ?",
                (fingerprint, method, k, timeout_key(timeout)),
            ).fetchone()
        if row is None:
            if record:
                self.session_misses += 1
                self._bump_meta("misses")
                _M_MISSES.inc()
            return None
        rowid, verdict, seconds, decomposition, extra = row
        self._conn.execute(
            "UPDATE results SET last_used = ?, use_count = use_count + 1 "
            "WHERE rowid = ?",
            (time.time(), rowid),
        )
        if record:
            self.session_hits += 1
            self._bump_meta("hits")
            _M_HITS.inc()
        return StoredResult(
            verdict,
            seconds,
            decomposition,
            json.loads(extra) if extra else None,
        )

    def put(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        outcome: CheckOutcome,
        extra: dict | None = None,
    ) -> None:
        """Persist one outcome (replacing any stale row under the same key)."""
        with self._lock:
            self._put_locked(fingerprint, method, k, timeout, outcome, extra)

    def _put_locked(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        outcome: CheckOutcome,
        extra: dict | None,
    ) -> None:
        decomposition = (
            decomposition_to_json(outcome.decomposition)
            if outcome.decomposition is not None
            else None
        )
        now = time.time()
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, method, k, timeout, verdict, seconds, decomposition,"
            " extra, created_at, last_used, use_count) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
            (
                fingerprint,
                method,
                k,
                timeout_key(timeout),
                outcome.verdict,
                outcome.seconds,
                decomposition,
                json.dumps(extra, sort_keys=True) if extra else None,
                now,
                now,
            ),
        )
        if method in MONOTONE_METHODS:
            self._recompute_bounds(fingerprint, method)
            self._recompute_kind_bounds(fingerprint)
        self._evict()

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        excess = len(self) - self.max_entries
        if excess > 0:
            victims = self._conn.execute(
                "SELECT rowid, fingerprint, method FROM results "
                "ORDER BY last_used ASC LIMIT ?",
                (excess,),
            ).fetchall()
            self._conn.executemany(
                "DELETE FROM results WHERE rowid = ?",
                [(rowid,) for rowid, _, _ in victims],
            )
            _M_EVICTIONS.inc(len(victims))
            # Evicted rows may have justified a bound; shrink the index back
            # to what the surviving rows prove.
            touched = {(fp, m) for _, fp, m in victims}
            for fp, method in touched:
                if method in MONOTONE_METHODS:
                    self._recompute_bounds(fp, method)
            for fp in {fp for fp, _ in touched}:
                self._recompute_kind_bounds(fp)

    def clear(self) -> None:
        """Drop every cached result and reset the lifetime counters."""
        with self._lock:
            self._conn.execute("DELETE FROM results")
            self._conn.execute("DELETE FROM bounds")
            self._conn.execute("DELETE FROM kind_bounds")
            self._conn.execute("DELETE FROM meta")

    # ---------------------------------------------------------------- bounds

    def _recompute_bounds(self, fingerprint: str, method: str) -> None:
        """Re-derive ``[lo, hi]`` for one key from the rows currently stored.

        Recomputation (rather than monotone tightening) keeps the index exact
        under row replacement and LRU eviction: the interval always equals
        precisely what the surviving definite verdicts justify.
        """
        max_no, min_yes = self._conn.execute(
            "SELECT MAX(CASE WHEN verdict = ? THEN k END),"
            " MIN(CASE WHEN verdict = ? THEN k END) FROM results"
            " WHERE fingerprint = ? AND method = ?",
            (NO, YES, fingerprint, method),
        ).fetchone()
        if max_no is None and min_yes is None:
            self._conn.execute(
                "DELETE FROM bounds WHERE fingerprint = ? AND method = ?",
                (fingerprint, method),
            )
            return
        self._conn.execute(
            "INSERT OR REPLACE INTO bounds (fingerprint, method, lo, hi) "
            "VALUES (?, ?, ?, ?)",
            (fingerprint, method, (max_no or 0) + 1, min_yes),
        )

    def _recompute_kind_bounds(self, fingerprint: str) -> None:
        """Re-derive the per-kind intervals for one fingerprint.

        Each monotone method's direct bounds are folded into its
        *decision kind* (the width kind whose ``≤ k`` question its verdicts
        answer), then the :data:`WIDTH_RELATIONS` transforms propagate the
        intervals across kinds until nothing tightens.  The fixpoint exists
        because ``lo`` only ever rises and ``hi`` only ever falls within the
        bounded lattice the relations span; the iteration cap is defensive.
        """
        intervals: dict[str, list] = {}
        for method, lo, hi in self._conn.execute(
            "SELECT method, lo, hi FROM bounds WHERE fingerprint = ?",
            (fingerprint,),
        ):
            kind = _methods.decision_kind_of(method)
            if kind is None:
                continue
            current = intervals.setdefault(kind, [1, None])
            current[0] = max(current[0], lo)
            if hi is not None:
                current[1] = hi if current[1] is None else min(current[1], hi)

        for _ in range(8):  # defensive cap; 2-3 passes suffice in practice
            changed = False
            for relation in WIDTH_RELATIONS:
                src = intervals.get(relation.src)
                if src is None:
                    continue
                dst = intervals.setdefault(relation.dst, [1, None])
                if relation.lo_map is not None:
                    derived_lo = relation.lo_map(src[0])
                    if derived_lo > dst[0]:
                        dst[0] = derived_lo
                        changed = True
                if relation.hi_map is not None and src[1] is not None:
                    derived_hi = relation.hi_map(src[1])
                    if dst[1] is None or derived_hi < dst[1]:
                        dst[1] = derived_hi
                        changed = True
            if not changed:
                break

        self._conn.execute(
            "DELETE FROM kind_bounds WHERE fingerprint = ?", (fingerprint,)
        )
        self._conn.executemany(
            "INSERT INTO kind_bounds (fingerprint, kind, lo, hi) VALUES (?, ?, ?, ?)",
            [
                (fingerprint, kind, lo, hi)
                for kind, (lo, hi) in intervals.items()
                if lo > 1 or hi is not None  # trivial (1, None) rows say nothing
            ],
        )

    def bounds(self, fingerprint: str, method: str) -> tuple[int, int | None]:
        """Derived width bounds ``(lo, hi)``: ``lo <= width``, ``width <= hi``.

        ``(1, None)`` when nothing definite is stored (every width is ≥ 1 and
        no upper bound is known).  These are the *direct* bounds — what the
        method's own rows prove; see :meth:`kind_bounds` /
        :meth:`effective_bounds` for the cross-method knowledge.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT lo, hi FROM bounds WHERE fingerprint = ? AND method = ?",
                (fingerprint, method),
            ).fetchone()
        return (row[0], row[1]) if row is not None else (1, None)

    def kind_bounds(self, fingerprint: str, kind: str) -> tuple[int, int | None]:
        """The cross-method interval for one width kind (``(1, None)`` default)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT lo, hi FROM kind_bounds WHERE fingerprint = ? AND kind = ?",
                (fingerprint, kind),
            ).fetchone()
        return (row[0], row[1]) if row is not None else (1, None)

    def effective_bounds(self, fingerprint: str, method: str) -> tuple[int, int | None]:
        """Direct bounds tightened by the method's decision-kind interval.

        The upper bound is only borrowed across methods when an implied
        "yes" would actually replay for this method (witness-required
        methods execute instead — their deliverable is the decomposition).
        """
        with self._lock:
            lo, hi = self.bounds(fingerprint, method)
            spec = _methods.get_optional(method)
            if spec is None or spec.decision_kind is None:
                return lo, hi
            kind_lo, kind_hi = self.kind_bounds(fingerprint, spec.decision_kind)
        lo = max(lo, kind_lo)
        if kind_hi is not None and not spec.witness_required:
            hi = kind_hi if hi is None else min(hi, kind_hi)
        return lo, hi

    def implied(self, fingerprint: str, method: str, k: int) -> StoredResult | None:
        """A verdict implied by the bounds index, or ``None``.

        The method's *direct* bounds answer first: ``k >= hi`` is an implied
        "yes" carrying the witnessing row's decomposition (width ≤ hi ≤ k);
        ``k < lo`` is an implied "no".  When the direct interval is silent,
        the **cross-method** kind interval answers: a "no" needs no witness
        (the refutation lives in another method's rows); a "yes" borrows the
        decomposition of a same-decision-kind method whose witness kind
        matches (a BalSep GHD is valid evidence for a LocalBIP "yes"), and
        is suppressed entirely for witness-required methods — their callers
        want the decomposition, not just the verdict.  Derived answers
        report zero seconds: no stored attempt ran at this k.
        """
        if method not in MONOTONE_METHODS:
            return None
        with self._lock:
            return self._implied_locked(fingerprint, method, k)

    def _implied_locked(self, fingerprint: str, method: str, k: int) -> StoredResult | None:
        lo, hi = self.bounds(fingerprint, method)
        if hi is not None and k >= hi:
            witness = self._conn.execute(
                "SELECT rowid, decomposition FROM results "
                "WHERE fingerprint = ? AND method = ? AND k = ? AND verdict = ? "
                "LIMIT 1",
                (fingerprint, method, hi, YES),
            ).fetchone()
            decomposition = witness[1] if witness is not None else None
            if witness is not None:
                self._touch(witness[0])
            return StoredResult(YES, 0.0, decomposition, implied=True)
        if k < lo:
            witness = self._conn.execute(
                "SELECT rowid FROM results "
                "WHERE fingerprint = ? AND method = ? AND k = ? AND verdict = ? "
                "LIMIT 1",
                (fingerprint, method, lo - 1, NO),
            ).fetchone()
            if witness is not None:
                self._touch(witness[0])
            return StoredResult(NO, 0.0, implied=True)
        return self._cross_implied(fingerprint, method, k)

    def _cross_implied(self, fingerprint: str, method: str, k: int) -> StoredResult | None:
        """A verdict implied by *other* methods' rows via the width relations."""
        spec = _methods.get_optional(method)
        if spec is None or spec.decision_kind is None:
            return None
        lo, hi = self.kind_bounds(fingerprint, spec.decision_kind)
        if k < lo:
            return StoredResult(NO, 0.0, implied=True)
        if hi is not None and k >= hi and not spec.witness_required:
            return StoredResult(
                YES, 0.0, self._borrowed_witness(fingerprint, spec, k), implied=True
            )
        return None

    #: Which stored decomposition kinds are valid evidence for which
    #: expected witness kind: every HD is a GHD, and both are FHDs with
    #: integral weights — the converse directions do not hold.
    _WITNESS_ACCEPTS = {
        "HD": ("HD",),
        "GHD": ("GHD", "HD"),
        "FHD": ("FHD", "GHD", "HD"),
    }

    def _borrowed_witness(self, fingerprint: str, spec, k: int) -> str | None:
        """Another method's yes-decomposition at some ``k' ≤ k``, if any.

        Any monotone method's stored "yes" decomposition qualifies when its
        witness kind is acceptable evidence for ``spec`` (a BalSep GHD backs
        a LocalBIP "yes"; a DetKDecomp HD backs any GHD "yes"): the
        decomposition's own width is ≤ k' ≤ k regardless of which search
        found it.  Purely arithmetic derivations (an hw "yes" at ``3·k + 1``
        from a ghw row) stay witnessless — the verdict is certain, but no
        stored tree of the right kind exists.
        """
        acceptable = self._WITNESS_ACCEPTS.get(spec.witness_kind or "", ())
        donors = [
            s.name
            for s in _methods.specs()
            if s.monotone and s.witness_kind in acceptable
        ]
        if not donors:
            return None
        marks = ",".join("?" for _ in donors)
        row = self._conn.execute(
            f"SELECT rowid, decomposition FROM results "
            f"WHERE fingerprint = ? AND method IN ({marks}) AND k <= ? "
            f"AND verdict = ? AND decomposition IS NOT NULL "
            f"ORDER BY k ASC LIMIT 1",
            (fingerprint, *donors, k, YES),
        ).fetchone()
        if row is None:
            return None
        self._touch(row[0])
        return row[1]

    def _touch(self, rowid: int) -> None:
        """Refresh a witness row's LRU clock so implied answers keep it warm."""
        self._conn.execute(
            "UPDATE results SET last_used = ?, use_count = use_count + 1 "
            "WHERE rowid = ?",
            (time.time(), rowid),
        )

    def bounds_rows(self) -> list[tuple[str, str, int, int | None]]:
        """The whole bounds index as ``(fingerprint, method, lo, hi)`` rows."""
        with self._lock:
            return [
                (fp, method, lo, hi)
                for fp, method, lo, hi in self._conn.execute(
                    "SELECT fingerprint, method, lo, hi FROM bounds "
                    "ORDER BY fingerprint, method"
                )
            ]

    def kind_bounds_rows(self) -> list[tuple[str, str, int, int | None]]:
        """The cross-method index as ``(fingerprint, kind, lo, hi)`` rows."""
        with self._lock:
            return [
                (fp, kind, lo, hi)
                for fp, kind, lo, hi in self._conn.execute(
                    "SELECT fingerprint, kind, lo, hi FROM kind_bounds "
                    "ORDER BY fingerprint, kind"
                )
            ]

    # ------------------------------------------------- sharding / migration

    def kind_bounds_for(self, fingerprint: str) -> list[tuple[str, int, int | None]]:
        """One fingerprint's cross-method rows as ``(kind, lo, hi)`` tuples."""
        with self._lock:
            return [
                (kind, lo, hi)
                for kind, lo, hi in self._conn.execute(
                    "SELECT kind, lo, hi FROM kind_bounds WHERE fingerprint = ?"
                    " ORDER BY kind",
                    (fingerprint,),
                )
            ]

    def seed_kind_bounds(
        self, fingerprint: str, rows: list[tuple[str, int, int | None]]
    ) -> None:
        """Replace one fingerprint's ``kind_bounds`` rows with ``rows``.

        Used by :class:`~repro.engine.shards.ShardedResultStore` to replicate
        the owning shard's cross-method knowledge to the other shards, where
        no ``results`` rows back it — so the rows are *seeded*, not derived.
        A later :meth:`put` of the same fingerprint on this store would
        recompute from local rows only; the sharded wrapper re-replicates
        after every put to keep the replicas authoritative.
        """
        with self._lock:
            self._conn.execute(
                "DELETE FROM kind_bounds WHERE fingerprint = ?", (fingerprint,)
            )
            self._conn.executemany(
                "INSERT INTO kind_bounds (fingerprint, kind, lo, hi)"
                " VALUES (?, ?, ?, ?)",
                [(fingerprint, kind, lo, hi) for kind, lo, hi in rows],
            )

    def export_rows(self) -> list[tuple]:
        """Every ``results`` row in insertable form (migration to shards)."""
        with self._lock:
            return self._conn.execute(
                "SELECT fingerprint, method, k, timeout, verdict, seconds,"
                " decomposition, extra, created_at, last_used, use_count"
                " FROM results ORDER BY fingerprint, method, k, timeout"
            ).fetchall()

    def import_rows(self, rows: list[tuple]) -> None:
        """Bulk-load rows exported by :meth:`export_rows`, then re-derive
        the bounds and kind_bounds indices for every touched fingerprint.

        Timestamps and use counts are preserved, so LRU ordering survives a
        migration to a sharded layout.
        """
        if not rows:
            return
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO results"
                " (fingerprint, method, k, timeout, verdict, seconds,"
                "  decomposition, extra, created_at, last_used, use_count)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            touched = {(row[0], row[1]) for row in rows}
            for fp, method in touched:
                if method in MONOTONE_METHODS:
                    self._recompute_bounds(fp, method)
            for fp in {fp for fp, _ in touched}:
                self._recompute_kind_bounds(fp)

    def adopt_meta(self, hits: int = 0, misses: int = 0, implied: int = 0) -> None:
        """Carry lifetime counters over from a store being migrated away."""
        with self._lock:
            if hits:
                self._bump_meta("hits", hits)
            if misses:
                self._bump_meta("misses", misses)
            if implied:
                self._bump_meta("implied", implied)

    # ------------------------------------------------------------ accounting

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def record_hits(self, count: int, implied: int = 0) -> None:
        """Book ``count`` cache hits observed via non-recording peeks.

        ``implied`` says how many of them the bounds index answered.
        """
        with self._lock:
            if count > 0:
                self.session_hits += count
                self._bump_meta("hits", count)
            if implied > 0:
                self.session_implied += implied
                self._bump_meta("implied", implied)
        _M_HITS.inc(max(0, count))
        _M_IMPLIED.inc(max(0, implied))

    def record_misses(self, count: int) -> None:
        """Book ``count`` cache misses observed via non-recording peeks."""
        with self._lock:
            if count > 0:
                self.session_misses += count
                self._bump_meta("misses", count)
        _M_MISSES.inc(max(0, count))

    def _bump_meta(self, key: str, amount: int = 1) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = value + ?",
            (key, amount, amount),
        )

    def _meta(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else 0

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                entries=len(self),
                hits=self._meta("hits"),
                misses=self._meta("misses"),
                session_hits=self.session_hits,
                session_misses=self.session_misses,
                implied=self._meta("implied"),
                session_implied=self.session_implied,
            )

    def methods(self) -> dict[str, int]:
        """Entry counts per method (for ``repro cache stats``)."""
        with self._lock:
            return dict(
                self._conn.execute(
                    "SELECT method, COUNT(*) FROM results GROUP BY method ORDER BY method"
                ).fetchall()
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore {self.path!r}: {len(self)} entries>"
