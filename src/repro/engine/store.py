"""A SQLite-backed, content-addressed store of decomposition results.

Every row is one ``Check(H, k)`` (or portfolio / width-building-block)
verdict, keyed by ``(fingerprint, method, k, timeout)``.  Definite answers
(yes / no) are facts about the hypergraph and therefore *timeout
independent*: a lookup that misses its exact timeout key still returns a
stored definite answer for the same ``(fingerprint, method, k)``.  Timeout
verdicts, by contrast, only replay for the exact budget they were observed
under.

Serialized decompositions travel through :mod:`repro.io.json_io`, so
anything the store hands back can be validated by the independent checkers
in :mod:`repro.core.decomposition`.

The store keeps lifetime hit/miss counters in a ``meta`` table (surfaced by
``repro cache stats``) plus per-session counters, and evicts
least-recently-used rows once ``max_entries`` is exceeded.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.decomp.driver import NO, YES, CheckOutcome
from repro.errors import ReproError
from repro.io.json_io import decomposition_from_json, decomposition_to_json

__all__ = ["ResultStore", "StoredResult", "StoreStats", "timeout_key"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT NOT NULL,
    method      TEXT NOT NULL,
    k           INTEGER NOT NULL,
    timeout     TEXT NOT NULL,
    verdict     TEXT NOT NULL,
    seconds     REAL NOT NULL,
    decomposition TEXT,
    extra       TEXT,
    created_at  REAL NOT NULL,
    last_used   REAL NOT NULL,
    use_count   INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (fingerprint, method, k, timeout)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def timeout_key(timeout: float | None) -> str:
    """Normalise a timeout into a stable text key (``None`` → ``"none"``)."""
    return "none" if timeout is None else repr(float(timeout))


@dataclass
class StoredResult:
    """One cached verdict, decomposition still in its serialized form."""

    verdict: str
    seconds: float
    decomposition_json: str | None = None
    extra: dict | None = None

    def outcome(self, hypergraph: Hypergraph | None = None) -> CheckOutcome:
        """Rebuild the :class:`CheckOutcome` (decomposition needs the graph)."""
        decomposition = None
        if self.decomposition_json is not None and hypergraph is not None:
            decomposition = decomposition_from_json(self.decomposition_json, hypergraph)
        return CheckOutcome(self.verdict, self.seconds, decomposition)


@dataclass
class StoreStats:
    """Lifetime (persisted) and session hit/miss accounting."""

    entries: int
    hits: int
    misses: int
    session_hits: int
    session_misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultStore:
    """Persistent result cache; use as a context manager or call :meth:`close`.

    Parameters
    ----------
    path:
        SQLite file path, or ``":memory:"`` for an ephemeral store.
    max_entries:
        LRU eviction threshold; ``None`` disables eviction.
    """

    def __init__(self, path: str | Path = ":memory:", max_entries: int | None = None):
        self.path = str(path)
        self.max_entries = max_entries
        self.session_hits = 0
        self.session_misses = 0
        try:
            self._conn = sqlite3.connect(self.path, isolation_level=None)
            self._conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as exc:
            raise ReproError(f"{self.path} is not a result store: {exc}") from exc

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- cache

    def get(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        record: bool = True,
    ) -> StoredResult | None:
        """Look up one result; counts a hit/miss and touches the LRU clock.

        ``record=False`` peeks without touching the hit/miss counters (the
        engine's batch replay books its lookups via :meth:`record_hits`
        only once it knows the whole job was served from cache).
        """
        row = self._conn.execute(
            "SELECT rowid, verdict, seconds, decomposition, extra FROM results "
            "WHERE fingerprint = ? AND method = ? AND k = ? AND timeout = ?",
            (fingerprint, method, k, timeout_key(timeout)),
        ).fetchone()
        if row is None:
            # Definite answers are timeout independent; reuse one recorded
            # under any other budget.
            row = self._conn.execute(
                "SELECT rowid, verdict, seconds, decomposition, extra FROM results "
                "WHERE fingerprint = ? AND method = ? AND k = ? "
                "AND verdict IN (?, ?) LIMIT 1",
                (fingerprint, method, k, YES, NO),
            ).fetchone()
        if row is None:
            if record:
                self.session_misses += 1
                self._bump_meta("misses")
            return None
        rowid, verdict, seconds, decomposition, extra = row
        self._conn.execute(
            "UPDATE results SET last_used = ?, use_count = use_count + 1 "
            "WHERE rowid = ?",
            (time.time(), rowid),
        )
        if record:
            self.session_hits += 1
            self._bump_meta("hits")
        return StoredResult(
            verdict,
            seconds,
            decomposition,
            json.loads(extra) if extra else None,
        )

    def put(
        self,
        fingerprint: str,
        method: str,
        k: int,
        timeout: float | None,
        outcome: CheckOutcome,
        extra: dict | None = None,
    ) -> None:
        """Persist one outcome (replacing any stale row under the same key)."""
        decomposition = (
            decomposition_to_json(outcome.decomposition)
            if outcome.decomposition is not None
            else None
        )
        now = time.time()
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, method, k, timeout, verdict, seconds, decomposition,"
            " extra, created_at, last_used, use_count) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
            (
                fingerprint,
                method,
                k,
                timeout_key(timeout),
                outcome.verdict,
                outcome.seconds,
                decomposition,
                json.dumps(extra, sort_keys=True) if extra else None,
                now,
                now,
            ),
        )
        self._evict()

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        excess = len(self) - self.max_entries
        if excess > 0:
            self._conn.execute(
                "DELETE FROM results WHERE rowid IN "
                "(SELECT rowid FROM results ORDER BY last_used ASC LIMIT ?)",
                (excess,),
            )

    def clear(self) -> None:
        """Drop every cached result and reset the lifetime counters."""
        self._conn.execute("DELETE FROM results")
        self._conn.execute("DELETE FROM meta")

    # ------------------------------------------------------------ accounting

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def record_hits(self, count: int) -> None:
        """Book ``count`` cache hits observed via non-recording peeks."""
        if count > 0:
            self.session_hits += count
            self._bump_meta("hits", count)

    def record_misses(self, count: int) -> None:
        """Book ``count`` cache misses observed via non-recording peeks."""
        if count > 0:
            self.session_misses += count
            self._bump_meta("misses", count)

    def _bump_meta(self, key: str, amount: int = 1) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = value + ?",
            (key, amount, amount),
        )

    def _meta(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else 0

    @property
    def stats(self) -> StoreStats:
        return StoreStats(
            entries=len(self),
            hits=self._meta("hits"),
            misses=self._meta("misses"),
            session_hits=self.session_hits,
            session_misses=self.session_misses,
        )

    def methods(self) -> dict[str, int]:
        """Entry counts per method (for ``repro cache stats``)."""
        return dict(
            self._conn.execute(
                "SELECT method, COUNT(*) FROM results GROUP BY method ORDER BY method"
            ).fetchall()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore {self.path!r}: {len(self)} entries>"
