"""A SQLite-backed persistent job queue for distributed dispatch.

The queue is the durable hand-off point between a dispatcher (the process
that *owns* a batch — ``repro serve --queue`` or a
:class:`~repro.engine.remote.Dispatcher` embedded in a script) and any
number of pull-workers (``repro worker``) that may live in other processes
or on other hosts sharing the queue file.  A row is one serialised
:class:`~repro.engine.jobs.JobSpec` plus its lifecycle state:

.. code-block:: text

    pending ──lease──▶ leased ──complete──▶ done
       ▲                 │ │
       │        fail ────┘ └──── lease expires (requeue_expired)
       │                 │
       └──backoff── failed                    attempts budget spent
                         └────────────────▶ dead

``pending`` and ``failed`` rows are *leasable* (``failed`` only once its
exponential-backoff ``not_before`` passes); ``done`` and ``dead`` are
terminal.  A lease grants one worker exclusive execution rights until its
deadline; the worker heartbeats :meth:`JobQueue.extend` while executing and
the deadline is **monotone** — an extension never shrinks it.  Workers that
die silently (SIGKILL, OOM, powered-off host) are handled by the
:meth:`JobQueue.requeue_expired` sweeper: once a lease deadline passes, the
job returns to the leasable pool (consuming one attempt) or goes ``dead``
when its per-job attempt budget is spent.

Completion is fenced: :meth:`complete` and :meth:`fail` only apply while the
caller still holds the live lease, so a worker that lost its lease to the
sweeper cannot overwrite the re-execution's result — re-leased jobs finish
exactly once in the queue no matter how many zombies report late.

Concurrency mirrors :class:`~repro.engine.store.ResultStore`: every public
method serialises on an internal RLock, file-backed queues run in WAL mode
with a busy timeout, and every read-modify-write step (leasing, sweeping)
runs inside a ``BEGIN IMMEDIATE`` transaction so two worker *processes*
can never lease the same row.

Time is read through an injectable ``clock`` callable (default
:func:`time.time`) so tests can skew it to expire leases deterministically.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.core.hypergraph import Hypergraph
from repro.engine.jobs import JobSpec
from repro.errors import ReproError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TraceContext

__all__ = [
    "JobQueue",
    "JobLease",
    "EnqueuedJob",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "DEAD",
    "payload_from_spec",
    "spec_from_payload",
]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
DEAD = "dead"

#: States a lease can be granted from.
_LEASABLE = (PENDING, FAILED)
#: States no transition ever leaves.
TERMINAL = (DONE, DEAD)

# Process-wide queue metric families, published at the mutation sites (the
# cross-process truth lives in the queue file's own counters — see
# JobQueue.stats(); these families describe *this* process's activity).
_M_ENQUEUED = REGISTRY.counter(
    "repro_queue_enqueued_total", "Jobs enqueued into a persistent job queue."
)
_M_LEASED = REGISTRY.counter(
    "repro_queue_leased_total", "Job leases granted to pull-workers."
)
_M_COMPLETED = REGISTRY.counter(
    "repro_queue_completed_total", "Queue jobs completed by their lease holder."
)
_M_FAILED = REGISTRY.counter(
    "repro_queue_failed_total", "Queue job attempts reported failed."
)
_M_EXPIRED = REGISTRY.counter(
    "repro_queue_expired_total", "Leases revoked by the expiry sweeper."
)
_M_RETRIES = REGISTRY.counter(
    "repro_queue_retries_total",
    "Jobs returned to the leasable pool after a failed or expired attempt.",
)
_M_DEAD = REGISTRY.counter(
    "repro_queue_dead_total", "Jobs declared dead after their attempt budget."
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    key            TEXT NOT NULL UNIQUE,
    payload        TEXT NOT NULL,
    state          TEXT NOT NULL DEFAULT 'pending',
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL DEFAULT 3,
    not_before     REAL NOT NULL DEFAULT 0,
    worker         TEXT,
    lease_deadline REAL,
    result         TEXT,
    error          TEXT,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, not_before, id);
CREATE TABLE IF NOT EXISTS queue_meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def payload_from_spec(spec: JobSpec) -> dict:
    """Serialise a :class:`JobSpec` into the JSON carried by a queue row.

    Unlike journal lines, queue payloads must carry the hypergraph itself —
    the leasing worker has never seen the instance.  Edges are written as
    sorted vertex lists so payloads are byte-stable for identical specs.

    >>> from repro.core.hypergraph import Hypergraph
    >>> h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"]}, name="path")
    >>> spec = JobSpec.check(h, 2, method="hd")
    >>> spec_from_payload(payload_from_spec(spec)).key() == spec.key()
    True
    """
    payload = {
        "kind": spec.kind,
        "method": spec.method,
        "k": spec.k,
        "max_k": spec.max_k,
        "timeout": spec.timeout,
        "name": spec.hypergraph.name,
        "edges": {
            name: sorted(vertices)
            for name, vertices in spec.hypergraph.edges.items()
        },
    }
    if spec.trace is not None:
        payload["trace"] = [spec.trace[0], spec.trace[1]]
    return payload


def spec_from_payload(payload: dict) -> JobSpec:
    """Rebuild the :class:`JobSpec` a queue row carries (worker side)."""
    hypergraph = Hypergraph(payload["edges"], name=str(payload.get("name", "")))
    trace = payload.get("trace")
    return JobSpec(
        kind=str(payload["kind"]),
        hypergraph=hypergraph,
        method=str(payload.get("method", "hd")),
        k=payload.get("k"),
        max_k=payload.get("max_k"),
        timeout=payload.get("timeout"),
        trace=TraceContext(trace[0], trace[1]) if trace else None,
    )


@dataclass(frozen=True)
class JobLease:
    """One granted lease: the job, its payload, and the deadline to beat."""

    job_id: int
    key: tuple
    payload: dict
    attempts: int
    max_attempts: int
    deadline: float

    def spec(self) -> JobSpec:
        return spec_from_payload(self.payload)


@dataclass(frozen=True)
class EnqueuedJob:
    """The (idempotent) outcome of one enqueue: the row as it now stands."""

    job_id: int
    state: str
    #: The stored result payload when the job already finished (``done``).
    result: dict | None
    #: False when an identical job (same spec key) was already queued.
    created: bool


class JobQueue:
    """Durable lease-based job queue; share one file between processes.

    >>> from repro.core.hypergraph import Hypergraph
    >>> queue = JobQueue()                           # ephemeral, in-memory
    >>> h = Hypergraph({"r": ["x", "y"]}, name="h")
    >>> job = queue.enqueue(JobSpec.check(h, 1))
    >>> lease = queue.lease("w1", 1)[0]
    >>> queue.lease("w2", 1)                         # no double-lease
    []
    >>> queue.complete("w1", lease.job_id, {"verdict": "yes"})
    True
    >>> queue.stats()["done"]
    1

    Parameters
    ----------
    path:
        SQLite file path, or ``":memory:"`` for an ephemeral queue (single
        process only — cross-process sharing needs a file).
    max_attempts:
        Default per-job lease budget: how many times a job may be leased
        before an expiry or failure sends it to ``dead``.
    backoff / backoff_cap:
        Exponential retry delay: attempt ``n``'s failure parks the job for
        ``min(backoff * 2**(n-1), backoff_cap)`` seconds.
    lease_seconds:
        Default lease duration when :meth:`lease`/:meth:`extend` omit one.
    clock:
        Time source (seconds).  Injectable for deterministic lease-expiry
        tests; every process sharing a queue file must use comparable
        clocks (the default, wall time, is the sane choice).
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        max_attempts: int = 3,
        backoff: float = 0.25,
        backoff_cap: float = 30.0,
        lease_seconds: float = 30.0,
        clock=time.time,
    ):
        self.path = str(path)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff = max(0.0, float(backoff))
        self.backoff_cap = max(0.0, float(backoff_cap))
        self.lease_seconds = float(lease_seconds)
        self.clock = clock
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                self.path, isolation_level=None, check_same_thread=False
            )
            if self.path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA busy_timeout=5000")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as exc:
            raise ReproError(f"{self.path} is not a job queue: {exc}") from exc

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]

    @contextmanager
    def _txn(self):
        """A write transaction: leasing/sweeping must be atomic across
        processes, and autocommit mode would let two workers SELECT the same
        pending rows before either UPDATEs them."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    # --------------------------------------------------------------- enqueue

    def enqueue(
        self,
        spec: JobSpec | dict,
        key: tuple | None = None,
        max_attempts: int | None = None,
    ) -> EnqueuedJob:
        """Add one job; idempotent on the spec's content-addressed key.

        Re-enqueueing an identical job (same :meth:`JobSpec.key`) returns
        the existing row — including its stored result when it already
        finished, which is how a restarted dispatcher reconciles completions
        it never saw (see :class:`~repro.engine.remote.Dispatcher`).
        """
        if isinstance(spec, JobSpec):
            payload = payload_from_spec(spec)
            key = spec.key()
        else:
            if key is None:
                raise ReproError("enqueue of a raw payload needs an explicit key")
            payload = dict(spec)
        key_text = json.dumps(list(key))
        budget = self.max_attempts if max_attempts is None else max(1, int(max_attempts))
        with self._lock, self._txn():
            row = self._conn.execute(
                "SELECT id, state, result FROM jobs WHERE key = ?", (key_text,)
            ).fetchone()
            if row is not None:
                job_id, state, result = row
                return EnqueuedJob(
                    job_id, state, json.loads(result) if result else None, False
                )
            now = self.clock()
            cursor = self._conn.execute(
                "INSERT INTO jobs (key, payload, state, attempts, max_attempts,"
                " not_before, created_at, updated_at)"
                " VALUES (?, ?, ?, 0, ?, 0, ?, ?)",
                (key_text, json.dumps(payload, sort_keys=True), PENDING, budget, now, now),
            )
            self._bump("enqueued")
        _M_ENQUEUED.inc()
        return EnqueuedJob(cursor.lastrowid, PENDING, None, True)

    # ---------------------------------------------------------------- leases

    def lease(
        self,
        worker_id: str,
        n: int = 1,
        lease_seconds: float | None = None,
    ) -> list[JobLease]:
        """Grant up to ``n`` exclusive leases to ``worker_id`` (oldest first).

        Only leasable rows whose backoff has elapsed are considered; granting
        consumes one attempt from each job's budget.  The SELECT and UPDATE
        run in one immediate transaction, so concurrent workers (threads or
        processes) can never lease the same row while its lease is live.
        """
        seconds = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        granted: list[JobLease] = []
        marks = ",".join("?" for _ in _LEASABLE)
        with self._lock, self._txn():
            now = self.clock()
            rows = self._conn.execute(
                f"SELECT id, key, payload, attempts, max_attempts FROM jobs"
                f" WHERE state IN ({marks}) AND not_before <= ?"
                f" ORDER BY id LIMIT ?",
                (*_LEASABLE, now, max(0, int(n))),
            ).fetchall()
            deadline = now + seconds
            for job_id, key_text, payload_text, attempts, budget in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, worker = ?, lease_deadline = ?,"
                    " attempts = attempts + 1, updated_at = ? WHERE id = ?",
                    (LEASED, worker_id, deadline, now, job_id),
                )
                granted.append(
                    JobLease(
                        job_id,
                        tuple(json.loads(key_text)),
                        json.loads(payload_text),
                        attempts + 1,
                        budget,
                        deadline,
                    )
                )
            if granted:
                self._bump("leased", len(granted))
        _M_LEASED.inc(len(granted))
        return granted

    def extend(
        self,
        worker_id: str,
        job_ids: list[int],
        lease_seconds: float | None = None,
    ) -> int:
        """Heartbeat: push the lease deadlines of still-held jobs forward.

        Deadlines are monotone — ``MAX(current, now + lease_seconds)`` — so a
        late heartbeat never shortens a lease.  Returns how many of the jobs
        were actually extended; a job missing from the count lost its lease
        (expired and re-leased elsewhere) and its work should be abandoned.
        """
        if not job_ids:
            return 0
        seconds = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        marks = ",".join("?" for _ in job_ids)
        with self._lock, self._txn():
            now = self.clock()
            cursor = self._conn.execute(
                f"UPDATE jobs SET lease_deadline = MAX(lease_deadline, ?),"
                f" updated_at = ? WHERE state = ? AND worker = ?"
                f" AND id IN ({marks})",
                (now + seconds, now, LEASED, worker_id, *job_ids),
            )
            return cursor.rowcount

    def complete(self, worker_id: str, job_id: int, result: dict) -> bool:
        """Record a finished job; only the live lease holder may.

        Returns ``False`` when the lease was already revoked (the sweeper
        expired it, or another worker completed the re-lease) — the caller's
        result is discarded so re-executed jobs finish exactly once here.
        """
        with self._lock, self._txn():
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = NULL,"
                " updated_at = ? WHERE id = ? AND state = ? AND worker = ?",
                (
                    DONE,
                    json.dumps(result, sort_keys=True),
                    self.clock(),
                    job_id,
                    LEASED,
                    worker_id,
                ),
            )
            done = cursor.rowcount == 1
            if done:
                self._bump("completed")
        if done:
            _M_COMPLETED.inc()
        return done

    def fail(self, worker_id: str, job_id: int, error: str) -> bool:
        """Report a failed attempt; backoff-retries or kills the job.

        With budget left the job parks in ``failed`` until its exponential
        backoff elapses; otherwise it goes ``dead`` with the error recorded.
        Same lease fencing as :meth:`complete`.
        """
        with self._lock, self._txn():
            row = self._conn.execute(
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE id = ? AND state = ? AND worker = ?",
                (job_id, LEASED, worker_id),
            ).fetchone()
            if row is None:
                return False
            attempts, budget = row
            now = self.clock()
            died = attempts >= budget
            if died:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, worker = NULL,"
                    " lease_deadline = NULL, updated_at = ? WHERE id = ?",
                    (DEAD, error, now, job_id),
                )
                self._bump("dead")
            else:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, worker = NULL,"
                    " lease_deadline = NULL, not_before = ?, updated_at = ?"
                    " WHERE id = ?",
                    (FAILED, error, now + self._backoff_for(attempts), now, job_id),
                )
                self._bump("retries")
            self._bump("failed")
        _M_FAILED.inc()
        (_M_DEAD if died else _M_RETRIES).inc()
        return True

    def _backoff_for(self, attempts: int) -> float:
        """Exponential backoff after the ``attempts``-th attempt failed."""
        return min(self.backoff * 2 ** max(0, attempts - 1), self.backoff_cap)

    def requeue_expired(self) -> int:
        """Sweep expired leases back to the pool (or to ``dead``).

        The recovery path for silently dead workers: every leased row whose
        deadline passed is either returned to the leasable pool (budget
        permitting, with backoff) or declared ``dead``.  Returns how many
        leases were revoked.  Dispatchers run this periodically; ``repro
        queue requeue`` runs it manually.
        """
        with self._lock, self._txn():
            now = self.clock()
            rows = self._conn.execute(
                "SELECT id, attempts, max_attempts FROM jobs"
                " WHERE state = ? AND lease_deadline < ?",
                (LEASED, now),
            ).fetchall()
            died = retried = 0
            for job_id, attempts, budget in rows:
                if attempts >= budget:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, error = ?, worker = NULL,"
                        " lease_deadline = NULL, updated_at = ? WHERE id = ?",
                        (DEAD, f"lease expired after {attempts} attempts", now, job_id),
                    )
                    died += 1
                else:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, worker = NULL,"
                        " lease_deadline = NULL, not_before = ?, updated_at = ?"
                        " WHERE id = ?",
                        (PENDING, now + self._backoff_for(attempts), now, job_id),
                    )
                    retried += 1
            if rows:
                self._bump("expired", len(rows))
                if died:
                    self._bump("dead", died)
                if retried:
                    self._bump("retries", retried)
        _M_EXPIRED.inc(len(rows))
        _M_DEAD.inc(died)
        _M_RETRIES.inc(retried)
        return len(rows)

    def resurrect_dead(self) -> int:
        """Give every ``dead`` job a fresh attempt budget (operator override)."""
        with self._lock, self._txn():
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, attempts = 0, error = NULL,"
                " not_before = 0, updated_at = ? WHERE state = ?",
                (PENDING, self.clock(), DEAD),
            )
            return cursor.rowcount

    # --------------------------------------------------------------- reading

    def poll(self, job_ids: list[int]) -> dict[int, tuple[str, dict | None, str | None]]:
        """Terminal outcomes among ``job_ids``: ``{id: (state, result, error)}``.

        Only ``done``/``dead`` rows are returned; the dispatcher's wait loop
        calls this until every job it enqueued shows up.
        """
        if not job_ids:
            return {}
        marks = ",".join("?" for _ in job_ids)
        with self._lock:
            rows = self._conn.execute(
                f"SELECT id, state, result, error FROM jobs"
                f" WHERE id IN ({marks}) AND state IN (?, ?)",
                (*job_ids, DONE, DEAD),
            ).fetchall()
        return {
            job_id: (state, json.loads(result) if result else None, error)
            for job_id, state, result, error in rows
        }

    def job(self, job_id: int) -> dict | None:
        """One row as a dict (introspection / tests), or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT id, key, state, attempts, max_attempts, not_before,"
                " worker, lease_deadline, result, error FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        names = (
            "id", "key", "state", "attempts", "max_attempts", "not_before",
            "worker", "lease_deadline", "result", "error",
        )
        record = dict(zip(names, row))
        record["key"] = tuple(json.loads(record["key"]))
        record["result"] = json.loads(record["result"]) if record["result"] else None
        return record

    def stats(self) -> dict:
        """Queue health as one dict: per-state counts, lifetime counters,
        and ``depth`` (rows leasable right now — backoff-parked rows are in
        ``backlog`` but not ``depth``)."""
        with self._lock:
            now = self.clock()
            states = dict.fromkeys((PENDING, LEASED, DONE, FAILED, DEAD), 0)
            for state, count in self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ):
                states[state] = count
            marks = ",".join("?" for _ in _LEASABLE)
            depth = self._conn.execute(
                f"SELECT COUNT(*) FROM jobs WHERE state IN ({marks})"
                f" AND not_before <= ?",
                (*_LEASABLE, now),
            ).fetchone()[0]
            counters = {
                key: self._meta(key)
                for key in (
                    "enqueued", "leased", "completed", "failed",
                    "expired", "retries", "dead",
                )
            }
        return {
            **states,
            "total": sum(states.values()),
            "depth": depth,
            "backlog": states[PENDING] + states[FAILED],
            "counters": counters,
        }

    # ------------------------------------------------------------- accounting

    def _bump(self, key: str, amount: int = 1) -> None:
        self._conn.execute(
            "INSERT INTO queue_meta (key, value) VALUES (?, ?)"
            " ON CONFLICT(key) DO UPDATE SET value = value + ?",
            (key, amount, amount),
        )

    def _meta(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM queue_meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobQueue {self.path!r}: {len(self)} jobs>"
