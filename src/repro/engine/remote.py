"""Pull-workers and the dispatcher: distributed execution over a job queue.

Two roles share one :class:`~repro.engine.queue.JobQueue` file:

**Workers** (``repro worker --queue Q --cache C``, any number, any host that
can reach the two paths) run :class:`QueueWorker`: lease a wave of jobs,
rebuild their :class:`~repro.engine.jobs.JobSpec`\\ s, execute them through a
local :class:`~repro.engine.engine.DecompositionEngine` — which means the
existing packed wire protocol, kernel counters, ``worker.exec`` spans, and
write-back through the (shared, possibly sharded) result store all apply
unchanged — and report each job :meth:`~repro.engine.queue.JobQueue.complete`
or :meth:`~repro.engine.queue.JobQueue.fail`.  A daemon heartbeat extends the
wave's leases at a third of the lease interval for as long as the wave
executes, so slow jobs are not swept out from under a *live* worker; a
SIGKILLed worker stops heartbeating and its leases simply expire.

The **dispatcher** (:class:`Dispatcher`) is the batch owner's side: it
mirrors ``DecompositionEngine.run_batch`` — same signature, same
:class:`~repro.engine.engine.BatchReport` shape, same journal-resume and
store fast paths — but instead of executing cache-missed jobs in-process it
enqueues them and waits for workers to finish them, sweeping expired leases
while it waits.  Enqueueing is idempotent on the spec's content-addressed
key, so a dispatcher that crashed after enqueueing reconciles on restart:
jobs the workers finished in the meantime are adopted as resumed results,
jobs still queued are simply waited for again.

The split keeps every correctness property in one place: the queue proves
exclusive leases and exactly-once completion, the store proves verdicts,
and the dispatcher only *routes* — it never interprets results beyond the
journal payloads workers produce.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
import uuid

from repro.engine.engine import BatchReport, DecompositionEngine
from repro.engine.jobs import JobResult, JobSpec, Journal
from repro.engine.queue import DEAD, DONE, JobLease, JobQueue
from repro.errors import ReproError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.perf import counters as _kernel_counters, publish_delta

__all__ = ["QueueWorker", "Dispatcher", "run_worker"]

logger = logging.getLogger("repro.remote")

_M_WAVES = REGISTRY.counter(
    "repro_worker_waves_total", "Leased waves executed by queue workers."
)
_M_JOBS = REGISTRY.counter(
    "repro_worker_jobs_total", "Queue jobs executed by queue workers."
)
_M_LOST = REGISTRY.counter(
    "repro_worker_lost_leases_total",
    "Job results discarded because the lease was revoked mid-execution.",
)


def default_worker_id() -> str:
    """A worker identity unique across hosts, processes, and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _Heartbeat:
    """Extends a wave's leases on a timer until stopped.

    Runs as a daemon thread so a crashing worker process takes its
    heartbeat with it — which is exactly what lets the sweeper reclaim the
    leases.  The interval is a third of the lease duration: two beats may
    be missed (scheduler stalls, GC pauses) before a lease can expire.
    """

    def __init__(self, queue: JobQueue, worker_id: str, job_ids: list[int], lease_seconds: float):
        self.queue = queue
        self.worker_id = worker_id
        self.job_ids = job_ids
        self.lease_seconds = lease_seconds
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=self.lease_seconds)

    def _run(self) -> None:
        interval = max(0.05, self.lease_seconds / 3.0)
        while not self._stop.wait(interval):
            try:
                self.queue.extend(self.worker_id, self.job_ids, self.lease_seconds)
            except ReproError:  # pragma: no cover - queue closed under us
                return


class QueueWorker:
    """One pull-loop worker: lease, execute, heartbeat, report.

    Parameters
    ----------
    queue / engine:
        The shared job queue and the local execution engine.  The engine's
        store should be the cache shared with the dispatcher (same file or
        shard directory), so completed verdicts are visible to everyone.
    worker_id:
        Lease-holder identity; defaults to ``host-pid-random``.
    lease_n:
        Maximum jobs leased per wave (the wave executes as one
        ``run_batch``, so this is also the worker's fan-out unit).
    lease_seconds:
        Lease duration granted and heartbeat-extended while executing.
    poll:
        Idle sleep between empty lease attempts.
    """

    def __init__(
        self,
        queue: JobQueue,
        engine: DecompositionEngine,
        worker_id: str | None = None,
        lease_n: int = 4,
        lease_seconds: float = 30.0,
        poll: float = 0.2,
    ):
        self.queue = queue
        self.engine = engine
        self.worker_id = worker_id or default_worker_id()
        self.lease_n = max(1, int(lease_n))
        self.lease_seconds = float(lease_seconds)
        self.poll = float(poll)
        self.waves = 0
        self.completed = 0
        self.failed = 0
        self.lost = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the pull loop to exit after the current wave (thread-safe)."""
        self._stop.set()

    def run(
        self,
        max_idle: float | None = None,
        max_waves: int | None = None,
    ) -> int:
        """Pull and execute waves until stopped; returns jobs completed.

        ``max_idle`` exits after that many consecutive seconds without a
        lease (None = run forever); ``max_waves`` caps executed waves (test
        and smoke harnesses).  Both conditions are checked between waves —
        a wave in flight always finishes.
        """
        idle_since: float | None = None
        while not self._stop.is_set():
            if max_waves is not None and self.waves >= max_waves:
                break
            with TRACER.span(
                "worker.lease", worker=self.worker_id, want=self.lease_n
            ) as span:
                leases = self.queue.lease(
                    self.worker_id, self.lease_n, self.lease_seconds
                )
                span.set(granted=len(leases))
            if not leases:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif max_idle is not None and now - idle_since >= max_idle:
                    break
                self._stop.wait(self.poll)
                continue
            idle_since = None
            self.waves += 1
            _M_WAVES.inc()
            self._execute_wave(leases)
        return self.completed

    def _execute_wave(self, leases: list[JobLease]) -> None:
        specs: list[JobSpec] = []
        parsed: list[JobLease] = []
        for lease in leases:
            try:
                specs.append(lease.spec())
                parsed.append(lease)
            except (KeyError, TypeError, ValueError) as exc:
                # A payload this worker cannot rebuild will fail everywhere;
                # burn its attempts through the normal budget so it lands in
                # `dead` with the parse error recorded, not in a hot loop.
                self.queue.fail(self.worker_id, lease.job_id, f"bad payload: {exc}")
        if not parsed:
            return
        job_ids = [lease.job_id for lease in parsed]
        try:
            with _Heartbeat(self.queue, self.worker_id, job_ids, self.lease_seconds):
                report = self.engine.run_batch(specs)
        except Exception as exc:  # noqa: BLE001 - a wave must never kill the loop
            for lease in parsed:
                if self.queue.fail(self.worker_id, lease.job_id, repr(exc)):
                    self.failed += 1
            return
        for lease, result in zip(parsed, report.results):
            if self.queue.complete(self.worker_id, lease.job_id, result.payload()):
                self.completed += 1
                _M_JOBS.inc()
            else:
                # The sweeper revoked this lease mid-execution (e.g. the wave
                # outran even the heartbeats); the re-lease owns the outcome
                # now.  The verdict itself is not lost — run_batch already
                # wrote it to the shared store, so the re-execution replays
                # it from cache.
                self.lost += 1
                _M_LOST.inc()


def run_worker(
    queue_path: str,
    cache_path: str | None,
    jobs: int = 1,
    shards: int | None = None,
    worker_id: str | None = None,
    lease_n: int = 4,
    lease_seconds: float = 30.0,
    poll: float = 0.2,
    max_idle: float | None = None,
    max_waves: int | None = None,
) -> int:
    """CLI entry: run one pull-worker process until idle/stopped.

    Imported lazily by ``repro worker``; returns the completed-job count
    (the process exit code is 0 regardless — an idle worker is not an
    error).  SIGTERM/SIGINT ask the pull loop to stop *after the current
    wave* — leased jobs finish and report rather than being abandoned to
    the lease sweeper (SIGKILL remains the crash-drill path).
    """
    import signal as _signal

    from repro.engine.shards import open_result_store

    store = open_result_store(cache_path, shards=shards)
    with JobQueue(queue_path) as queue, DecompositionEngine(
        store=store, jobs=jobs
    ) as engine:
        worker = QueueWorker(
            queue,
            engine,
            worker_id=worker_id,
            lease_n=lease_n,
            lease_seconds=lease_seconds,
            poll=poll,
        )
        previous = {}
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                previous[sig] = _signal.signal(
                    sig, lambda _sig, _frame: worker.stop()
                )
            except ValueError:  # pragma: no cover - not the main thread
                pass
        try:
            return worker.run(max_idle=max_idle, max_waves=max_waves)
        finally:
            for sig, handler in previous.items():
                _signal.signal(sig, handler)


class Dispatcher:
    """Queue-backed drop-in for ``DecompositionEngine.run_batch``.

    The engine (when given) serves the same store fast paths as in-process
    dispatch — journal resume, exact-row replay, bounds-implied pruning —
    so only genuinely cold jobs ever reach the queue.  Workers execute
    those; the dispatcher sweeps expired leases while it waits, which makes
    worker crash recovery progress even when every worker is dead (the
    re-queued job is picked up by whichever worker returns first).

    ``run_batch`` blocks until every job is terminal, so it can sit behind
    :class:`~repro.service.scheduler.BatchScheduler`'s executor-thread
    dispatch exactly like the engine does.
    """

    def __init__(
        self,
        queue: JobQueue,
        engine: DecompositionEngine | None = None,
        poll: float = 0.05,
        sweep_interval: float = 0.5,
        wait_timeout: float | None = None,
    ):
        self.queue = queue
        self.engine = engine
        self.poll = float(poll)
        self.sweep_interval = float(sweep_interval)
        #: Overall wait cap per run_batch (None = wait forever).  Mostly a
        #: test/smoke guard: a production dispatcher should wait, because
        #: the sweeper guarantees every job terminates in done|dead.
        self.wait_timeout = wait_timeout
        self.dispatched = 0
        self.reconciled = 0

    def run_batch(
        self,
        specs: list[JobSpec],
        journal: "str | Journal | None" = None,
        deadline: float | None = None,
    ) -> BatchReport:
        """Execute a job list through the queue; same contract as the engine.

        Accounting mirrors :class:`BatchReport`'s in-process semantics:
        ``resumed`` counts journal (and reconciled-from-queue) skips,
        ``cache_hits``/``pruned`` count store replays — whether served
        locally before enqueueing or by the worker that leased the job —
        and ``executed`` counts jobs a worker actually ran.

        ``deadline`` bounds *this call's* queue wait, in seconds: once it
        passes, still-pending jobs resolve as ``error`` results ("deadline
        exceeded") and the batch returns — the scheduler's deadline
        propagation, hop four.  The jobs themselves stay in the queue;
        whichever worker leases them still writes their verdicts to the
        shared store, so later askers replay them.  Unlike the
        ``wait_timeout`` guard (which raises), a deadline is an expected,
        per-wave outcome, not a harness failure.
        """
        if journal is not None and not isinstance(journal, Journal):
            journal = Journal(journal)
        done = journal.load() if journal is not None else {}

        report = BatchReport(total=len(specs))
        results: list[JobResult | None] = [None] * len(specs)
        # job row id -> spec indices: duplicate specs in one batch collapse
        # onto a single queue row (enqueue is key-idempotent), but every
        # index still owes the caller a result.
        waiting: dict[int, list[int]] = {}

        for index, spec in enumerate(specs):
            payload = done.get(spec.key())
            if payload is not None:
                results[index] = JobResult.from_journal(spec, payload)
                report.resumed += 1
                continue
            replayed = self.engine.try_replay(spec) if self.engine is not None else None
            if replayed is not None:
                results[index] = replayed
                report.cache_hits += 1
                if replayed.implied:
                    report.pruned += 1
                if journal is not None:
                    journal.append(spec, replayed)
                continue
            job = self.queue.enqueue(spec)
            if job.state == DONE and job.result is not None:
                # A previous dispatcher run enqueued this spec and a worker
                # finished it while nobody was watching; adopt the stored
                # outcome instead of re-running.
                results[index] = JobResult.from_journal(spec, job.result)
                report.resumed += 1
                self.reconciled += 1
                if journal is not None:
                    journal.append(spec, results[index])
                continue
            if job.state == DEAD:
                results[index] = self._dead_result(spec, "exhausted before this run")
                continue
            indices = waiting.setdefault(job.job_id, [])
            if not indices:
                self.dispatched += 1
            indices.append(index)

        self._await(specs, results, waiting, report, journal, deadline)

        report.executed = sum(
            1
            for r in results
            if r is not None and not r.cached and not r.resumed and not r.implied
        )
        report.results = [r for r in results if r is not None]
        return report

    def _await(
        self,
        specs: list[JobSpec],
        results: list[JobResult | None],
        waiting: dict[int, list[int]],
        report: BatchReport,
        journal: Journal | None,
        wave_deadline: float | None = None,
    ) -> None:
        deadline = (
            None if self.wait_timeout is None else time.monotonic() + self.wait_timeout
        )
        cutoff = (
            None if wave_deadline is None else time.monotonic() + wave_deadline
        )
        last_sweep = time.monotonic()
        while waiting:
            finished = self.queue.poll(list(waiting))
            for job_id, (state, payload, error) in finished.items():
                merged = False
                for index in waiting.pop(job_id):
                    spec = specs[index]
                    if state == DONE and payload is not None:
                        result = JobResult.from_journal(spec, payload)
                        result.resumed = False
                        if result.cached:
                            report.cache_hits += 1
                            if result.implied:
                                report.pruned += 1
                        # The worker's kernel counters travelled in the
                        # payload; fold them into this process's totals like
                        # the packed wire protocol does for in-process waves
                        # (once per job, however many batch indices share it).
                        if result.counters and not merged:
                            _kernel_counters.merge(result.counters)
                            publish_delta(result.counters)
                            merged = True
                        results[index] = result
                    else:
                        results[index] = self._dead_result(spec, error or "job died")
                    if journal is not None and results[index] is not None:
                        journal.append(spec, results[index])
            if not waiting:
                return
            now = time.monotonic()
            if now - last_sweep >= self.sweep_interval:
                self.queue.requeue_expired()
                last_sweep = now
            if cutoff is not None and now >= cutoff:
                # Every remaining waiter's deadline has passed: stop waiting
                # (the jobs stay queued; workers still land their verdicts
                # in the shared store for the next asker).
                for job_id in list(waiting):
                    for index in waiting.pop(job_id):
                        results[index] = self._dead_result(
                            specs[index], "deadline exceeded waiting in queue"
                        )
                return
            if deadline is not None and now >= deadline:
                raise ReproError(
                    f"dispatcher timed out with {len(waiting)} job(s) pending"
                )
            time.sleep(self.poll)

    @staticmethod
    def _dead_result(spec: JobSpec, error: str) -> JobResult:
        """A terminal failure surfaced as an ``error`` verdict.

        Mirrors how the in-process engine surfaces a crashed worker
        process: the batch completes, the job's verdict says why it has no
        answer.
        """
        logger.warning("job %s died in the queue: %s", spec.name, error)
        return JobResult(spec, "error", 0.0, counters=None)

    def stats(self) -> dict:
        """Dispatcher- plus queue-level accounting for ``/stats``."""
        return {
            "dispatched": self.dispatched,
            "reconciled": self.reconciled,
            **self.queue.stats(),
        }
