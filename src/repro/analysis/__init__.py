"""The empirical study (Section 6) as reusable analysis drivers.

* :mod:`repro.analysis.hw_analysis` — the Figure 4 protocol;
* :mod:`repro.analysis.ghw_analysis` — Tables 3 and 4;
* :mod:`repro.analysis.fractional_analysis` — Tables 5 and 6;
* :mod:`repro.analysis.correlation` — Figure 5;
* :mod:`repro.analysis.experiments` — one entry point per paper artefact,
  each returning structured rows plus a rendered ASCII table.
"""

from repro.analysis.correlation import correlation_matrix
from repro.analysis.hw_analysis import HwAnalysis, run_hw_analysis
from repro.analysis.ghw_analysis import GhwAnalysis, run_ghw_analysis
from repro.analysis.fractional_analysis import (
    FractionalAnalysis,
    run_fractional_analysis,
)

__all__ = [
    "HwAnalysis",
    "run_hw_analysis",
    "GhwAnalysis",
    "run_ghw_analysis",
    "FractionalAnalysis",
    "run_fractional_analysis",
    "correlation_matrix",
]
