"""The GHD-algorithm comparison of Tables 3 and 4.

Protocol (Section 6.4): for every hypergraph with (upper bound on) hw equal
to k ∈ {3, 4, 5, 6}, try to solve ``Check(GHD, k−1)`` — i.e. improve the
width by one — with each of the three algorithms under a timeout.  Table 3
reports, per algorithm and per k, how many attempts terminated and their
average runtime, split into yes- and no-answers.  Table 4 reports the
portfolio verdict ("run all three in parallel, first answer wins").

Side effects on the repository: a definite "no" for ``Check(GHD, k−1)``
establishes ``ghw = hw = k`` *and* closes hw gaps (``hw ≥ k`` follows since
``hw ≥ ghw``) — the paper's gap-filling observation; a "yes" establishes
``ghw ≤ k − 1 < hw``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchmark.repository import BenchmarkEntry, HyperBenchRepository
from repro.decomp.driver import (
    NO,
    TIMEOUT,
    YES,
    CheckOutcome,
    _portfolio_algorithms,
    ghd_portfolio,
)

__all__ = ["AlgorithmCell", "GhwAnalysis", "run_ghw_analysis"]


@dataclass
class AlgorithmCell:
    """Solved counts and times for one (algorithm, k) pair — Table 3 cells."""

    yes: int = 0
    no: int = 0
    timeout: int = 0
    yes_seconds: float = 0.0
    no_seconds: float = 0.0

    def record(self, outcome: CheckOutcome) -> None:
        if outcome.verdict == YES:
            self.yes += 1
            self.yes_seconds += outcome.seconds
        elif outcome.verdict == NO:
            self.no += 1
            self.no_seconds += outcome.seconds
        else:
            self.timeout += 1

    @property
    def yes_avg(self) -> float:
        return self.yes_seconds / self.yes if self.yes else 0.0

    @property
    def no_avg(self) -> float:
        return self.no_seconds / self.no if self.no else 0.0


@dataclass
class GhwAnalysis:
    """Results of the Table 3 / Table 4 sweep."""

    ks: list[int]
    timeout: float | None
    totals: dict[int, int] = field(default_factory=dict)
    #: Table 3 cells keyed by (algorithm_name, k)
    algorithm_cells: dict[tuple[str, int], AlgorithmCell] = field(default_factory=dict)
    #: Table 4 cells keyed by k
    portfolio_cells: dict[int, AlgorithmCell] = field(default_factory=dict)

    def algorithm_cell(self, name: str, k: int) -> AlgorithmCell:
        key = (name, k)
        if key not in self.algorithm_cells:
            self.algorithm_cells[key] = AlgorithmCell()
        return self.algorithm_cells[key]

    def portfolio_cell(self, k: int) -> AlgorithmCell:
        if k not in self.portfolio_cells:
            self.portfolio_cells[k] = AlgorithmCell()
        return self.portfolio_cells[k]


def run_ghw_analysis(
    repository: HyperBenchRepository,
    ks: tuple[int, ...] = (3, 4, 5, 6),
    timeout: float | None = 2.0,
    algorithms: dict | None = None,
    engine: "object | None" = None,
) -> GhwAnalysis:
    """Run the Table 3 / Table 4 protocol (requires hw bounds from Figure 4).

    With an :class:`repro.engine.DecompositionEngine`, each portfolio races
    the three algorithms in parallel worker processes and cached verdicts
    are replayed from the result store (custom ``algorithms`` force the
    sequential path — the engine only races its registered methods).  A race
    whose verdict is already implied by the store's bounds index is skipped
    entirely; such replays contribute to Table 4 but, carrying no
    per-algorithm timings for this k, add nothing to Table 3.
    """
    custom = algorithms is not None
    # Resolved at call time from the method registry, so a method registered
    # as portfolio-eligible after import participates in the Table 3 cells.
    algorithms = algorithms or _portfolio_algorithms()
    analysis = GhwAnalysis(list(ks), timeout)
    for k in ks:
        candidates: list[BenchmarkEntry] = [
            entry for entry in repository if entry.hw_high == k and k >= 2
        ]
        analysis.totals[k] = len(candidates)
        for entry in candidates:
            portfolio, per_algorithm = ghd_portfolio(
                entry.hypergraph,
                k - 1,
                timeout,
                algorithms if custom else None,
                engine=engine,
            )
            for name, outcome in per_algorithm.items():
                # Race-cancelled attempts say nothing about the algorithm
                # itself (the paper's Table 3 gives every algorithm the full
                # budget in standalone runs), so they are not recorded.
                if not outcome.cancelled:
                    analysis.algorithm_cell(name, k).record(outcome)
            analysis.portfolio_cell(k).record(portfolio)
            if portfolio.verdict == YES:
                entry.ghw_high = k - 1
            elif portfolio.verdict == NO:
                # ghw > k-1 and ghw <= hw <= k, hence ghw = k; and since
                # hw >= ghw = k, the hw gap closes too (hw = k).
                entry.ghw_low = k
                entry.ghw_high = k
                entry.hw_low = k
    return analysis
