"""The hypertree-width analysis of Figure 4.

Protocol (Section 6.2): for every hypergraph, try ``Check(HD, k)`` for
k = 1; instances answering "no" or timing out are retried with k = 2, and so
on up to ``max_k``.  For every class and k we record how many instances
answered yes / no / timed out and the average runtime of the yes- and
no-answers — exactly the bars and labels of Figure 4.

As a side effect the repository's hw bounds are updated: a yes at k gives
``hw <= k`` (exact when all smaller k produced definite no-answers), a no at
k gives ``hw > k``.  The found HDs are stashed in ``entry.extra["hd"]`` for
the fractional-improvement study (Tables 5/6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchmark.classes import BenchmarkClass
from repro.benchmark.repository import BenchmarkEntry, HyperBenchRepository
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import NO, TIMEOUT, YES, timed_check

__all__ = ["HwCell", "HwAnalysis", "run_hw_analysis"]


@dataclass
class HwCell:
    """One (class, k) cell of Figure 4."""

    yes: int = 0
    no: int = 0
    timeout: int = 0
    yes_seconds: float = 0.0
    no_seconds: float = 0.0

    @property
    def yes_avg(self) -> float:
        return self.yes_seconds / self.yes if self.yes else 0.0

    @property
    def no_avg(self) -> float:
        return self.no_seconds / self.no if self.no else 0.0


@dataclass
class HwAnalysis:
    """Full result of the Figure 4 sweep."""

    max_k: int
    timeout: float | None
    cells: dict[tuple[BenchmarkClass, int], HwCell] = field(default_factory=dict)
    #: instances that still had no yes-answer after ``max_k``
    unresolved: list[str] = field(default_factory=list)

    def cell(self, benchmark_class: BenchmarkClass, k: int) -> HwCell:
        key = (benchmark_class, k)
        if key not in self.cells:
            self.cells[key] = HwCell()
        return self.cells[key]

    def ks_for(self, benchmark_class: BenchmarkClass) -> list[int]:
        return sorted(k for cls, k in self.cells if cls == benchmark_class)


def run_hw_analysis(
    repository: HyperBenchRepository,
    max_k: int = 6,
    timeout: float | None = 2.0,
    engine: "object | None" = None,
) -> HwAnalysis:
    """Run the Figure 4 protocol over a repository (updates its hw bounds).

    An optional :class:`repro.engine.DecompositionEngine` routes every
    ``Check(HD, k)`` through its result store and worker pool, so repeated
    sweeps over the same instances are served from cache — including answers
    *implied* by the store's bounds index (a stored yes at k' ≤ k, or no at
    k' ≥ k, settles k without running anything) — and uncooperative searches
    are killed at the hard timeout.
    """
    analysis = HwAnalysis(max_k, timeout)
    pending: list[BenchmarkEntry] = list(repository)
    clean_no: dict[str, bool] = {entry.name: True for entry in pending}

    for k in range(1, max_k + 1):
        still_pending: list[BenchmarkEntry] = []
        for entry in pending:
            if engine is not None:
                outcome = engine.check(entry.hypergraph, k, method="hd", timeout=timeout)
            else:
                outcome = timed_check(check_hd, entry.hypergraph, k, timeout)
            cell = analysis.cell(entry.benchmark_class, k)
            if outcome.verdict == YES:
                cell.yes += 1
                cell.yes_seconds += outcome.seconds
                entry.hw_high = k
                if clean_no[entry.name]:
                    entry.hw_low = k
                elif entry.hw_low is None:
                    entry.hw_low = 1
                entry.ghw_high = k  # ghw <= hw
                if entry.ghw_low is None:
                    entry.ghw_low = 1
                if outcome.decomposition is not None:
                    # A bounds-implied yes whose witness row lost its
                    # decomposition (eviction) must not erase a stored HD.
                    entry.extra["hd"] = outcome.decomposition
            elif outcome.verdict == NO:
                cell.no += 1
                cell.no_seconds += outcome.seconds
                if clean_no[entry.name]:
                    entry.hw_low = k + 1
                still_pending.append(entry)
            else:
                cell.timeout += 1
                clean_no[entry.name] = False
                still_pending.append(entry)
        pending = still_pending
        if not pending:
            break
    analysis.unresolved = [entry.name for entry in pending]
    for entry in pending:
        if entry.hw_low is None:
            entry.hw_low = 1
    return analysis
