"""The pairwise correlation analysis of Figure 5.

The paper correlates nine per-instance metrics — vertices, edges, arity,
degree, bip, 3-BMIP, 4-BMIP, VC-dimension and hypertree width — and finds
that arity correlates with hw while the tractability parameters (degree,
intersection sizes, VC-dim) have almost no impact on hw.  We compute the same
Pearson matrix with numpy over the repository's entries (instances lacking a
metric, e.g. an unresolved hw, are dropped pairwise).
"""

from __future__ import annotations

import math

import numpy as np

from repro.benchmark.repository import HyperBenchRepository

__all__ = ["METRICS", "correlation_matrix"]

METRICS = (
    "vertices",
    "edges",
    "arity",
    "degree",
    "bip",
    "3-BMIP",
    "4-BMIP",
    "VC-dim",
    "HW",
)


def _metric_vector(entry) -> list[float | None]:
    stats = entry.statistics
    hw = entry.hw_high
    return [
        float(stats.num_vertices) if stats else None,
        float(stats.num_edges) if stats else None,
        float(stats.arity) if stats else None,
        float(stats.degree) if stats else None,
        float(stats.bip) if stats else None,
        float(stats.bmip3) if stats else None,
        float(stats.bmip4) if stats else None,
        float(stats.vc_dim) if stats else None,
        float(hw) if hw is not None else None,
    ]


def correlation_matrix(repository: HyperBenchRepository) -> np.ndarray:
    """The 9×9 Pearson correlation matrix over all repository entries.

    Requires :meth:`compute_all_statistics` to have run; hw values come from
    the Figure 4 sweep (entries without an hw upper bound are skipped for
    pairs involving HW).  Constant columns yield correlation 0 (not NaN).
    """
    rows = [_metric_vector(entry) for entry in repository]
    n = len(METRICS)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            xs, ys = [], []
            for row in rows:
                if row[i] is not None and row[j] is not None:
                    xs.append(row[i])
                    ys.append(row[j])
            value = 0.0
            if len(xs) >= 2:
                x = np.asarray(xs)
                y = np.asarray(ys)
                sx, sy = x.std(), y.std()
                if sx > 0 and sy > 0:
                    value = float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
            if i == j:
                value = 1.0
            if math.isnan(value):  # pragma: no cover - guarded above
                value = 0.0
            matrix[i, j] = matrix[j, i] = value
    return matrix
