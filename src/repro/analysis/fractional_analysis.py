"""The fractional-improvement study of Tables 5 and 6.

For every hypergraph with a known HD of width ≤ k (stored by the Figure 4
sweep), two questions are asked:

* ``ImproveHD`` (Table 5): replacing the integral covers of *that* HD by
  fractional ones, by how much does the width drop?
* ``FracImproveHD`` (Table 6): searching over all HDs of width ≤ k, what is
  the best fractional width reachable?

Improvements ``c = k − fractional_width`` are bucketed exactly like the
paper's columns: ``c ≥ 1``, ``c ∈ [0.5, 1)``, ``c ∈ [0.1, 0.5)``, "no"
(c < 0.1) and timeouts.

With a :class:`repro.engine.DecompositionEngine` the study is store-backed
and warm-startable: the Figure 4 HD is replayed from the result store when
the repository lacks it (so the study runs against a warm store even in a
fresh process), finished ``FracImproveHD`` verdicts are cached under the
``fracimprove`` method key (feeding the bounds index — the search is monotone
in k) and replayed on later runs, the bisection of a cold entry is seeded
with the ``ImproveHD`` width reached from the stored HD, and with
``jobs > 1`` cold entries fan out through ``run_batch`` as killable workers
with hard timeouts — the cluster semantics the paper's Table 6 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.benchmark.repository import BenchmarkEntry, HyperBenchRepository
from repro.decomp.driver import NO, TIMEOUT, YES, CheckOutcome
from repro.decomp.fractional import (
    DEFAULT_PRECISION,
    best_fractional_improvement,
    improve_hd,
)
from repro.engine.fingerprint import fingerprint
from repro.errors import DeadlineExceeded
from repro.utils.deadline import Deadline

__all__ = [
    "ImprovementCell",
    "FractionalAnalysis",
    "run_fractional_analysis",
    "frac_improve_outcome",
    "bucket",
]

BUCKETS = (">=1", "[0.5,1)", "[0.1,0.5)", "no", "timeout")

#: Store method key for cached ``FracImproveHD`` verdicts — the name the
#: :mod:`repro.engine.methods` registry declares for the Table 6 method
#: (registered there with ``kind="fhw"`` but ``decision_kind="hw"``: its
#: verdicts are exactly ``Check(HD, k)``'s and propagate as hw evidence).
FRAC_METHOD = "fracimprove"


def bucket(improvement: float) -> str:
    """Map an improvement ``c = k − width`` to the paper's column label."""
    if improvement >= 1.0:
        return ">=1"
    if improvement >= 0.5:
        return "[0.5,1)"
    if improvement >= 0.1:
        return "[0.1,0.5)"
    return "no"


@dataclass
class ImprovementCell:
    """One row of Table 5 / Table 6 (per starting hw)."""

    counts: dict[str, int] = field(default_factory=lambda: {b: 0 for b in BUCKETS})

    def record(self, label: str) -> None:
        self.counts[label] += 1

    def as_row(self) -> list[int]:
        return [self.counts[b] for b in BUCKETS]


@dataclass
class FractionalAnalysis:
    """Results of the Tables 5/6 sweep."""

    improve_hd: dict[int, ImprovementCell] = field(default_factory=dict)
    frac_improve: dict[int, ImprovementCell] = field(default_factory=dict)

    def cell(self, table: str, k: int) -> ImprovementCell:
        target = self.improve_hd if table == "improve" else self.frac_improve
        if k not in target:
            target[k] = ImprovementCell()
        return target[k]


def _stored_hd(store, hypergraph, k: int, timeout: float | None):
    """Replay the Figure 4 HD from the result store (warm start), or ``None``.

    A bounds-implied "yes" qualifies too: its witnessing decomposition has
    width ≤ k by monotonicity.
    """
    stored = store.get(fingerprint(hypergraph), "hd", k, timeout)
    if stored is None or stored.verdict != YES:
        return None
    return stored.outcome(hypergraph).decomposition


def _record_frac(
    analysis: FractionalAnalysis,
    entry: BenchmarkEntry,
    k: int,
    outcome: CheckOutcome | None,
) -> None:
    """Book one Table 6 outcome (live, store-replayed, or batch-executed)."""
    if outcome is None or outcome.verdict == TIMEOUT:
        analysis.cell("frac", k).record("timeout")
        return
    if outcome.verdict == NO or outcome.decomposition is None:
        analysis.cell("frac", k).record("no")
        return
    width = outcome.decomposition.width
    analysis.cell("frac", k).record(bucket(k - width))
    entry.fhw_high = min(entry.fhw_high or float(k), width)


def frac_improve_outcome(
    hypergraph,
    k: int,
    timeout: float | None = None,
    precision: float = DEFAULT_PRECISION,
    store=None,
    upper_seed: float | None = None,
    lookup: bool = True,
) -> CheckOutcome:
    """Store-backed ``FracImproveHD`` for one instance.

    Replays an exact-k row from ``store`` when present (``lookup=False``
    skips the peek for callers that already missed), otherwise runs the
    bisection in-process — warm-started by ``upper_seed`` — and persists the
    outcome.  Only exact-k rows are replayed (``bounds=False``): a
    bounds-implied "yes" from a smaller k carries a width that is achievable
    at this k but possibly not the best reachable, so quality-sensitive
    callers must not mistake it for this k's optimum.  The store key carries
    no precision dimension, so only default-precision runs consult or
    populate the store; any other ``precision`` computes live — a coarse
    cached width must never masquerade as a finer bisection's answer.
    """
    cacheable = store is not None and precision == DEFAULT_PRECISION
    if cacheable and lookup:
        stored = store.get(fingerprint(hypergraph), FRAC_METHOD, k, timeout, bounds=False)
        if stored is not None:
            return stored.outcome(hypergraph)
    deadline = Deadline(timeout)
    start = time.perf_counter()
    try:
        best = best_fractional_improvement(
            hypergraph,
            k,
            precision=precision,
            deadline=deadline,
            upper_seed=upper_seed,
        )
    except DeadlineExceeded:
        outcome = CheckOutcome(TIMEOUT, time.perf_counter() - start)
    else:
        elapsed = time.perf_counter() - start
        if best is None:  # pragma: no cover - a stored HD guarantees success
            outcome = CheckOutcome(NO, elapsed)
        else:
            outcome = CheckOutcome(YES, elapsed, best)
    if cacheable:
        store.put(fingerprint(hypergraph), FRAC_METHOD, k, timeout, outcome)
    return outcome


def run_fractional_analysis(
    repository: HyperBenchRepository,
    hw_values: tuple[int, ...] = (2, 3, 4, 5, 6),
    timeout: float | None = 2.0,
    precision: float = DEFAULT_PRECISION,
    engine: "object | None" = None,
) -> FractionalAnalysis:
    """Run both improvement algorithms over all instances with a stored HD.

    Without an ``engine`` the historical in-process sweep runs unchanged.
    With one, every Table 6 verdict goes through the engine's result store
    (``fracimprove`` rows replay instantly on warm runs), missing HDs are
    recovered from cached Figure 4 verdicts, cold bisections are seeded with
    the Table 5 width, and a parallel engine fans the cold entries out
    through ``run_batch`` (cached/implied entries are pruned before any
    worker starts).  Store rows and batch workers are only valid at the
    default bisection precision, so a non-default ``precision`` computes
    every entry in-process and bypasses the cache — a coarse cached width
    never masquerades as a finer answer.  In the parallel path a
    bounds-implied replay may report a width achieved at a smaller k — a
    valid upper bound, so buckets can understate (never overstate) the
    improvement; the sequential paths replay exact-k rows only.
    """
    analysis = FractionalAnalysis()
    store = getattr(engine, "store", None)
    deferred: list[tuple[BenchmarkEntry, int]] = []
    for entry in repository:
        k = entry.hw_high
        if k is None or k not in hw_values:
            continue
        hd = entry.extra.get("hd")
        if hd is None and store is not None:
            hd = _stored_hd(store, entry.hypergraph, k, timeout)
            if hd is not None:
                entry.extra["hd"] = hd
        if hd is None:
            continue

        # Table 5: ImproveHD on the stored decomposition (poly-time; the
        # paper reports zero timeouts for it).
        fhd = improve_hd(hd)
        analysis.cell("improve", k).record(bucket(k - fhd.width))
        entry.fhw_high = min(entry.fhw_high or float(k), fhd.width)

        # Table 6: FracImproveHD under a timeout.
        if engine is None:
            _record_frac(
                analysis,
                entry,
                k,
                frac_improve_outcome(entry.hypergraph, k, timeout, precision=precision),
            )
            continue
        stored = None
        checked = False
        if store is not None and precision == DEFAULT_PRECISION:
            # Exact-k rows only (bounds=False): Table 6 reports the best
            # width reachable *at this k*, which a smaller k's witness may
            # understate.  Rows are only valid at the default precision —
            # the key has no precision dimension.  The peek does not record:
            # deferred jobs are booked by run_batch, the other outcomes here.
            checked = True
            stored = store.get(
                fingerprint(entry.hypergraph),
                FRAC_METHOD,
                k,
                timeout,
                record=False,
                bounds=False,
            )
        if stored is not None:
            store.record_hits(1)
            _record_frac(analysis, entry, k, stored.outcome(entry.hypergraph))
        elif getattr(engine, "parallel", False) and precision == DEFAULT_PRECISION:
            deferred.append((entry, k))
        else:
            if checked:
                store.record_misses(1)
            _record_frac(
                analysis,
                entry,
                k,
                frac_improve_outcome(
                    entry.hypergraph,
                    k,
                    timeout,
                    precision=precision,
                    store=store,
                    upper_seed=fhd.width,
                    lookup=False,
                ),
            )

    if deferred:
        from repro.engine.jobs import JobSpec

        specs = [
            JobSpec.check(entry.hypergraph, k, method=FRAC_METHOD, timeout=timeout)
            for entry, k in deferred
        ]
        report = engine.run_batch(specs)
        for (entry, k), result in zip(deferred, report.results):
            _record_frac(analysis, entry, k, result.outcome)
    return analysis
