"""The fractional-improvement study of Tables 5 and 6.

For every hypergraph with a known HD of width ≤ k (stored by the Figure 4
sweep), two questions are asked:

* ``ImproveHD`` (Table 5): replacing the integral covers of *that* HD by
  fractional ones, by how much does the width drop?
* ``FracImproveHD`` (Table 6): searching over all HDs of width ≤ k, what is
  the best fractional width reachable?

Improvements ``c = k − fractional_width`` are bucketed exactly like the
paper's columns: ``c ≥ 1``, ``c ∈ [0.5, 1)``, ``c ∈ [0.1, 0.5)``, "no"
(c < 0.1) and timeouts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.benchmark.repository import HyperBenchRepository
from repro.decomp.fractional import best_fractional_improvement, improve_hd
from repro.errors import DeadlineExceeded
from repro.utils.deadline import Deadline

__all__ = ["ImprovementCell", "FractionalAnalysis", "run_fractional_analysis", "bucket"]

BUCKETS = (">=1", "[0.5,1)", "[0.1,0.5)", "no", "timeout")


def bucket(improvement: float) -> str:
    """Map an improvement ``c = k − width`` to the paper's column label."""
    if improvement >= 1.0:
        return ">=1"
    if improvement >= 0.5:
        return "[0.5,1)"
    if improvement >= 0.1:
        return "[0.1,0.5)"
    return "no"


@dataclass
class ImprovementCell:
    """One row of Table 5 / Table 6 (per starting hw)."""

    counts: dict[str, int] = field(default_factory=lambda: {b: 0 for b in BUCKETS})

    def record(self, label: str) -> None:
        self.counts[label] += 1

    def as_row(self) -> list[int]:
        return [self.counts[b] for b in BUCKETS]


@dataclass
class FractionalAnalysis:
    """Results of the Tables 5/6 sweep."""

    improve_hd: dict[int, ImprovementCell] = field(default_factory=dict)
    frac_improve: dict[int, ImprovementCell] = field(default_factory=dict)

    def cell(self, table: str, k: int) -> ImprovementCell:
        target = self.improve_hd if table == "improve" else self.frac_improve
        if k not in target:
            target[k] = ImprovementCell()
        return target[k]


def run_fractional_analysis(
    repository: HyperBenchRepository,
    hw_values: tuple[int, ...] = (2, 3, 4, 5, 6),
    timeout: float | None = 2.0,
    precision: float = 0.1,
) -> FractionalAnalysis:
    """Run both improvement algorithms over all instances with a stored HD."""
    analysis = FractionalAnalysis()
    for entry in repository:
        hd = entry.extra.get("hd")
        k = entry.hw_high
        if hd is None or k is None or k not in hw_values:
            continue

        # Table 5: ImproveHD on the stored decomposition (poly-time; the
        # paper reports zero timeouts for it).
        fhd = improve_hd(hd)
        improvement = k - fhd.width
        analysis.cell("improve", k).record(bucket(improvement))
        entry.fhw_high = min(entry.fhw_high or float(k), fhd.width)

        # Table 6: FracImproveHD under a timeout.
        deadline = Deadline(timeout)
        start = time.perf_counter()
        try:
            best = best_fractional_improvement(
                entry.hypergraph, k, precision=precision, deadline=deadline
            )
        except DeadlineExceeded:
            analysis.cell("frac", k).record("timeout")
            continue
        if best is None:  # pragma: no cover - a stored HD guarantees success
            analysis.cell("frac", k).record("no")
            continue
        analysis.cell("frac", k).record(bucket(k - best.width))
        entry.fhw_high = min(entry.fhw_high or float(k), best.width)
    return analysis
