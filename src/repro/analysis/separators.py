"""Counting balanced vs. arbitrary separators (Section 7, future work).

    "The empirical results obtained for our new GHD algorithm via balanced
    separators suggest that the number of balanced separators is often
    drastically smaller than the number of arbitrary separators.  We want to
    determine a realistic upper bound on the number of balanced separators
    in terms of n (the number of edges) and k."

This module measures exactly that ratio: for a hypergraph and a width k it
enumerates all ≤k-subsets of edges and reports how many of them are balanced
separators (Definition 7).  The ablation bench uses it to quantify why
``BalSep`` refutes quickly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.bitset import HypergraphView, mask_components_from
from repro.core.hypergraph import Hypergraph
from repro.utils.deadline import Deadline

__all__ = ["SeparatorCensus", "count_balanced_separators"]


@dataclass(frozen=True)
class SeparatorCensus:
    """Counts of candidate λ-labels for one (hypergraph, k) pair."""

    total: int
    balanced: int

    @property
    def ratio(self) -> float:
        """Fraction of ≤k edge subsets that are balanced separators."""
        return self.balanced / self.total if self.total else 0.0


def count_balanced_separators(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
) -> SeparatorCensus:
    """Census of all non-empty ≤k-subsets of edges.

    A subset counts as *balanced* when every [B(λ)]-component of the full
    hypergraph contains at most half of the edges.  The enumeration is
    exponential in k (like the search it models), and runs on the bitset
    kernel — each candidate is one mask union plus a mask component sweep.
    """
    deadline = deadline or Deadline.unlimited()
    view = HypergraphView.of(hypergraph)
    masks = view.edge_masks
    # Sorted edge-name order, matching the historical enumeration.
    order = sorted(range(len(masks)), key=lambda i: view.edge_names[i])
    entries = [(1 << i, m) for i, m in enumerate(masks)]
    limit = len(masks) / 2
    total = 0
    balanced = 0
    for size in range(1, k + 1):
        for combo in itertools.combinations(order, size):
            deadline.check()
            total += 1
            bag = 0
            for i in combo:
                bag |= masks[i]
            if all(
                members.bit_count() <= limit
                for members, _ in mask_components_from(entries, bag)
            ):
                balanced += 1
    return SeparatorCensus(total, balanced)
