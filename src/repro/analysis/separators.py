"""Counting balanced vs. arbitrary separators (Section 7, future work).

    "The empirical results obtained for our new GHD algorithm via balanced
    separators suggest that the number of balanced separators is often
    drastically smaller than the number of arbitrary separators.  We want to
    determine a realistic upper bound on the number of balanced separators
    in terms of n (the number of edges) and k."

This module measures exactly that ratio: for a hypergraph and a width k it
enumerates all ≤k-subsets of edges and reports how many of them are balanced
separators (Definition 7).  The ablation bench uses it to quantify why
``BalSep`` refutes quickly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.components import components
from repro.core.hypergraph import Hypergraph
from repro.utils.deadline import Deadline

__all__ = ["SeparatorCensus", "count_balanced_separators"]


@dataclass(frozen=True)
class SeparatorCensus:
    """Counts of candidate λ-labels for one (hypergraph, k) pair."""

    total: int
    balanced: int

    @property
    def ratio(self) -> float:
        """Fraction of ≤k edge subsets that are balanced separators."""
        return self.balanced / self.total if self.total else 0.0


def count_balanced_separators(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
) -> SeparatorCensus:
    """Census of all non-empty ≤k-subsets of edges.

    A subset counts as *balanced* when every [B(λ)]-component of the full
    hypergraph contains at most half of the edges.  The enumeration is
    exponential in k (like the search it models); use small k.
    """
    deadline = deadline or Deadline.unlimited()
    family = hypergraph.edges
    names = sorted(family)
    limit = len(family) / 2
    total = 0
    balanced = 0
    for size in range(1, k + 1):
        for combo in itertools.combinations(names, size):
            deadline.check()
            total += 1
            bag = frozenset().union(*(family[n] for n in combo))
            if all(len(c) <= limit for c in components(family, bag)):
                balanced += 1
    return SeparatorCensus(total, balanced)
