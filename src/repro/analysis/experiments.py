"""One driver per table/figure of the paper's evaluation section.

Every ``table*``/``figure*`` function returns an :class:`ExperimentResult`
holding structured rows plus a rendered ASCII table in the paper's layout.
:func:`run_full_study` chains the whole evaluation — benchmark build,
property analysis, Figure 4 hw sweep, Tables 3/4 GHD comparison, Tables 5/6
fractional study, Figure 5 correlations — and is what the benchmark harness
and EXPERIMENTS.md generation call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.correlation import METRICS, correlation_matrix
from repro.analysis.fractional_analysis import (
    BUCKETS,
    FractionalAnalysis,
    run_fractional_analysis,
)
from repro.analysis.ghw_analysis import GhwAnalysis, run_ghw_analysis
from repro.analysis.hw_analysis import HwAnalysis, run_hw_analysis
from repro.benchmark.build import build_default_benchmark
from repro.benchmark.classes import CLASS_NAMES, BenchmarkClass
from repro.benchmark.repository import HyperBenchRepository
from repro.utils.tables import render_table

__all__ = [
    "CANONICAL_ORDER",
    "ExperimentResult",
    "StudyResult",
    "assemble_study",
    "table1_overview",
    "table2_properties",
    "figure3_sizes",
    "figure4_hw",
    "figure5_correlation",
    "table3_ghw_algorithms",
    "table4_ghw_portfolio",
    "table5_improve_hd",
    "table6_frac_improve",
    "edge_clique_cover_candidates",
    "run_full_study",
]


@dataclass
class ExperimentResult:
    """Structured rows plus the rendered table for one paper artefact."""

    experiment_id: str
    headers: list[str]
    rows: list[list[object]]
    title: str

    @property
    def rendered(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:
        return self.rendered


# --------------------------------------------------------------------- helpers

_PROPERTY_LEVELS = ["0", "1", "2", "3", "4", "5", ">5"]


def _level(value: int) -> str:
    return str(value) if value <= 5 else ">5"


def _size_bucket(value: int) -> str:
    if value <= 10:
        return "1-10"
    if value <= 20:
        return "11-20"
    if value <= 30:
        return "21-30"
    if value <= 40:
        return "31-40"
    if value <= 50:
        return "41-50"
    return ">50"


def _arity_bucket(value: int) -> str:
    if value <= 5:
        return "1-5"
    if value <= 10:
        return "6-10"
    if value <= 15:
        return "11-15"
    if value <= 20:
        return "16-20"
    return ">20"


_SIZE_BUCKETS = ["1-10", "11-20", "21-30", "31-40", "41-50", ">50"]
_ARITY_BUCKETS = ["1-5", "6-10", "11-15", "16-20", ">20"]


# ------------------------------------------------------------------ Table 1


def table1_overview(repository: HyperBenchRepository) -> ExperimentResult:
    """Table 1: instance counts and number of cyclic (hw ≥ 2) instances."""
    rows: list[list[object]] = []
    total = 0
    total_cyclic = 0
    for benchmark_class in CLASS_NAMES:
        entries = repository.entries(benchmark_class)
        if not entries:
            continue
        cyclic = sum(1 for e in entries if e.is_cyclic)
        rows.append([str(benchmark_class), len(entries), cyclic])
        total += len(entries)
        total_cyclic += cyclic
    rows.append(["Total", total, total_cyclic])
    return ExperimentResult(
        "table1",
        ["Benchmark", "No. instances", "hw >= 2"],
        rows,
        "Table 1: Overview of benchmark instances",
    )


# ------------------------------------------------------------------ Table 2


def table2_properties(repository: HyperBenchRepository) -> ExperimentResult:
    """Table 2: Deg/BIP/3-BMIP/4-BMIP/VC-dim histograms per class."""
    rows: list[list[object]] = []
    for benchmark_class in CLASS_NAMES:
        entries = [
            e for e in repository.entries(benchmark_class) if e.statistics
        ]
        if not entries:
            continue
        histograms: dict[str, dict[str, int]] = {
            metric: {level: 0 for level in _PROPERTY_LEVELS}
            for metric in ("Deg", "BIP", "3-BMIP", "4-BMIP", "VC-dim")
        }
        for entry in entries:
            stats = entry.statistics
            histograms["Deg"][_level(stats.degree)] += 1
            histograms["BIP"][_level(stats.bip)] += 1
            histograms["3-BMIP"][_level(stats.bmip3)] += 1
            histograms["4-BMIP"][_level(stats.bmip4)] += 1
            histograms["VC-dim"][_level(stats.vc_dim)] += 1
        for level in _PROPERTY_LEVELS:
            rows.append(
                [
                    str(benchmark_class),
                    level,
                    histograms["Deg"][level],
                    histograms["BIP"][level],
                    histograms["3-BMIP"][level],
                    histograms["4-BMIP"][level],
                    histograms["VC-dim"][level],
                ]
            )
    return ExperimentResult(
        "table2",
        ["Class", "i", "Deg", "BIP", "3-BMIP", "4-BMIP", "VC-dim"],
        rows,
        "Table 2: Properties of all benchmark instances",
    )


# ----------------------------------------------------------------- Figure 3


def figure3_sizes(repository: HyperBenchRepository) -> ExperimentResult:
    """Figure 3: vertex/edge/arity size distributions per class (percent)."""
    rows: list[list[object]] = []
    for benchmark_class in CLASS_NAMES:
        entries = repository.entries(benchmark_class)
        if not entries:
            continue
        n = len(entries)
        vertex_hist = {b: 0 for b in _SIZE_BUCKETS}
        edge_hist = {b: 0 for b in _SIZE_BUCKETS}
        arity_hist = {b: 0 for b in _ARITY_BUCKETS}
        for entry in entries:
            h = entry.hypergraph
            vertex_hist[_size_bucket(h.num_vertices)] += 1
            edge_hist[_size_bucket(h.num_edges)] += 1
            arity_hist[_arity_bucket(h.arity)] += 1
        for buckets, hist, metric in (
            (_SIZE_BUCKETS, vertex_hist, "vertices"),
            (_SIZE_BUCKETS, edge_hist, "edges"),
            (_ARITY_BUCKETS, arity_hist, "arity"),
        ):
            for bucket_name in buckets:
                if hist[bucket_name]:
                    rows.append(
                        [
                            str(benchmark_class),
                            metric,
                            bucket_name,
                            hist[bucket_name],
                            round(100.0 * hist[bucket_name] / n, 1),
                        ]
                    )
    return ExperimentResult(
        "figure3",
        ["Class", "Metric", "Bucket", "Count", "%"],
        rows,
        "Figure 3: Hypergraph sizes",
    )


# ----------------------------------------------------------------- Figure 4


def figure4_hw(analysis: HwAnalysis) -> ExperimentResult:
    """Figure 4: yes/no/timeout counts with average runtimes per class, k."""
    rows: list[list[object]] = []
    for benchmark_class in CLASS_NAMES:
        for k in analysis.ks_for(benchmark_class):
            cell = analysis.cell(benchmark_class, k)
            if cell.yes == cell.no == cell.timeout == 0:
                continue
            rows.append(
                [
                    str(benchmark_class),
                    k,
                    cell.yes,
                    round(cell.yes_avg, 3),
                    cell.no,
                    round(cell.no_avg, 3),
                    cell.timeout,
                ]
            )
    return ExperimentResult(
        "figure4",
        ["Class", "k", "yes", "yes avg (s)", "no", "no avg (s)", "timeout"],
        rows,
        "Figure 4: HW analysis (avg. runtimes in s)",
    )


# ----------------------------------------------------------------- Figure 5


def figure5_correlation(repository: HyperBenchRepository) -> ExperimentResult:
    """Figure 5: pairwise Pearson correlations of the nine metrics."""
    matrix = correlation_matrix(repository)
    rows: list[list[object]] = []
    for i, metric in enumerate(METRICS):
        rows.append([metric] + [round(float(v), 2) for v in matrix[i]])
    return ExperimentResult(
        "figure5",
        ["", *METRICS],
        rows,
        "Figure 5: Correlation analysis (Pearson)",
    )


# ------------------------------------------------------------------ Table 3


def table3_ghw_algorithms(analysis: GhwAnalysis) -> ExperimentResult:
    """Table 3: per-algorithm solved counts (yes/no) with average runtimes."""
    rows: list[list[object]] = []
    algorithms = sorted({name for name, _k in analysis.algorithm_cells})
    for k in analysis.ks:
        row: list[object] = [f"{k} -> {k - 1}", analysis.totals.get(k, 0)]
        for name in ("GlobalBIP", "LocalBIP", "BalSep"):
            if name not in algorithms:
                continue
            cell = analysis.algorithm_cell(name, k)
            row.append(f"{cell.yes} ({cell.yes_avg:.2f}s)" if cell.yes else "-")
            row.append(f"{cell.no} ({cell.no_avg:.2f}s)" if cell.no else "-")
        rows.append(row)
    headers = ["hw -> ghw", "Total"]
    for name in ("GlobalBIP", "LocalBIP", "BalSep"):
        if name in algorithms:
            headers.extend([f"{name} yes", f"{name} no"])
    return ExperimentResult(
        "table3",
        headers,
        rows,
        "Table 3: GHW algorithms with avg. runtimes in s",
    )


# ------------------------------------------------------------------ Table 4


def table4_ghw_portfolio(analysis: GhwAnalysis) -> ExperimentResult:
    """Table 4: the parallel-portfolio verdicts per k."""
    rows: list[list[object]] = []
    for k in analysis.ks:
        cell = analysis.portfolio_cell(k)
        rows.append(
            [
                f"{k} -> {k - 1}",
                f"{cell.yes} ({cell.yes_avg:.2f}s)" if cell.yes else "0",
                f"{cell.no} ({cell.no_avg:.2f}s)" if cell.no else "0",
                cell.timeout,
            ]
        )
    return ExperimentResult(
        "table4",
        ["hw -> ghw", "yes", "no", "timeout"],
        rows,
        "Table 4: GHW of instances with average runtime in s",
    )


# -------------------------------------------------------------- Tables 5, 6


def _improvement_table(
    cells: dict[int, object], experiment_id: str, title: str
) -> ExperimentResult:
    rows: list[list[object]] = []
    for k in sorted(cells):
        rows.append([k] + list(cells[k].as_row()))
    return ExperimentResult(
        experiment_id,
        ["hw", *BUCKETS],
        rows,
        title,
    )


def table5_improve_hd(analysis: FractionalAnalysis) -> ExperimentResult:
    """Table 5: width improvements achieved by ImproveHD."""
    return _improvement_table(
        analysis.improve_hd, "table5", "Table 5: Instances solved with ImproveHD"
    )


def table6_frac_improve(analysis: FractionalAnalysis) -> ExperimentResult:
    """Table 6: width improvements achieved by FracImproveHD."""
    return _improvement_table(
        analysis.frac_improve, "table6", "Table 6: Instances solved with FracImproveHD"
    )


# --------------------------------------------------- related-work extras


def edge_clique_cover_candidates(repository: HyperBenchRepository) -> ExperimentResult:
    """Instances with more vertices than edges (related work, Section 2).

    Korhonen's FPT algorithms parameterised by edge clique cover size apply
    to CSPs with n > m, since the constraint scopes form an edge clique
    cover of the primal graph; the paper reports HyperBench verified this
    happens "in circa 23% of the instances".  We report the same fraction
    per class on the synthetic benchmark.
    """
    rows: list[list[object]] = []
    total = 0
    total_hits = 0
    for benchmark_class in CLASS_NAMES:
        entries = repository.entries(benchmark_class)
        if not entries:
            continue
        hits = sum(
            1 for e in entries if e.hypergraph.num_vertices > e.hypergraph.num_edges
        )
        rows.append(
            [
                str(benchmark_class),
                len(entries),
                hits,
                round(100.0 * hits / len(entries), 1),
            ]
        )
        total += len(entries)
        total_hits += hits
    rows.append(
        ["Total", total, total_hits, round(100.0 * total_hits / total, 1) if total else 0.0]
    )
    return ExperimentResult(
        "ecc",
        ["Class", "instances", "n > m", "%"],
        rows,
        "Extra: edge-clique-cover candidates (n > m, cf. Korhonen 2019)",
    )


# ------------------------------------------------------------------- studies


#: Canonical rendering order of the paper's artefacts (Sections 6.1–6.5).
CANONICAL_ORDER = (
    "table1",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "table3",
    "table4",
    "table5",
    "table6",
)


@dataclass
class StudyResult:
    """Everything the full evaluation produces, ready for rendering."""

    repository: HyperBenchRepository
    hw: HwAnalysis
    ghw: GhwAnalysis
    fractional: FractionalAnalysis
    results: dict[str, ExperimentResult] = field(default_factory=dict)

    def render_all(self) -> str:
        """Render the artefacts that exist: canonical order, then extras.

        A study holding only a subset (a partial experiment, or extras like
        ``edge_clique_cover_candidates``) renders what it has instead of
        raising ``KeyError``.
        """
        keys = [key for key in CANONICAL_ORDER if key in self.results]
        keys += [key for key in sorted(self.results) if key not in CANONICAL_ORDER]
        return "\n\n".join(self.results[key].rendered for key in keys)


def assemble_study(
    repository: HyperBenchRepository,
    hw: HwAnalysis,
    ghw: GhwAnalysis,
    fractional: FractionalAnalysis,
) -> StudyResult:
    """Build every paper artefact from finished analyses.

    Shared by :func:`run_full_study` (live analyses) and the experiment
    pipeline's results view (store-replayed analyses), so both produce
    identical tables from identical inputs.
    """
    study = StudyResult(repository, hw, ghw, fractional)
    study.results["table1"] = table1_overview(repository)
    study.results["table2"] = table2_properties(repository)
    study.results["figure3"] = figure3_sizes(repository)
    study.results["figure4"] = figure4_hw(hw)
    study.results["figure5"] = figure5_correlation(repository)
    study.results["table3"] = table3_ghw_algorithms(ghw)
    study.results["table4"] = table4_ghw_portfolio(ghw)
    study.results["table5"] = table5_improve_hd(fractional)
    study.results["table6"] = table6_frac_improve(fractional)
    return study


def run_full_study(
    scale: float = 0.25,
    seed: int = 42,
    timeout: float = 1.0,
    max_k: int = 6,
    frac_timeout: float | None = None,
    engine: "object | None" = None,
) -> StudyResult:
    """Run the entire Section 6 evaluation on a fresh synthetic benchmark.

    An optional :class:`repro.engine.DecompositionEngine` threads through
    the benchmark build (parallel generation), the Table 2 statistics
    (crash-isolated worker fan-out), the Figure 4 hw sweep, the Tables 3/4
    portfolio (parallel races, cached verdicts) and the Tables 5/6
    fractional study (store-backed warm starts) — re-running the study with
    a persistent result store replays every check from cache, and checks
    whose verdicts are implied by stored bounds never run at all.
    """
    repository = build_default_benchmark(scale=scale, seed=seed, engine=engine)
    repository.compute_all_statistics(jobs=getattr(engine, "jobs", 1))
    hw = run_hw_analysis(repository, max_k=max_k, timeout=timeout, engine=engine)
    ghw = run_ghw_analysis(repository, timeout=timeout, engine=engine)
    fractional = run_fractional_analysis(
        repository,
        timeout=frac_timeout if frac_timeout is not None else timeout,
        engine=engine,
    )
    return assemble_study(repository, hw, ghw, fractional)
