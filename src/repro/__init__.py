"""repro — a reproduction of *HyperBench: A Benchmark and Tool for
Hypergraphs and Empirical Findings* (Fischl, Gottlob, Longo, Pichler).

The package provides:

* :mod:`repro.core` — hypergraphs, components/separators, (fractional) edge
  covers, subedge sets, structural properties, decomposition objects;
* :mod:`repro.decomp` — ``DetKDecomp`` (Check(HD,k)), ``GlobalBIP``,
  ``LocalBIP``, ``BalSep`` (Check(GHD,k)), and the fractional improvements;
* :mod:`repro.cq`, :mod:`repro.sql`, :mod:`repro.csp` — the three input
  pipelines that turn queries and constraint networks into hypergraphs;
* :mod:`repro.relational` — Yannakakis-style evaluation along decompositions;
* :mod:`repro.benchmark` — the synthetic HyperBench benchmark + repository;
* :mod:`repro.analysis` — the paper's empirical study (all tables/figures);
* :mod:`repro.engine` — parallel, cache-backed execution: worker processes
  with hard timeouts, a content-addressed SQLite result store, and
  journalled batch sweeps;
* :mod:`repro.service` — a long-lived JSON-over-HTTP service over one
  shared engine + store, coalescing concurrent duplicate requests and
  batching the rest into ``run_batch`` waves (``repro serve``).

Quickstart::

    from repro import Hypergraph, check_hd, check_ghd_balsep

    h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
    hd = check_hd(h, 2)          # an HD of width <= 2
    assert check_hd(h, 1) is None  # the triangle is cyclic
"""

from repro.core import (
    Decomposition,
    DecompositionNode,
    Hypergraph,
    compute_statistics,
    fractional_cover,
    fractional_cover_number,
)
from repro.decomp import (
    best_fractional_improvement,
    check_frac_improved,
    check_ghd_balsep,
    check_ghd_global_bip,
    check_ghd_local_bip,
    check_hd,
    exact_width,
    ghd_portfolio,
    improve_hd,
)
from repro.engine import DecompositionEngine, JobSpec, ResultStore, fingerprint
from repro.errors import (
    DeadlineExceeded,
    HypergraphError,
    ParseError,
    ReproError,
    SolverError,
    SubedgeLimitError,
    ValidationError,
)
from repro.utils.deadline import Deadline

__version__ = "1.2.0"

#: Service-layer classes are imported lazily: most library users never start
#: an HTTP server, and the CLI's non-serve commands should not pay for
#: importing asyncio machinery.
_SERVICE_EXPORTS = ("ServiceClient", "ServiceThread", "BatchScheduler")

_EXPERIMENT_EXPORTS = (
    "Manifest",
    "ExperimentRunner",
    "ExperimentResults",
    "build_corpus",
    "default_manifest",
    "write_report",
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    if name in _EXPERIMENT_EXPORTS:
        from repro import experiment

        return getattr(experiment, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Hypergraph",
    "Decomposition",
    "DecompositionNode",
    "compute_statistics",
    "fractional_cover",
    "fractional_cover_number",
    "check_hd",
    "check_ghd_global_bip",
    "check_ghd_local_bip",
    "check_ghd_balsep",
    "improve_hd",
    "check_frac_improved",
    "best_fractional_improvement",
    "exact_width",
    "ghd_portfolio",
    "DecompositionEngine",
    "ResultStore",
    "JobSpec",
    "fingerprint",
    "Deadline",
    "ReproError",
    "DeadlineExceeded",
    "HypergraphError",
    "ValidationError",
    "SubedgeLimitError",
    "ParseError",
    "SolverError",
    "ServiceClient",
    "ServiceThread",
    "BatchScheduler",
    "Manifest",
    "ExperimentRunner",
    "ExperimentResults",
    "build_corpus",
    "default_manifest",
    "write_report",
    "__version__",
]
