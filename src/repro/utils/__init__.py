"""Small shared utilities: deadlines, deterministic naming, table rendering."""

from repro.utils.deadline import Deadline
from repro.utils.tables import render_table

__all__ = ["Deadline", "render_table"]
