"""Cooperative deadlines.

The paper runs every ``Check(decomposition, k)`` attempt under a 3600 s
timeout.  Python threads cannot be killed safely, so all search algorithms in
this library poll a :class:`Deadline` object at their backtracking points and
raise :class:`~repro.errors.DeadlineExceeded` when the budget is gone.  The
analysis harness records that as a "timeout" verdict.
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget that search algorithms poll cooperatively.

    Parameters
    ----------
    seconds:
        Budget in seconds, or ``None`` for an unlimited deadline.  Unlimited
        deadlines make ``check()`` free, so algorithms can call it
        unconditionally.

    Examples
    --------
    >>> deadline = Deadline(10.0)
    >>> deadline.check()  # no-op while within budget
    >>> deadline.expired
    False
    """

    __slots__ = ("_expires_at", "seconds")

    def __init__(self, seconds: float | None = None):
        self.seconds = seconds
        self._expires_at = None if seconds is None else time.monotonic() + seconds

    @classmethod
    def unlimited(cls) -> "Deadline":
        """Return a deadline that never expires."""
        return cls(None)

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    @property
    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for unlimited deadlines."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if self.expired:
            raise DeadlineExceeded(f"deadline of {self.seconds}s exceeded")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline({self.seconds}s, remaining={self.remaining:.3f}s)"
