"""Minimal ASCII table rendering used by the experiment drivers.

The paper's evaluation section is a collection of tables; every experiment in
:mod:`repro.analysis.experiments` returns structured rows and uses
:func:`render_table` to print the same layout.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Cells are converted with ``str``; numeric cells are right-aligned, text
    cells left-aligned.  Returns the rendered table as a single string.
    """
    cells = [[str(c) for c in row] for row in rows]
    header_cells = [str(h) for h in headers]
    n_cols = len(header_cells)
    for row in cells:
        if len(row) != n_cols:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {n_cols}")

    widths = [len(h) for h in header_cells]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [True] * n_cols
    for row in rows:
        for i, value in enumerate(row):
            if not isinstance(value, (int, float)):
                numeric[i] = False

    def fmt_row(row: Sequence[str], align_numeric: bool) -> str:
        parts = []
        for i, cell in enumerate(row):
            if align_numeric and numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_row(header_cells, align_numeric=False))
    lines.append(separator)
    for row in cells:
        lines.append(fmt_row(row, align_numeric=True))
    lines.append(separator)
    return "\n".join(lines)
