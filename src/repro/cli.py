"""Command-line interface — the offline counterpart of the HyperBench tool.

Subcommands::

    python -m repro analyze FILE.hg              # Table 2 metrics of one file
    python -m repro width FILE.hg --max-k 6      # exact hw (and optionally ghw)
    python -m repro decompose FILE.hg -k 3       # print / export a decomposition
    python -m repro fractional FILE.hg -k 3      # ImproveHD / FracImproveHD widths
    python -m repro benchmark --scale 0.2 DIR    # build benchmark + CSV + HTML
    python -m repro convert --cq "ans(X):-r(X,Y),s(Y,Z)."   # to .hg format
    python -m repro convert --xcsp FILE.xml
    python -m repro convert --sql FILE.sql --schema SCHEMA.json
    python -m repro cache stats --cache results.db   # inspect the result store
    python -m repro cache bounds --cache results.db  # derived width bounds
    python -m repro cache bounds --cache results.db --kind ghw  # one width kind
    python -m repro cache clear --cache results.db
    python -m repro serve --port 8080 --cache results.db --jobs 4   # HTTP service
    python -m repro serve --port 8080 --trace-journal traces.jsonl --slow-ms 500
    python -m repro serve --queue jobs.db --cache cache.d --shards 4  # distributed
    python -m repro worker --queue jobs.db --cache cache.d           # pull-worker
    python -m repro queue stats --queue jobs.db      # depth / leases / retries
    python -m repro queue requeue --queue jobs.db    # sweep expired leases now
    python -m repro experiment run --dir exp/ --scale 0.1   # start an experiment
    python -m repro experiment resume --dir exp/            # continue after a crash
    python -m repro experiment status --dir exp/            # phases + journal counts
    python -m repro experiment report --dir exp/ --format md  # Tables 1-6/Figs 3-5
    python -m repro trace show --journal traces.jsonl    # span trees, newest first
    python -m repro trace summary --journal traces.jsonl # per-span-name timings
    python -m repro trace show --port 8080               # live /debug/traces
    python -m repro metrics --port 8080                  # live /metrics text

``serve`` runs the long-lived decomposition service (see
:mod:`repro.service`): one shared engine + store behind a JSON-over-HTTP
API (``/check``, ``/width``, ``/decompose``, ``/portfolio``, ``/stats``,
``/healthz``) whose scheduler coalesces concurrent duplicate requests and
batches the rest into ``run_batch`` waves — docs/ARCHITECTURE.md describes
the protocol, ``examples/service_client.py`` walks a client session.

``serve --queue`` plus any number of ``worker`` processes form the
distributed topology (docs/DISTRIBUTED.md): the server enqueues waves into
a persistent SQLite job queue and pull-workers lease, execute, and write
results back through the shared ``--cache`` — pass a directory (or
``--shards N``) to spread that cache over N fingerprint-routed shard
files.  ``queue stats`` shows depth/lease/retry counters; ``queue
requeue`` sweeps expired leases (``--dead`` also resurrects dead jobs).

``cache bounds`` lists two tables: the per-method intervals each method's
own rows prove, and the *cross-method* intervals derived per width kind via
the paper's inequalities (fhw ≤ ghw ≤ hw ≤ 3·ghw + 1) — an hw "yes" caps
the ghw interval, a ghw "no" lifts the hw one.  ``--kind hw|ghw|fhw``
restricts both tables to one width kind.

The ``width``, ``decompose``, ``fractional`` and ``benchmark`` commands
accept ``--jobs N`` (run checks in N killable worker processes with hard
timeouts; for ``benchmark`` this also parallelises class generation and the
statistics pass) and ``--cache PATH`` (a SQLite result store:
``width``/``decompose``/``fractional`` cache and replay every verdict from
it — including verdicts merely *implied* by the store's bounds index;
``benchmark`` only initialises the store for later runs, since generation
records no verdicts).  Both route the command through
:class:`repro.engine.DecompositionEngine`; without these flags everything
runs sequentially in-process, as before.

All commands read the detkdecomp text format (``name(v1,v2),... .``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.benchmark.build import build_default_benchmark
from repro.benchmark.report import write_html_report
from repro.core.properties import compute_statistics
from repro.decomp.balsep import check_ghd_balsep
from repro.decomp.detkdecomp import check_hd
from repro.decomp.driver import exact_width, timed_check
from repro.decomp.fractional import DEFAULT_PRECISION, best_fractional_improvement
from repro.engine import CHECK_METHODS, DecompositionEngine, open_result_store
from repro.engine import methods as _methods
from repro.errors import ReproError
from repro.io.hg_format import format_hypergraph, read_hypergraph
from repro.io.json_io import decomposition_to_json

__all__ = ["main", "build_parser"]

#: Algorithm-name → check-function mapping: a live view over the
#: :mod:`repro.engine.methods` registry, so ``--algorithm`` names and engine
#: method names never diverge (virtual keys like ``portfolio`` are excluded).
ALGORITHMS = CHECK_METHODS


def _add_engine_flags(
    parser: argparse.ArgumentParser,
    jobs_help: str = "worker processes with hard timeouts (1 = in-process, default)",
    cache_help: str = "SQLite result store; verdicts are cached and replayed",
) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    parser.add_argument(
        "--cache", type=Path, default=None, metavar="PATH", help=cache_help
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard --cache over N fingerprint-routed files (a directory;"
        " an existing shard directory's count is authoritative)",
    )


def _make_engine(args) -> DecompositionEngine | None:
    """An engine when ``--jobs``/``--cache`` ask for one, else ``None``."""
    if args.jobs <= 1 and args.cache is None:
        return None
    store = (
        open_result_store(args.cache, shards=getattr(args, "shards", None))
        if args.cache is not None
        else None
    )
    return DecompositionEngine(store=store, jobs=args.jobs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HyperBench reproduction: hypergraph decompositions and analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="structural properties of a hypergraph")
    analyze.add_argument("file", type=Path)

    width = sub.add_parser("width", help="exact hypertree width by iterating k")
    width.add_argument("file", type=Path)
    width.add_argument("--max-k", type=int, default=6)
    width.add_argument("--timeout", type=float, default=None)
    width.add_argument("--ghw", action="store_true", help="also bound the ghw")
    _add_engine_flags(width)

    decompose = sub.add_parser("decompose", help="compute one decomposition")
    decompose.add_argument("file", type=Path)
    decompose.add_argument("-k", type=int, required=True)
    decompose.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="hd"
    )
    decompose.add_argument("--timeout", type=float, default=None)
    decompose.add_argument("--json", action="store_true", help="emit JSON")
    decompose.add_argument(
        "--improve", action="store_true",
        help="also report the best fractional improvement",
    )
    _add_engine_flags(decompose)

    fractional = sub.add_parser(
        "fractional",
        help="fractional improvement widths of one instance (Tables 5/6 protocol)",
    )
    fractional.add_argument("file", type=Path)
    fractional.add_argument("-k", type=int, required=True, help="starting integral width")
    fractional.add_argument("--timeout", type=float, default=None)
    fractional.add_argument(
        "--precision", type=float, default=DEFAULT_PRECISION,
        help=(
            "bisection precision for FracImproveHD (non-default values "
            "bypass the result store; ignored with --jobs > 1)"
        ),
    )
    _add_engine_flags(
        fractional,
        cache_help=(
            "SQLite result store; HD and FracImproveHD verdicts are cached, "
            "replayed, and reused as warm-start seeds"
        ),
    )

    benchmark = sub.add_parser("benchmark", help="build the synthetic benchmark")
    benchmark.add_argument("out_dir", type=Path)
    benchmark.add_argument("--scale", type=float, default=0.2)
    benchmark.add_argument("--seed", type=int, default=42)
    _add_engine_flags(
        benchmark,
        jobs_help="generate the benchmark classes in N parallel processes",
        cache_help=(
            "initialise/attach a result store for later width/decompose runs "
            "(generation itself records no verdicts)"
        ),
    )

    cache = sub.add_parser("cache", help="inspect or clear a result store")
    cache.add_argument("action", choices=("stats", "bounds", "clear"))
    cache.add_argument(
        "--cache", type=Path, required=True, metavar="PATH",
        help="SQLite result-store file",
    )
    cache.add_argument(
        "--kind", choices=_methods.WIDTH_KINDS, default=None,
        help=(
            "restrict 'bounds' to one width kind: per-method rows whose "
            "verdicts decide that kind plus its cross-method interval"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the decomposition service (JSON over HTTP, shared warm cache)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listening port (0 picks a free one and prints it)",
    )
    serve.add_argument(
        "--window", type=float, default=0.02, metavar="SECONDS",
        help="batching window: how long a wave waits for concurrent requests",
    )
    serve.add_argument(
        "--max-wave", type=int, default=32, metavar="N",
        help="maximum jobs per run_batch wave",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=1000.0, metavar="MS",
        help="log requests slower than this many milliseconds (0 disables)",
    )
    serve.add_argument(
        "--trace-journal", type=Path, default=None, metavar="PATH",
        help="append every finished span to this JSONL file (repro trace reads it)",
    )
    serve.add_argument(
        "--queue", type=Path, default=None, metavar="PATH",
        help=(
            "persistent job queue: dispatch waves to external 'repro worker' "
            "processes instead of the in-process pool"
        ),
    )
    serve.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help=(
            "admission control: pending-flight budget; requests beyond it "
            "get 429 (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--kind-limit", action="append", default=None, metavar="KIND=N",
        help=(
            "per-kind in-flight cap, e.g. --kind-limit width=2 "
            "(repeatable; uncapped kinds admit freely)"
        ),
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=None, metavar="PER_SECOND",
        help="per-tenant token-bucket admission rate (default: off)",
    )
    serve.add_argument(
        "--tenant-burst", type=float, default=None, metavar="N",
        help="per-tenant burst allowance (default: max(1, --tenant-rate))",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=5, metavar="N",
        help=(
            "consecutive wave failures that open the dispatch circuit "
            "breaker (0 disables breaking; default 5)"
        ),
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cooldown before the half-open probe wave",
    )
    serve.add_argument(
        "--drain-seconds", type=float, default=5.0, metavar="SECONDS",
        help="graceful-drain budget for in-flight waves on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--max-body-kb", type=int, default=8192, metavar="KB",
        help="request bodies over this many KiB get 413 (default 8192)",
    )
    _add_engine_flags(
        serve,
        jobs_help="worker processes shared by all clients (1 = in-process)",
        cache_help="SQLite result store every client shares (default: in-memory)",
    )

    worker = sub.add_parser(
        "worker",
        help="pull-worker: lease jobs from a queue, execute, write results back",
    )
    worker.add_argument(
        "--queue", type=Path, required=True, metavar="PATH",
        help="the job queue file shared with 'serve --queue' (or a Dispatcher)",
    )
    worker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="lease-holder identity (default: host-pid-random)",
    )
    worker.add_argument(
        "--lease-n", type=int, default=4, metavar="N",
        help="jobs leased per wave (executed as one run_batch)",
    )
    worker.add_argument(
        "--lease-seconds", type=float, default=30.0, metavar="SECONDS",
        help="lease duration; heartbeats extend it while a wave executes",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle sleep between empty lease attempts",
    )
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this many consecutive idle seconds (default: run forever)",
    )
    worker.add_argument(
        "--max-waves", type=int, default=None, metavar="N",
        help="exit after executing N waves (smoke/test harnesses)",
    )
    _add_engine_flags(
        worker,
        jobs_help="local worker processes per leased wave (1 = in-process)",
        cache_help="result store shared with the dispatcher (file or shard dir)",
    )

    queue = sub.add_parser(
        "queue", help="inspect or sweep a persistent job queue"
    )
    queue.add_argument("action", choices=("stats", "requeue"))
    queue.add_argument(
        "--queue", type=Path, required=True, metavar="PATH",
        help="the job queue file",
    )
    queue.add_argument(
        "--dead", action="store_true",
        help="requeue: also give dead jobs a fresh attempt budget",
    )

    trace = sub.add_parser(
        "trace", help="inspect recorded spans (a JSONL journal or a live service)"
    )
    trace.add_argument("action", choices=("show", "summary"))
    trace.add_argument(
        "--journal", type=Path, default=None, metavar="PATH",
        help="trace journal written by 'serve --trace-journal'",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument(
        "--port", type=int, default=None,
        help="fetch /debug/traces from a running service instead of a journal",
    )
    trace.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="most recent traces to show (show) or spans to read (service)",
    )

    metrics = sub.add_parser(
        "metrics", help="fetch a running service's /metrics (Prometheus text)"
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, default=8080)

    experiment = sub.add_parser(
        "experiment",
        help="resumable corpus -> runner -> report pipeline (docs/EXPERIMENTS.md)",
    )
    exp_sub = experiment.add_subparsers(dest="exp_action", required=True)
    exp_run = exp_sub.add_parser("run", help="start an experiment directory")
    exp_resume = exp_sub.add_parser(
        "resume", help="continue an interrupted experiment"
    )
    for p in (exp_run, exp_resume):
        p.add_argument(
            "--dir", type=Path, required=True, metavar="DIR",
            help="experiment directory (manifest + journals + store)",
        )
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes with hard timeouts (1 = in-process)",
        )
        p.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="shard the experiment store over N files",
        )
        p.add_argument(
            "--queue", type=Path, default=None, metavar="PATH",
            help="dispatch waves through this job queue (start `repro worker"
            " --queue PATH --cache DIR/store.db` processes separately)",
        )
    exp_run.add_argument(
        "--manifest", type=Path, default=None, metavar="FILE",
        help="corpus manifest JSON (default: the default-benchmark corpus)",
    )
    exp_run.add_argument("--scale", type=float, default=0.25,
                         help="default-corpus scale (default 0.25)")
    exp_run.add_argument("--seed", type=int, default=42)
    exp_run.add_argument("--timeout", type=float, default=1.0,
                         help="per-check timeout in seconds (default 1.0)")
    exp_run.add_argument("--max-k", type=int, default=6, dest="max_k")
    exp_run.add_argument(
        "--timed", action="store_true",
        help="keep wall-clock runtimes in reports (default: zeroed, so"
        " reports are byte-stable)",
    )
    exp_status = exp_sub.add_parser("status", help="phases and journal counts")
    exp_status.add_argument("--dir", type=Path, required=True, metavar="DIR")
    exp_report = exp_sub.add_parser(
        "report", help="render Tables 1-6 / Figures 3-5 from stored results"
    )
    exp_report.add_argument("--dir", type=Path, required=True, metavar="DIR")
    exp_report.add_argument(
        "--format", choices=["md", "html", "csv", "json", "all"], default="md"
    )
    exp_report.add_argument(
        "--dest", type=Path, default=None, metavar="DIR",
        help="write report files here (default: print to stdout)",
    )
    exp_report.add_argument(
        "--partial", action="store_true",
        help="report on an unfinished experiment (missing checks run live)",
    )
    exp_report.add_argument(
        "--timed", action="store_true",
        help="keep wall-clock runtimes (overrides the manifest's"
        " deterministic flag)",
    )

    convert = sub.add_parser("convert", help="convert CQ/XCSP/SQL to hypergraphs")
    source = convert.add_mutually_exclusive_group(required=True)
    source.add_argument("--cq", help="a datalog-style conjunctive query")
    source.add_argument("--xcsp", type=Path, help="an XCSP XML file")
    source.add_argument("--sql", type=Path, help="an SQL file (needs --schema)")
    convert.add_argument(
        "--schema", type=Path,
        help='JSON schema file: {"relations": {"name": ["attr", ...]}}',
    )
    return parser


def _cmd_analyze(args) -> int:
    h = read_hypergraph(args.file)
    stats = compute_statistics(h)
    print(f"instance     {h.name}")
    print(f"vertices     {stats.num_vertices}")
    print(f"edges        {stats.num_edges}")
    print(f"arity        {stats.arity}")
    print(f"degree       {stats.degree}")
    print(f"BIP          {stats.bip}")
    print(f"3-BMIP       {stats.bmip3}")
    print(f"4-BMIP       {stats.bmip4}")
    print(f"VC-dim       {stats.vc_dim}")
    return 0


def _cmd_width(args) -> int:
    h = read_hypergraph(args.file)
    engine = _make_engine(args)
    try:
        if engine is not None:
            result = engine.exact_width(h, args.max_k, timeout=args.timeout)
        else:
            result = exact_width(check_hd, h, args.max_k, timeout=args.timeout)
        if result.exact:
            print(f"hw({h.name}) = {result.value}")
        elif result.upper is not None:
            print(f"{result.lower} <= hw({h.name}) <= {result.upper}")
        else:
            print(f"hw({h.name}) > {result.lower - 1} (no upper bound within k <= {args.max_k})")
        if args.ghw and result.upper is not None and result.upper >= 2:
            if engine is not None:
                outcome = engine.check(h, result.upper - 1, method="balsep", timeout=args.timeout)
            else:
                outcome = timed_check(check_ghd_balsep, h, result.upper - 1, args.timeout)
            if outcome.verdict == "yes":
                print(f"ghw({h.name}) <= {result.upper - 1}")
            elif outcome.verdict == "no":
                print(f"ghw({h.name}) = hw({h.name}) = {result.upper}")
            else:
                print(f"ghw({h.name}) <= {result.upper} (Check(GHD,{result.upper - 1}) timed out)")
    finally:
        if engine is not None:
            engine.close()
    return 0


def _cmd_decompose(args) -> int:
    h = read_hypergraph(args.file)
    engine = _make_engine(args)
    try:
        if engine is not None:
            outcome = engine.check(h, args.k, method=args.algorithm, timeout=args.timeout)
        else:
            outcome = timed_check(ALGORITHMS[args.algorithm], h, args.k, args.timeout)
    finally:
        if engine is not None:
            engine.close()
    if outcome.verdict == "timeout":
        print(f"timeout after {outcome.seconds:.1f}s", file=sys.stderr)
        return 2
    if outcome.verdict == "no":
        kind = "HD" if args.algorithm == "hd" else "GHD"
        print(f"no {kind} of width <= {args.k} exists")
        return 1
    decomposition = outcome.decomposition
    if decomposition is None:
        # A cross-method implied "yes" can be witnessless: another method's
        # rows prove the width bound, but no stored tree of the right kind
        # exists to print.  The verdict stands; rerun without --cache (or at
        # the witnessing k) for an explicit decomposition.
        if args.json:
            print(json.dumps(
                {"verdict": "yes", "k": args.k, "implied": True,
                 "decomposition": None},
                sort_keys=True,
            ))
        else:
            print(
                f"width <= {args.k} confirmed from cached bounds; "
                "no stored decomposition of this kind (rerun without --cache "
                "to construct one)"
            )
        return 0
    decomposition.validate()
    if args.json:
        print(decomposition_to_json(decomposition, indent=2))
    else:
        print(f"{decomposition.kind} of width {decomposition.integral_width} "
              f"({len(decomposition)} nodes, {outcome.seconds:.3f}s)")
        _print_tree(decomposition.root)
    if args.improve:
        best = best_fractional_improvement(h, args.k)
        if best is not None:
            print(f"best fractional improvement: width {best.width:.3f}")
    return 0


def _print_tree(node, indent: int = 0) -> None:
    bag = ",".join(sorted(node.bag))
    cover = ",".join(sorted(node.lambda_label()))
    print(f"{'  ' * indent}- bag {{{bag}}} λ {{{cover}}}")
    for child in node.children:
        _print_tree(child, indent + 1)


def _cmd_fractional(args) -> int:
    from repro.analysis.fractional_analysis import frac_improve_outcome
    from repro.decomp.fractional import improve_hd
    from repro.errors import DeadlineExceeded
    from repro.utils.deadline import Deadline

    h = read_hypergraph(args.file)
    engine = _make_engine(args)
    try:
        if engine is not None:
            hd_outcome = engine.check(h, args.k, method="hd", timeout=args.timeout)
        else:
            hd_outcome = timed_check(check_hd, h, args.k, args.timeout)
        if hd_outcome.verdict == "timeout":
            print(
                f"Check(HD, {args.k}) timed out after {hd_outcome.seconds:.1f}s",
                file=sys.stderr,
            )
            return 2
        if hd_outcome.verdict == "no":
            print(f"no HD of width <= {args.k} exists")
            return 1
        print(f"hw({h.name}) <= {args.k}")
        seed = None
        if hd_outcome.decomposition is not None:
            fhd = improve_hd(hd_outcome.decomposition)
            seed = fhd.width
            print(f"ImproveHD width      {fhd.width:.3f}")
        if engine is not None:
            if engine.parallel:
                # killable worker with a hard timeout; verdicts replay from
                # the store (a bounds-implied replay reports a width achieved
                # at a smaller k — an upper bound on this k's optimum)
                frac = engine.check(h, args.k, method="fracimprove", timeout=args.timeout)
            else:
                # cache-backed in-process run, warm-started with the
                # ImproveHD width of the HD found above
                frac = frac_improve_outcome(
                    h,
                    args.k,
                    timeout=args.timeout,
                    precision=args.precision,
                    store=engine.store,
                    upper_seed=seed,
                )
            if frac.verdict == "timeout":
                print(f"FracImproveHD        timeout after {frac.seconds:.1f}s")
                return 0
            best = frac.decomposition
        else:
            try:
                best = best_fractional_improvement(
                    h,
                    args.k,
                    precision=args.precision,
                    deadline=Deadline(args.timeout),
                    upper_seed=seed,
                )
            except DeadlineExceeded:
                print("FracImproveHD        timeout")
                return 0
        if best is not None:
            print(
                f"FracImproveHD width  {best.width:.3f} "
                f"(improvement {args.k - best.width:.3f})"
            )
    finally:
        if engine is not None:
            engine.close()
    return 0


def _cmd_benchmark(args) -> int:
    engine = _make_engine(args)
    try:
        repo = build_default_benchmark(scale=args.scale, seed=args.seed, engine=engine)
    finally:
        if engine is not None:
            engine.close()
    repo.compute_all_statistics(jobs=args.jobs)
    args.out_dir.mkdir(parents=True, exist_ok=True)
    (args.out_dir / "hyperbench.csv").write_text(repo.to_csv(), encoding="utf-8")
    (args.out_dir / "hyperbench.json").write_text(repo.to_json(indent=2), encoding="utf-8")
    write_html_report(repo, args.out_dir / "hyperbench.html")
    hg_dir = args.out_dir / "hypergraphs"
    hg_dir.mkdir(exist_ok=True)
    for entry in repo:
        (hg_dir / f"{entry.name}.hg").write_text(
            format_hypergraph(entry.hypergraph), encoding="utf-8"
        )
    print(f"{len(repo)} instances written to {args.out_dir}")
    return 0


def _cmd_convert(args) -> int:
    if args.cq is not None:
        from repro.cq import cq_to_hypergraph, parse_cq

        h = cq_to_hypergraph(parse_cq(args.cq, name="cq"))
        print(format_hypergraph(h), end="")
        return 0
    if args.xcsp is not None:
        from repro.csp import csp_to_hypergraph, parse_xcsp

        instance = parse_xcsp(args.xcsp.read_text(encoding="utf-8"), name=args.xcsp.stem)
        print(format_hypergraph(csp_to_hypergraph(instance)), end="")
        return 0
    # SQL
    if args.schema is None:
        print("--sql requires --schema", file=sys.stderr)
        return 2
    from repro.sql import Schema, sql_to_hypergraphs

    payload = json.loads(args.schema.read_text(encoding="utf-8"))
    schema = Schema(payload["relations"] if "relations" in payload else payload)
    sql_text = args.sql.read_text(encoding="utf-8")
    produced = 0
    for statement in filter(None, (s.strip() for s in sql_text.split(";"))):
        for h in sql_to_hypergraphs(statement + ";", schema, name=f"q{produced}"):
            print(f"% {h.name}")
            print(format_hypergraph(h), end="")
            produced += 1
    if not produced:
        print("no hypergraphs extracted", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args) -> int:
    if not args.cache.exists():
        print(f"error: no result store at {args.cache}", file=sys.stderr)
        return 2
    # open_result_store detects shard directories, so `cache stats` works
    # unchanged on a sharded --cache and aggregates across the shard files.
    with open_result_store(args.cache) as store:
        if args.action == "clear":
            cleared = len(store)
            store.clear()
            print(f"cleared {cleared} cached results from {args.cache}")
            return 0
        if args.action == "bounds":
            rows = store.bounds_rows()
            kind_rows = store.kind_bounds_rows()
            if args.kind is not None:
                rows = [
                    r for r in rows
                    if _methods.decision_kind_of(r[1]) == args.kind
                ]
                kind_rows = [r for r in kind_rows if r[1] == args.kind]
            if not rows and not kind_rows:
                print("no width bounds derived yet")
                return 0
            print(f"{'fingerprint':<14} {'method':<12} {'lo':>4} {'hi':>4}")
            for fp, method, lo, hi in rows:
                hi_text = "-" if hi is None else str(hi)
                print(f"{fp[:12] + '..':<14} {method:<12} {lo:>4} {hi_text:>4}")
            if kind_rows:
                # Cross-method intervals: what the paper's inequalities
                # (fhw <= ghw <= hw <= 3*ghw + 1) derive across methods.
                print(f"\n{'fingerprint':<14} {'kind':<12} {'lo':>4} {'hi':>4}")
                for fp, kind, lo, hi in kind_rows:
                    hi_text = "-" if hi is None else str(hi)
                    print(f"{fp[:12] + '..':<14} {kind:<12} {lo:>4} {hi_text:>4}")
            return 0
        stats = store.stats
        print(f"store        {args.cache}")
        print(f"entries      {stats.entries}")
        print(f"hits         {stats.hits}")
        print(f"  implied    {stats.implied}")
        print(f"misses       {stats.misses}")
        print(f"hit rate     {stats.hit_rate:.1%}")
        for method, count in store.methods().items():
            print(f"  {method:<10} {count}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import serve as _serve

    store_path = str(args.cache) if args.cache is not None else None
    slow = args.slow_ms / 1000.0 if args.slow_ms > 0 else None
    journal = str(args.trace_journal) if args.trace_journal is not None else None
    kind_limits = None
    if args.kind_limit:
        kind_limits = {}
        for entry in args.kind_limit:
            kind, sep, cap = entry.partition("=")
            if not sep or not kind or not cap.isdigit():
                print(
                    f"error: --kind-limit wants KIND=N, got {entry!r}",
                    file=sys.stderr,
                )
                return 2
            kind_limits[kind] = int(cap)
    try:
        asyncio.run(
            _serve(
                store_path,
                host=args.host,
                port=args.port,
                jobs=args.jobs,
                window=args.window,
                max_wave=args.max_wave,
                slow_request_seconds=slow,
                trace_journal=journal,
                queue_path=str(args.queue) if args.queue is not None else None,
                shards=args.shards,
                max_pending=args.max_pending,
                kind_limits=kind_limits,
                tenant_rate=args.tenant_rate,
                tenant_burst=args.tenant_burst,
                breaker_failures=args.breaker_failures,
                breaker_reset=args.breaker_reset,
                drain_seconds=args.drain_seconds,
                max_body_bytes=args.max_body_kb * 1024,
            )
        )
    except KeyboardInterrupt:
        print("service stopped", file=sys.stderr)
    return 0


def _cmd_worker(args) -> int:
    from repro.engine.remote import run_worker

    completed = run_worker(
        str(args.queue),
        str(args.cache) if args.cache is not None else None,
        jobs=args.jobs,
        shards=args.shards,
        worker_id=args.worker_id,
        lease_n=args.lease_n,
        lease_seconds=args.lease_seconds,
        poll=args.poll,
        max_idle=args.max_idle,
        max_waves=args.max_waves,
    )
    print(f"worker done: {completed} job(s) completed", file=sys.stderr)
    return 0


def _cmd_queue(args) -> int:
    from repro.engine.queue import JobQueue

    if not args.queue.exists():
        print(f"error: no job queue at {args.queue}", file=sys.stderr)
        return 2
    with JobQueue(args.queue) as queue:
        if args.action == "requeue":
            swept = queue.requeue_expired()
            line = f"requeued {swept} expired lease(s)"
            if args.dead:
                line += f", resurrected {queue.resurrect_dead()} dead job(s)"
            print(line)
            return 0
        snapshot = queue.stats()
        print(f"queue        {args.queue}")
        print(f"total        {snapshot['total']}")
        print(f"depth        {snapshot['depth']}   (leasable now)")
        for state in ("pending", "leased", "failed", "done", "dead"):
            print(f"  {state:<10} {snapshot[state]}")
        print("lifetime counters")
        for key, value in snapshot["counters"].items():
            print(f"  {key:<10} {value}")
    return 0


def _trace_records(args) -> list[dict]:
    """Span records from a journal file or a live service's trace ring."""
    if args.journal is not None:
        from repro.obs.trace import load_journal

        return load_journal(args.journal)
    if args.port is not None:
        from repro.service.client import ServiceClient

        with ServiceClient(args.host, args.port) as client:
            payload = client.traces(limit=args.limit)
        return [span for trace in payload["traces"] for span in trace["spans"]]
    raise ReproError("pass --journal PATH or --port PORT to locate the spans")


def _print_span_tree(records: list[dict]) -> None:
    known = {record["span_id"] for record in records}
    children: dict[str, list[dict]] = {}
    roots = []
    for record in sorted(records, key=lambda r: r.get("start") or 0.0):
        parent = record.get("parent_id")
        if parent and parent in known:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    def walk(record: dict, depth: int) -> None:
        millis = (record.get("duration") or 0.0) * 1000.0
        status = record.get("status") or "ok"
        suffix = "" if status == "ok" else f" [{status}]"
        attrs = record.get("attrs") or {}
        tail = "  ".join(f"{key}={value}" for key, value in attrs.items())
        line = f"{'  ' * depth}- {record['name']:<16} {millis:9.2f} ms{suffix}"
        print(f"{line}  {tail}" if tail else line)
        for child in children.get(record["span_id"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)


def _cmd_trace(args) -> int:
    records = _trace_records(args)
    if not records:
        print("no spans recorded")
        return 0

    if args.action == "summary":
        stats: dict[str, list[float]] = {}
        for record in records:
            stats.setdefault(record["name"], []).append(record.get("duration") or 0.0)
        print(f"{'span':<18} {'count':>6} {'total ms':>10} {'mean ms':>9} {'max ms':>9}")
        for name in sorted(stats, key=lambda n: -sum(stats[n])):
            durations = stats[name]
            total = sum(durations) * 1000.0
            print(
                f"{name:<18} {len(durations):>6} {total:>10.2f}"
                f" {total / len(durations):>9.2f} {max(durations) * 1000.0:>9.2f}"
            )
        return 0

    # show: newest traces last so the freshest tree ends up on screen
    by_trace: dict[str, list[dict]] = {}
    for record in records:
        by_trace.setdefault(record["trace_id"], []).append(record)
    ordered = sorted(
        by_trace.values(), key=lambda spans: max(s.get("start") or 0.0 for s in spans)
    )
    for spans in ordered[-args.limit:]:
        print(f"trace {spans[0]['trace_id']}  ({len(spans)} spans)")
        _print_span_tree(spans)
        print()
    return 0


def _cmd_metrics(args) -> int:
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        sys.stdout.write(client.metrics())
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiment import (
        ExperimentPaths,
        ExperimentResults,
        ExperimentRunner,
        Manifest,
        default_manifest,
        experiment_status,
        render_csv,
        render_html,
        render_json,
        render_markdown,
        write_report,
    )

    paths = ExperimentPaths.at(args.dir)

    if args.exp_action == "status":
        status = experiment_status(paths)
        if not status.exists:
            print(f"no experiment at {paths.root}")
            return 1
        print(f"experiment   {paths.root}")
        print(f"instances    {status.instances}")
        done = " ".join(
            f"{phase}:{'done' if ok else 'pending'}"
            for phase, ok in status.phases.items()
        )
        print(f"phases       {done}")
        for kind, count in sorted(status.jobs.items()):
            print(f"jobs[{kind}]  {count}")
        print(f"complete     {status.complete}")
        return 0

    if args.exp_action == "report":
        results = ExperimentResults(
            paths,
            deterministic=False if args.timed else None,
            partial=args.partial,
        )
        with results:
            if args.dest is not None:
                formats = (
                    ("md", "html", "csv", "json")
                    if args.format == "all"
                    else (args.format,)
                )
                for fmt, path in write_report(results, args.dest, formats).items():
                    print(f"wrote {path}")
            else:
                renderer = {
                    "md": render_markdown,
                    "html": render_html,
                    "csv": render_csv,
                    "json": render_json,
                    "all": render_markdown,
                }[args.format]
                sys.stdout.write(renderer(results))
        return 0

    # run / resume
    if args.exp_action == "run":
        if paths.meta.exists() and _experiment_started(paths):
            print(
                f"error: experiment at {paths.root} already started; "
                "use `repro experiment resume`",
                file=sys.stderr,
            )
            return 2
        if args.manifest is not None:
            manifest = Manifest.from_file(args.manifest)
        else:
            manifest = default_manifest(
                scale=args.scale,
                seed=args.seed,
                timeout=args.timeout,
                max_k=args.max_k,
                deterministic=not args.timed,
            )
    else:  # resume
        if not paths.manifest.exists():
            print(f"error: no experiment at {paths.root}", file=sys.stderr)
            return 2
        manifest = Manifest.from_file(paths.manifest)

    paths.root.mkdir(parents=True, exist_ok=True)
    store = open_result_store(paths.store, shards=args.shards)
    engine = DecompositionEngine(store=store, jobs=args.jobs)
    dispatcher = None
    queue = None
    try:
        if args.queue is not None:
            from repro.engine import Dispatcher, JobQueue

            queue = JobQueue(args.queue)
            dispatcher = Dispatcher(queue, engine=engine)
        runner = ExperimentRunner(
            paths, engine, dispatcher=dispatcher, manifest=manifest
        )
        summary = runner.run()
    finally:
        engine.close()
        if queue is not None:
            queue.close()
    print(f"instances    {summary.instances}")
    print(f"waves        {summary.waves}")
    print(f"jobs         {summary.total_jobs}")
    print(f"resumed      {summary.resumed}")
    print(f"cache hits   {summary.cache_hits}")
    print(f"executed     {summary.executed}")
    return 0


def _experiment_started(paths) -> bool:
    from repro.experiment import MetaJournal

    return bool(MetaJournal(paths.meta).load())


_COMMANDS = {
    "analyze": _cmd_analyze,
    "width": _cmd_width,
    "decompose": _cmd_decompose,
    "fractional": _cmd_fractional,
    "benchmark": _cmd_benchmark,
    "convert": _cmd_convert,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "queue": _cmd_queue,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
