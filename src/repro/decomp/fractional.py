"""Fractionally improved decompositions (Section 6.5).

Two algorithms trade computational cost against quality:

* :func:`improve_hd` (the paper's ``ImproveHD``) keeps the tree and bags of
  an existing (G)HD and merely replaces every integral λ-label with an
  optimal fractional edge cover (one LP per bag).  Cheap, but entirely
  dependent on the starting decomposition.
* :func:`check_frac_improved` (the paper's ``FracImproveHD``) searches over
  *all* HDs of integral width ≤ k reachable by the ``DetKDecomp`` search for
  one whose bags all admit fractional covers of weight ≤ k′ — i.e. it decides
  the "fractionally improved HD" problem for the pair ``(k, k′)``.
  :func:`best_fractional_improvement` then minimises k′ by bisection.

The search reuses :class:`~repro.decomp.detkdecomp.DetKDecomp` with a bag
filter; LP results are memoised per bag since the search revisits bags.
"""

from __future__ import annotations

from repro.core.covers import fractional_cover
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.decomp.detkdecomp import DetKDecomp
from repro.utils.deadline import Deadline

__all__ = [
    "improve_hd",
    "check_frac_improved",
    "best_fractional_improvement",
    "check_frac_best",
    "DEFAULT_PRECISION",
    "FRACTIONAL_TOLERANCE",
]

#: Numeric slack when comparing LP optima against thresholds.
FRACTIONAL_TOLERANCE = 1e-6

#: Default bisection precision of :func:`best_fractional_improvement`.
#: Cached ``fracimprove`` results are only valid at this precision (the
#: store key carries no precision dimension), so store-backed callers
#: bypass the cache for any other value.
DEFAULT_PRECISION = 0.1


def improve_hd(decomposition: Decomposition) -> Decomposition:
    """``ImproveHD``: swap every integral cover for an optimal fractional one.

    The tree and bags are preserved, so the result is an FHD of width equal
    to the maximum fractional cover number over the existing bags — never
    worse than the input width.
    """
    h = decomposition.hypergraph
    family = h.edges

    def rebuild(node: DecompositionNode) -> DecompositionNode:
        gamma = fractional_cover(family, node.bag)
        return DecompositionNode(
            node.bag, gamma.weights, [rebuild(c) for c in node.children]
        )

    root = rebuild(decomposition.root)
    return Decomposition(h, root, kind="FHD")


class _BagWeightCache:
    """Memoised fractional cover numbers, shared across search probes."""

    def __init__(self, hypergraph: Hypergraph):
        self._family = hypergraph.edges
        self._cache: dict[frozenset[str], float] = {}

    def weight(self, bag: frozenset[str]) -> float:
        cached = self._cache.get(bag)
        if cached is None:
            cached = fractional_cover(self._family, bag).weight
            self._cache[bag] = cached
        return cached


def check_frac_improved(
    hypergraph: Hypergraph,
    k: int,
    k_prime: float,
    deadline: Deadline | None = None,
    cache: _BagWeightCache | None = None,
) -> Decomposition | None:
    """``FracImproveHD``: an FHD of width ≤ k′ from some HD of width ≤ k.

    Searches the ``DetKDecomp`` space of HDs of integral width ≤ k for one in
    which every bag's fractional cover number is ≤ k′; on success that HD is
    fractionally improved and returned as an FHD.  Returns ``None`` when no
    such HD exists in the search space.
    """
    if k_prime <= 0:
        raise ValueError("k_prime must be positive")
    cache = cache or _BagWeightCache(hypergraph)

    def bag_ok(bag: frozenset[str]) -> bool:
        return cache.weight(bag) <= k_prime + FRACTIONAL_TOLERANCE

    hd = DetKDecomp(
        hypergraph, k, deadline=deadline, bag_filter=bag_ok
    ).decompose()
    if hd is None:
        return None
    return improve_hd(hd)


def best_fractional_improvement(
    hypergraph: Hypergraph,
    k: int,
    precision: float = DEFAULT_PRECISION,
    deadline: Deadline | None = None,
    upper_seed: float | None = None,
) -> Decomposition | None:
    """Minimise k′ over fractionally improved HDs of integral width ≤ k.

    Bisects the threshold k′ down to ``precision``, reusing one LP cache
    across probes.  Returns the best FHD found, or ``None`` when not even
    ``k′ = k`` admits an HD (i.e. ``Check(HD, k)`` itself fails).

    ``upper_seed`` warm-starts the bisection with an already-achieved
    fractional width (e.g. ``improve_hd`` applied to a stored HD from the
    Figure 4 sweep): the first probe runs at ``min(k, upper_seed)`` instead
    of the full ``k``, shrinking the initial interval.  A seed the filtered
    search cannot reproduce falls back to the unseeded first probe, so a
    stale seed costs one probe but never changes the answer's validity.
    """
    deadline = deadline or Deadline.unlimited()
    cache = _BagWeightCache(hypergraph)

    start = float(k) if upper_seed is None else min(float(k), float(upper_seed))
    best = check_frac_improved(hypergraph, k, start, deadline=deadline, cache=cache)
    if best is None and start < float(k):
        best = check_frac_improved(
            hypergraph, k, float(k), deadline=deadline, cache=cache
        )
    if best is None:
        return None
    low, high = 1.0, best.width
    while high - low > precision:
        deadline.check()
        mid = (low + high) / 2
        candidate = check_frac_improved(
            hypergraph, k, mid, deadline=deadline, cache=cache
        )
        if candidate is None:
            low = mid
        else:
            best = candidate
            high = min(mid, candidate.width)
    return best


def check_frac_best(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
) -> Decomposition | None:
    """``FracImproveHD`` as an engine check function (method ``fracimprove``).

    Matches the :data:`repro.decomp.driver.CheckFunction` signature so the
    decomposition engine can cache, prune and hard-timeout the Table 6
    computation like any other ``Check(H, k)``: "yes" means an HD of width
    ≤ k exists and the returned FHD is the best fractional improvement found
    (its ``width`` is the Table 6 value); "no" means not even ``Check(HD, k)``
    succeeds.  Both are monotone in ``k``, so ``fracimprove`` rows feed the
    store's bounds index.  Uses the default bisection precision.
    """
    return best_fractional_improvement(hypergraph, k, deadline=deadline)
