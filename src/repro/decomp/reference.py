"""Frozen *reference kernel*: the pre-bitset frozenset search algorithms.

When the decomposition searches were rewritten on the integer-bitset kernel
(:mod:`repro.core.bitset`), the original ``frozenset[str]``-based
implementations of ``DetKDecomp`` and ``BalSep`` were preserved here,
verbatim apart from their class names.  They serve two purposes:

* **Perf baseline** — the microbench harness (:mod:`repro.perf.harness`)
  times cold ``Check(H, k)`` runs of both kernels on the same workload and
  reports the speedup in ``BENCH_kernel.json``.
* **Equivalence oracle** — ``tests/test_bitset.py`` cross-checks that the
  mask-native searches return the same verdicts (and equally valid
  decompositions) as these references on random hypergraphs.

Nothing in the production path imports this module; do not "optimise" it —
its value is precisely that it stays the slow, obviously-correct version.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.components import components, vertices_of
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET, subedge_family
from repro.decomp.detkdecomp import covering_combinations
from repro.errors import ValidationError
from repro.utils.deadline import Deadline

__all__ = [
    "ReferenceDetKDecomp",
    "ReferenceBalSep",
    "check_hd_reference",
    "check_ghd_balsep_reference",
]


class ReferenceDetKDecomp:
    """The original frozenset ``Check(HD, k)`` search (see module docstring)."""

    HEURISTICS = ("coverage", "degree", "name")

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        bag_filter=None,
        heuristic: str = "coverage",
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if heuristic not in self.HEURISTICS:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.bag_filter = bag_filter
        self.heuristic = heuristic
        self._family = dict(hypergraph.edges)
        self._degree = {
            v: len(hypergraph.incident_edges(v)) for v in hypergraph.vertices
        }
        self._failures: set[tuple[frozenset[str], frozenset[str]]] = set()

    def _order_key(self, comp_vertices: frozenset[str]):
        if self.heuristic == "coverage":
            return lambda n: (-len(self._family[n] & comp_vertices), n)
        if self.heuristic == "degree":
            return lambda n: (
                -sum(self._degree[v] for v in self._family[n] & comp_vertices),
                n,
            )
        return lambda n: n  # "name"

    def decompose(self) -> Decomposition | None:
        if not self._family:
            root = DecompositionNode(frozenset(), {})
            return Decomposition(self.hypergraph, root, kind="HD")

        roots: list[DecompositionNode] = []
        for comp in components(self._family, frozenset()):
            node = self._decompose(comp, frozenset())
            if node is None:
                return None
            roots.append(node)

        if len(roots) == 1:
            root = roots[0]
        else:
            root = DecompositionNode(frozenset(), {}, roots)
        return Decomposition(self.hypergraph, root, kind="HD")

    def _decompose(
        self, comp: frozenset[str], conn: frozenset[str]
    ) -> DecompositionNode | None:
        self.deadline.check()
        key = (comp, conn)
        if key in self._failures:
            return None

        comp_vertices = vertices_of(self._family, comp)

        if len(comp) <= self.k:
            bag = comp_vertices
            if self.bag_filter is None or self.bag_filter(bag):
                return DecompositionNode(bag, {name: 1.0 for name in comp})

        for separator in self._separators(comp, conn):
            self.deadline.check()
            bag = vertices_of(self._family, separator) & comp_vertices
            if not conn <= bag:
                continue
            if self.bag_filter is not None and not self.bag_filter(bag):
                continue

            sub_family = {name: self._family[name] for name in comp}
            child_states = components(sub_family, bag)
            children: list[DecompositionNode] = []
            success = True
            for child_comp in child_states:
                child_conn = vertices_of(self._family, child_comp) & bag
                child = self._decompose(child_comp, child_conn)
                if child is None:
                    success = False
                    break
                children.append(child)
            if success:
                return DecompositionNode(
                    bag, {name: 1.0 for name in separator}, children
                )

        self._failures.add(key)
        return None

    def _separators(
        self, comp: frozenset[str], conn: frozenset[str]
    ) -> Iterator[tuple[str, ...]]:
        comp_vertices = vertices_of(self._family, comp)
        order_key = self._order_key(comp_vertices)
        inner = sorted(comp, key=order_key)
        outer = sorted(
            (
                name
                for name, edge in self._family.items()
                if name not in comp and edge & comp_vertices
            ),
            key=order_key,
        )
        yield from covering_combinations(
            self._family, inner, outer, conn, self.k, self.deadline,
            require_primary=True,
        )


class ReferenceBalSep:
    """The original frozenset balanced-separator ``Check(GHD, k)`` search."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.subedge_budget = subedge_budget
        self._family = dict(hypergraph.edges)
        self._special_vertices: dict[str, frozenset[str]] = {}
        self._special_ids: dict[frozenset[str], str] = {}
        self._subedge_vertices: dict[str, frozenset[str]] = {}
        self._subedge_parent: dict[str, str] = {}
        self._subedge_pool: list[str] | None = None
        self._failures: set[tuple[frozenset[str], frozenset[str]]] = set()

    def decompose(self) -> Decomposition | None:
        if not self._family:
            return Decomposition(
                self.hypergraph, DecompositionNode(frozenset(), {}), kind="GHD"
            )
        root = self._decompose(frozenset(self._family), frozenset())
        if root is None:
            return None
        self._fix_covers(root)
        return Decomposition(self.hypergraph, root, kind="GHD")

    def _special_name(self, vertices: frozenset[str]) -> str:
        name = self._special_ids.get(vertices)
        if name is None:
            name = f"__sp{len(self._special_ids)}"
            self._special_ids[vertices] = name
            self._special_vertices[name] = vertices
        return name

    def _lookup(self, name: str) -> frozenset[str]:
        if name in self._family:
            return self._family[name]
        if name in self._special_vertices:
            return self._special_vertices[name]
        return self._subedge_vertices[name]

    def _member_family(
        self, real: frozenset[str], special: frozenset[str]
    ) -> dict[str, frozenset[str]]:
        family = {name: self._family[name] for name in real}
        family.update({name: self._special_vertices[name] for name in special})
        return family

    def _decompose(
        self, real: frozenset[str], special: frozenset[str]
    ) -> DecompositionNode | None:
        self.deadline.check()
        key = (real, special)
        if key in self._failures:
            return None
        members = self._member_family(real, special)

        if len(members) == 1:
            (name, vertices), = members.items()
            return DecompositionNode(vertices, {name: 1.0})
        if len(members) == 2:
            (n1, v1), (n2, v2) = members.items()
            child = DecompositionNode(v2, {n2: 1.0})
            return DecompositionNode(v1, {n1: 1.0}, [child])

        total = len(members)
        seen_bags: set[frozenset[str]] = set()
        scope = vertices_of(members)

        for separator in self._balanced_separators(members, scope, total):
            self.deadline.check()
            bag = frozenset().union(*(self._lookup(n) for n in separator)) & scope
            if bag in seen_bags:
                continue
            seen_bags.add(bag)

            child_states = components(members, bag)
            new_special = self._special_name(bag)
            sub_decomps: list[DecompositionNode] = []
            success = True
            for comp in child_states:
                comp_real = frozenset(n for n in comp if n in self._family)
                comp_special = frozenset(
                    n for n in comp if n not in self._family
                ) | {new_special}
                child = self._decompose(comp_real, comp_special)
                if child is None:
                    success = False
                    break
                sub_decomps.append(child)
            if not success:
                continue
            cover = {name: 1.0 for name in separator}
            return self._build_ghd(bag, cover, sub_decomps, new_special)

        self._failures.add(key)
        return None

    def _subedges(self) -> list[str]:
        if self._subedge_pool is None:
            pool: list[str] = []
            for i, vertices in enumerate(
                subedge_family(
                    self._family,
                    self.k,
                    budget=self.subedge_budget,
                    deadline=self.deadline,
                )
            ):
                name = f"__bsub{i}"
                parent = next(
                    e_name for e_name, e in self._family.items() if vertices <= e
                )
                self._subedge_vertices[name] = vertices
                self._subedge_parent[name] = parent
                pool.append(name)
            self._subedge_pool = pool
        return self._subedge_pool

    def _balanced_separators(
        self,
        members: dict[str, frozenset[str]],
        scope: frozenset[str],
        total: int,
    ) -> Iterator[tuple[str, ...]]:
        full = sorted(
            (name for name, edge in self._family.items() if edge & scope),
            key=lambda n: (-len(self._family[n] & scope), n),
        )
        lookup = dict(self._family)
        limit = total / 2

        def balanced(candidate: tuple[str, ...]) -> bool:
            bag = frozenset().union(*(lookup[n] for n in candidate))
            return all(len(c) <= limit for c in components(members, bag))

        for candidate in covering_combinations(
            lookup, full, [], frozenset(), self.k, self.deadline,
            require_primary=False,
        ):
            if balanced(candidate):
                yield candidate

        sub_names = [
            name for name in self._subedges()
            if self._subedge_vertices[name] & scope
        ]
        if not sub_names:
            return
        lookup.update({name: self._subedge_vertices[name] for name in sub_names})
        for candidate in covering_combinations(
            lookup, sub_names, full, frozenset(), self.k, self.deadline,
            require_primary=True,
        ):
            if balanced(candidate):
                yield candidate

    def _build_ghd(
        self,
        bag: frozenset[str],
        cover: dict[str, float],
        sub_decomps: list[DecompositionNode],
        special_name: str,
    ) -> DecompositionNode:
        from repro.decomp.balsep import (
            _find_covering_node,
            _find_special_leaf,
            _reroot,
        )

        node = DecompositionNode(bag, cover)
        special_set = self._special_vertices[special_name]
        for child in sub_decomps:
            target = _find_special_leaf(child, special_name)
            if target is not None:
                rerooted = _reroot(child, target)
                node.children.extend(rerooted.children)
                continue
            target = _find_covering_node(child, special_set)
            if target is None:  # pragma: no cover - contract of Decompose
                raise ValidationError(
                    "child decomposition does not cover its connecting special edge"
                )
            node.children.append(_reroot(child, target))
        return node

    def _fix_covers(self, root: DecompositionNode) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            fixed: dict[str, float] = {}
            for name, weight in node.cover.items():
                if name in self._subedge_parent:
                    name = self._subedge_parent[name]
                elif name.startswith("__sp"):  # pragma: no cover - invariant
                    raise ValidationError("special edge survived into the final GHD")
                fixed[name] = max(fixed.get(name, 0.0), weight)
            node.cover = fixed
            stack.extend(node.children)


def check_hd_reference(
    hypergraph: Hypergraph, k: int, deadline: Deadline | None = None
) -> Decomposition | None:
    """Reference-kernel ``Check(HD, k)`` (frozenset implementation)."""
    return ReferenceDetKDecomp(hypergraph, k, deadline=deadline).decompose()


def check_ghd_balsep_reference(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Reference-kernel ``Check(GHD, k)`` via balanced separators."""
    return ReferenceBalSep(
        hypergraph, k, deadline=deadline, subedge_budget=subedge_budget
    ).decompose()
