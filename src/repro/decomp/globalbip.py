"""``GlobalBIP`` — ``Check(GHD, k)`` via the global subedge set (Algorithm 1).

The algorithm materialises ``f(H, k)`` (Equation 1) up front, builds
``H' = (V(H), E(H) ∪ f(H,k))``, runs ``Check(HD, k)`` on ``H'`` as a black
box, and finally "fixes" the returned HD by substituting every subedge in a
λ-label with an original edge containing it (lines 6–10 of Algorithm 1).  By
the results of Fischl, Gottlob & Pichler, ``ghw(H) ≤ k  iff  hw(H') ≤ k``.

The weakness the paper reports — ``f(H,k)`` "could be huge for practical
purposes" — shows up here as either slow HD searches over the inflated edge
set or a :class:`~repro.errors.SubedgeLimitError` when the subedge budget is
exhausted; the analysis harness counts both as timeouts.
"""

from __future__ import annotations

from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET, augment_with_subedges
from repro.decomp.detkdecomp import DetKDecomp
from repro.utils.deadline import Deadline

__all__ = ["check_ghd_global_bip"]


def _fix_cover(cover: dict[str, float], parent_map: dict[str, str]) -> dict[str, float]:
    """Replace subedge λ-members with original edges (Algorithm 1, l. 6–10)."""
    fixed: dict[str, float] = {}
    for name, weight in cover.items():
        target = parent_map.get(name, name)
        fixed[target] = max(fixed.get(target, 0.0), weight)
    return fixed


def _rebuild(node: DecompositionNode, parent_map: dict[str, str]) -> DecompositionNode:
    return DecompositionNode(
        node.bag,
        _fix_cover(node.cover, parent_map),
        [_rebuild(child, parent_map) for child in node.children],
    )


def check_ghd_global_bip(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Solve ``Check(GHD, k)`` with the GlobalBIP reduction.

    Returns a GHD of ``hypergraph`` of width ≤ k, or ``None`` when
    ``ghw(H) > k``.  Raises :class:`~repro.errors.DeadlineExceeded` or
    :class:`~repro.errors.SubedgeLimitError` when the budgets run out.
    """
    deadline = deadline or Deadline.unlimited()
    augmented_family, parent_map = augment_with_subedges(
        hypergraph.edges, k, budget=subedge_budget, deadline=deadline
    )
    # The augmented family reuses already-frozen vertex sets; skip the
    # re-validating constructor (f(H,k) can hold tens of thousands of edges).
    augmented = Hypergraph._from_frozen(
        dict(augmented_family), name=hypergraph.name or "H'"
    )
    hd = DetKDecomp(augmented, k, deadline=deadline).decompose()
    if hd is None:
        return None
    root = _rebuild(hd.root, parent_map)
    ghd = Decomposition(hypergraph, root, kind="GHD")
    return ghd
