"""``LocalBIP`` — ``Check(GHD, k)`` with per-component subedges (Section 4.3).

``GlobalBIP``'s weakness is the size of the global subedge set.  ``LocalBIP``
follows the same top-down search as ``DetKDecomp`` but generates subedges
*locally*: for the component ``H_u`` under decomposition it only considers
``f_u(H, k)`` (Equation 2) — intersections of edges with unions of up to
``k`` **component** edges.  At every search node the algorithm first tries
all ≤k-combinations of full edges; only if all of them fail does it fall back
to combinations containing at least one subedge.

This is a GHD search (no special condition), so the bag at a node is
``B(λ) ∩ V(component)`` and completeness relies on a reduced normal form in
which every child component is a *proper* subset of the current one; the
search skips separators violating that, which also guarantees termination.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.components import components, vertices_of
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET, subedge_family
from repro.decomp.detkdecomp import covering_combinations
from repro.utils.deadline import Deadline

__all__ = ["LocalBIP", "check_ghd_local_bip"]


class LocalBIP:
    """Top-down ``Check(GHD, k)`` search with lazily generated subedges."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.subedge_budget = subedge_budget
        self._family = dict(hypergraph.edges)
        self._failures: set[tuple[frozenset[str], frozenset[str]]] = set()
        # Lazily generated subedge pools keyed by component; entries are
        # (name, vertices, parent_edge_name) triples.
        self._subedge_cache: dict[
            frozenset[str], list[tuple[str, frozenset[str], str]]
        ] = {}
        self._subedge_vertices: dict[str, frozenset[str]] = {}
        self._subedge_parent: dict[str, str] = {}
        self._next_subedge_id = 0

    # ------------------------------------------------------------------- API

    def decompose(self) -> Decomposition | None:
        """Return a GHD of width ≤ k, or ``None`` when none exists."""
        if not self._family:
            return Decomposition(
                self.hypergraph, DecompositionNode(frozenset(), {}), kind="GHD"
            )
        roots: list[DecompositionNode] = []
        for comp in components(self._family, frozenset()):
            node = self._decompose(comp, frozenset())
            if node is None:
                return None
            roots.append(node)
        root = roots[0] if len(roots) == 1 else DecompositionNode(frozenset(), {}, roots)
        return Decomposition(self.hypergraph, root, kind="GHD")

    # ---------------------------------------------------------------- search

    def _lookup(self, name: str) -> frozenset[str]:
        if name in self._family:
            return self._family[name]
        return self._subedge_vertices[name]

    def _decompose(
        self, comp: frozenset[str], conn: frozenset[str]
    ) -> DecompositionNode | None:
        self.deadline.check()
        key = (comp, conn)
        if key in self._failures:
            return None

        comp_vertices = vertices_of(self._family, comp)

        if len(comp) <= self.k:
            return DecompositionNode(comp_vertices, {name: 1.0 for name in comp})

        for separator in self._separators(comp, conn):
            self.deadline.check()
            bag = frozenset().union(*(self._lookup(n) for n in separator)) & comp_vertices
            if not conn <= bag:
                continue

            sub_family = {name: self._family[name] for name in comp}
            child_states = components(sub_family, bag)
            if any(child == comp for child in child_states):
                continue  # no progress: reduced normal form forbids this
            children: list[DecompositionNode] = []
            success = True
            for child_comp in child_states:
                child_conn = vertices_of(self._family, child_comp) & bag
                child = self._decompose(child_comp, child_conn)
                if child is None:
                    success = False
                    break
                children.append(child)
            if success:
                cover: dict[str, float] = {}
                for name in separator:
                    real = self._subedge_parent.get(name, name)
                    cover[real] = 1.0
                return DecompositionNode(bag, cover, children)

        self._failures.add(key)
        return None

    # ----------------------------------------------------------- enumeration

    def _component_subedges(
        self, comp: frozenset[str]
    ) -> list[tuple[str, frozenset[str], str]]:
        """``f_u(H, k)`` for the current component, generated once and cached."""
        cached = self._subedge_cache.get(comp)
        if cached is not None:
            return cached
        subs = subedge_family(
            self._family,
            self.k,
            restrict_to=comp,
            budget=self.subedge_budget,
            deadline=self.deadline,
        )
        entries: list[tuple[str, frozenset[str], str]] = []
        for vertices in subs:
            name = f"__lsub{self._next_subedge_id}"
            self._next_subedge_id += 1
            parent = next(
                e_name for e_name, e in self._family.items() if vertices <= e
            )
            self._subedge_vertices[name] = vertices
            self._subedge_parent[name] = parent
            entries.append((name, vertices, parent))
        self._subedge_cache[comp] = entries
        return entries

    def _separators(
        self, comp: frozenset[str], conn: frozenset[str]
    ) -> Iterator[tuple[str, ...]]:
        """Full-edge combinations first; subedge-containing ones afterwards."""
        comp_vertices = vertices_of(self._family, comp)
        full = sorted(
            (
                name
                for name, edge in self._family.items()
                if edge & comp_vertices
            ),
            key=lambda n: (-len(self._family[n] & comp_vertices), n),
        )
        lookup = dict(self._family)
        yield from covering_combinations(
            lookup, full, [], conn, self.k, self.deadline, require_primary=False
        )

        # Phase 2: at least one subedge per separator (pure full-edge
        # combinations were exhausted above).
        sub_entries = self._component_subedges(comp)
        if not sub_entries:
            return
        sub_names = [name for name, vertices, _ in sub_entries
                     if vertices & comp_vertices]
        lookup.update({name: self._subedge_vertices[name] for name in sub_names})
        yield from covering_combinations(
            lookup, sub_names, full, conn, self.k, self.deadline,
            require_primary=True,
        )


def check_ghd_local_bip(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Solve ``Check(GHD, k)`` with the LocalBIP strategy."""
    return LocalBIP(
        hypergraph, k, deadline=deadline, subedge_budget=subedge_budget
    ).decompose()
