"""``LocalBIP`` — ``Check(GHD, k)`` with per-component subedges (Section 4.3).

``GlobalBIP``'s weakness is the size of the global subedge set.  ``LocalBIP``
follows the same top-down search as ``DetKDecomp`` but generates subedges
*locally*: for the component ``H_u`` under decomposition it only considers
``f_u(H, k)`` (Equation 2) — intersections of edges with unions of up to
``k`` **component** edges.  At every search node the algorithm first tries
all ≤k-combinations of full edges; only if all of them fail does it fall back
to combinations containing at least one subedge.

This is a GHD search (no special condition), so the bag at a node is
``B(λ) ∩ V(component)`` and completeness relies on a reduced normal form in
which every child component is a *proper* subset of the current one; the
search skips separators violating that, which also guarantees termination.

Like ``DetKDecomp``, the search state is mask-native: components are edge
masks, connectors vertex masks, the failure memo keys
``(component_mask, connector_mask)`` int pairs, and the per-component
subedge pools are keyed by the component mask.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.bitset import (
    ComponentCache,
    HypergraphView,
    dedupe_effective,
    iter_bits,
    mask_components_from,
    mask_covering_combinations,
    scoped_candidates,
)
from repro.core.decomposition import Decomposition, DecompositionNode
from repro.core.hypergraph import Hypergraph
from repro.core.subedges import DEFAULT_SUBEDGE_BUDGET, mask_subedge_entries
from repro.utils.deadline import Deadline

__all__ = ["LocalBIP", "check_ghd_local_bip"]


class LocalBIP:
    """Top-down ``Check(GHD, k)`` search with lazily generated subedges."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        deadline: Deadline | None = None,
        subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.hypergraph = hypergraph
        self.k = k
        self.deadline = deadline or Deadline.unlimited()
        self.subedge_budget = subedge_budget
        self._view = HypergraphView.of(hypergraph)
        self._masks = self._view.edge_masks
        self._failures: set[tuple[int, int]] = set()
        # Lazily generated subedge pools keyed by component mask; ids index
        # the (mask, parent edge index) side tables.
        self._subedge_cache: dict[int, list[int]] = {}
        self._subedge_masks: list[int] = []
        self._subedge_parent_idx: list[int] = []
        self._comps = ComponentCache(self._view)

    # ------------------------------------------------------------------- API

    def decompose(self) -> Decomposition | None:
        """Return a GHD of width ≤ k, or ``None`` when none exists."""
        if not self._masks:
            return Decomposition(
                self.hypergraph, DecompositionNode(frozenset(), {}), kind="GHD"
            )
        roots: list[DecompositionNode] = []
        all_entries = [(1 << i, m) for i, m in enumerate(self._masks)]
        for comp, _ in mask_components_from(all_entries, 0):
            node = self._decompose(comp, 0)
            if node is None:
                return None
            roots.append(node)
        root = roots[0] if len(roots) == 1 else DecompositionNode(frozenset(), {}, roots)
        return Decomposition(self.hypergraph, root, kind="GHD")

    # ---------------------------------------------------------------- search

    def _decompose(self, comp: int, conn: int) -> DecompositionNode | None:
        self.deadline.check()
        key = (comp, conn)
        if key in self._failures:
            return None

        view = self._view
        comp_vertices = self._comps.vertices(comp)

        if comp.bit_count() <= self.k:
            return DecompositionNode(
                view.vertex_names_of(comp_vertices),
                {view.edge_names[i]: 1.0 for i in iter_bits(comp)},
            )

        seen_bags: set[int] = set()
        for bag_full, cover_names in self._separators(comp, conn, comp_vertices):
            self.deadline.check()
            bag = bag_full & comp_vertices
            if conn & ~bag:
                continue
            # Child states depend only on the bag: a bag whose children
            # already failed at this state fails for every λ producing it.
            if bag in seen_bags:
                continue
            seen_bags.add(bag)

            child_states = mask_components_from(self._comps.entries(comp), bag)
            if any(members == comp for members, _ in child_states):
                continue  # no progress: reduced normal form forbids this
            children: list[DecompositionNode] = []
            success = True
            for child_comp, _ in child_states:
                child_conn = self._comps.vertices(child_comp) & bag
                child = self._decompose(child_comp, child_conn)
                if child is None:
                    success = False
                    break
                children.append(child)
            if success:
                cover = {name: 1.0 for name in cover_names}
                return DecompositionNode(view.vertex_names_of(bag), cover, children)

        self._failures.add(key)
        return None

    # ----------------------------------------------------------- enumeration

    def _component_subedges(self, comp: int) -> list[int]:
        """``f_u(H, k)`` ids for the current component, generated once."""
        cached = self._subedge_cache.get(comp)
        if cached is not None:
            return cached
        ids: list[int] = []
        for mask, parent in mask_subedge_entries(
            self._masks,
            self.k,
            restrict_to=comp,
            budget=self.subedge_budget,
            deadline=self.deadline,
        ):
            ids.append(len(self._subedge_masks))
            self._subedge_masks.append(mask)
            self._subedge_parent_idx.append(parent)
        self._subedge_cache[comp] = ids
        return ids

    def _separators(
        self, comp: int, conn: int, comp_vertices: int
    ) -> Iterator[tuple[int, tuple[str, ...]]]:
        """Full-edge combinations first; subedge-containing ones afterwards.

        Yields ``(bag_union_mask, cover_names)``; subedges are already
        resolved to their parent edge name (only the parent ever appears in
        a returned λ-label).
        """
        masks = self._masks
        names = self._view.edge_names
        seen_effective: set[int] = set()
        full, full_masks = scoped_candidates(masks, comp_vertices, names, seen_effective)
        for combo in mask_covering_combinations(
            full_masks, 0, conn, self.k, self.deadline, require_primary=False
        ):
            bag = 0
            for j in combo:
                bag |= full_masks[j]
            yield bag, tuple(names[full[j]] for j in combo)

        # Phase 2: at least one subedge per separator (pure full-edge
        # combinations were exhausted above; subedges whose effective mask a
        # full edge already provides cannot produce a new bag either).
        sub_ids, sub_masks = dedupe_effective(
            ((s, self._subedge_masks[s]) for s in self._component_subedges(comp)),
            comp_vertices,
            seen_effective,
        )
        if not sub_ids:
            return
        n_sub = len(sub_ids)
        candidate_masks = sub_masks + full_masks
        for combo in mask_covering_combinations(
            candidate_masks, n_sub, conn, self.k, self.deadline,
            require_primary=True,
        ):
            bag = 0
            for j in combo:
                bag |= candidate_masks[j]
            yield bag, tuple(
                names[self._subedge_parent_idx[sub_ids[j]]] if j < n_sub
                else names[full[j - n_sub]]
                for j in combo
            )


def check_ghd_local_bip(
    hypergraph: Hypergraph,
    k: int,
    deadline: Deadline | None = None,
    subedge_budget: int = DEFAULT_SUBEDGE_BUDGET,
) -> Decomposition | None:
    """Solve ``Check(GHD, k)`` with the LocalBIP strategy."""
    return LocalBIP(
        hypergraph, k, deadline=deadline, subedge_budget=subedge_budget
    ).decompose()
